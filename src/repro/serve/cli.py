"""``repro-engine serve``: the clustering daemon as a shell command.

Feed it an ndjson event stream (:mod:`repro.serve.protocol`) on stdin
or a local UNIX socket::

    repro-bgp-synth --stream 100000 | \\
        repro-engine serve --stdin --table aads.dump --lpm stride \\
            --checkpoint live.ckpt --checkpoint-every 20000 \\
            --wal live.wal --metrics

Routing deltas are applied to the live table *in place* — no full
rebuild — and only the clients inside the patched address windows are
reclustered.  ``--verify-final`` runs the equivalence gate at the end
of the stream: the patched table must match a from-scratch rebuild at
the final routing state, intervals and digest alike.

Durability: ``--wal DIR`` appends every accepted event to a segmented,
CRC-framed write-ahead log *before* it mutates daemon state (fsync
batched per ``--wal-sync-every``, segments rotated at
``--wal-segment-bytes`` and deleted once a checkpoint covers them).
``--resume`` with ``--wal`` then recovers from checkpoint + WAL tail
alone — no upstream replay — proving the routing epoch and table digest
at the boundary; without ``--wal`` it falls back to the original
replay-the-same-stream protocol.

Overload: ``--shed-watermark N`` bounds the ingress queue; past the
watermark the daemon sheds *log* events (never routing deltas) until
the queue drains to half, with every drop counted in ``shed_events``.
``--max-line-bytes`` bounds one event line; oversized lines and clients
that vanish mid-frame are counted-and-skipped under ``--max-errors``
without dropping the accept loop.  ``--heartbeat N`` prints a health
line to stderr every N events.

Signals and exit codes: SIGTERM and SIGINT trigger a graceful drain —
flush buffers, final checkpoint, WAL seal — then exit 3 (SIGTERM) or
4 (SIGINT).  0 is a clean end of stream, 1 a fatal error (injected
fault, checkpoint failure, error budget exhausted), 5 a write-ahead-log
failure (corrupt log on recovery, or disk genuinely full after the
checkpoint-truncate-retry rescue).

Checkpoint files are pickle-based: only ``--resume`` from files you
wrote yourself (see :mod:`repro.engine.state`).
"""

from __future__ import annotations

import argparse
import errno
import os
import select
import signal
import socket
import sys
from dataclasses import dataclass
from types import FrameType
from typing import Iterator, List, Optional, Union

from repro.cli import load_tables, print_cluster_report
from repro.engine.fastpath import LPM_KINDS, build_lpm_table
from repro.engine.metrics import EngineMetrics
from repro.engine.state import CheckpointError
from repro.errors import InjectedFault, ServeProtocolError, WalError
from repro.faults import SITE_SERVE_DISCONNECT, FaultInjector, FaultPlan
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import (
    DEFAULT_MAX_LINE_BYTES,
    LineSplitter,
    parse_event,
)

__all__ = [
    "serve_main",
    "build_serve_parser",
    "EXIT_OK",
    "EXIT_FATAL",
    "EXIT_SIGTERM",
    "EXIT_SIGINT",
    "EXIT_WAL",
]

EXIT_OK = 0
EXIT_FATAL = 1
# 2 is argparse's usage-error exit.
EXIT_SIGTERM = 3
EXIT_SIGINT = 4
EXIT_WAL = 5

#: Socket/stdin poll granularity: the longest a latched signal waits
#: before the loop notices it.
_POLL_SECONDS = 0.25
_CHUNK_BYTES = 1 << 16


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-engine serve",
        description=(
            "Long-lived clustering daemon: consumes an ndjson stream of "
            "weblog requests and BGP route deltas, patches the LPM table "
            "in place, and reclusters only the affected clients."
        ),
    )
    feed = parser.add_mutually_exclusive_group(required=True)
    feed.add_argument(
        "--stdin", action="store_true",
        help="read the event stream from standard input",
    )
    feed.add_argument(
        "--socket", metavar="PATH", default=None,
        help="listen on a UNIX socket at PATH and serve connections until "
             "signalled; daemon state persists across connections",
    )
    parser.add_argument(
        "--table", "-t", action="append", default=[], metavar="DUMP",
        help="routing-table dump file for the initial state; repeatable",
    )
    parser.add_argument(
        "--lpm", choices=LPM_KINDS, default="packed",
        help="LPM table layout (default packed); deltas patch either "
             "layout in place",
    )
    parser.add_argument(
        "--memo-size", type=int, default=0, metavar="N",
        help="memoize up to N distinct client resolutions; patches evict "
             "only the memo entries inside the touched address windows "
             "(0 = off)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=4096, metavar="N",
        help="log events per clustering batch; a routing delta always "
             "flushes the batch first so stream order is preserved "
             "(default 4096)",
    )
    parser.add_argument(
        "--max-errors", type=int, default=None, metavar="N",
        help="abort when more than N undecodable event lines accumulate "
             "(oversized lines and mid-frame disconnects count too; "
             "default: skip-and-count forever)",
    )
    parser.add_argument(
        "--max-line-bytes", type=int, default=DEFAULT_MAX_LINE_BYTES,
        metavar="N",
        help="per-event-line byte budget; longer lines are discarded and "
             f"counted under --max-errors (default {DEFAULT_MAX_LINE_BYTES})",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write daemon state to PATH when the stream ends",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="EVENTS",
        help="also checkpoint after every EVENTS stream events "
             "(0 = only at the end)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore state from --checkpoint; with --wal, recover from "
             "checkpoint + WAL tail alone (no upstream replay), otherwise "
             "replay the same stream and verify the routing generation at "
             "the boundary",
    )
    parser.add_argument(
        "--wal", metavar="DIR", default=None,
        help="append every accepted event to a write-ahead log in DIR "
             "before applying it; enables --resume without stream replay",
    )
    parser.add_argument(
        "--wal-sync-every", type=int, default=64, metavar="N",
        help="fsync the WAL once per N appends (1 = every event is "
             "durable before it is applied; default 64)",
    )
    parser.add_argument(
        "--wal-segment-bytes", type=int, default=4 << 20, metavar="N",
        help="rotate WAL segments at N bytes; closed segments are deleted "
             "once a checkpoint covers them (default 4 MiB)",
    )
    parser.add_argument(
        "--shed-watermark", type=int, default=0, metavar="N",
        help="shed log events (never routing deltas) while the ingress "
             "queue exceeds N, until it drains to N/2; should exceed "
             "--batch-size (0 = never shed)",
    )
    parser.add_argument(
        "--heartbeat", type=int, default=0, metavar="EVENTS",
        help="print a health line to stderr every EVENTS stream events "
             "(0 = off)",
    )
    parser.add_argument(
        "--inject", metavar="PLAN.json", default=None,
        help="arm a repro.faults FaultPlan (serve.crash kills the daemon "
             "mid-delta; serve.wal.torn tears a WAL append; "
             "serve.wal.enospc fails one with ENOSPC; serve.disconnect "
             "drops a client mid-chunk)",
    )
    parser.add_argument(
        "--verify-final", action="store_true",
        help="run the equivalence gate after the stream: the patched "
             "table must match a from-scratch rebuild at the final "
             "routing state",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print engine counters including the churn family "
             "(routes announced/withdrawn, clients reclustered, patch "
             "latency, rebuild fallbacks) and the durability family "
             "(WAL appends/syncs/rotations, recovered events, shed "
             "events)",
    )
    parser.add_argument(
        "--busy", type=float, default=None, metavar="SHARE",
        help="threshold busy clusters covering SHARE of requests",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="how many clusters to print (default 20, 0 = all)",
    )
    return parser


class _SignalFlag:
    """Latches the first SIGTERM/SIGINT so the serve loop can drain
    gracefully instead of dying mid-batch.  A second signal falls back
    to Python's default handling (KeyboardInterrupt / termination), so
    an operator can still insist."""

    def __init__(self) -> None:
        self.fired: Optional[int] = None

    def install(self) -> None:
        signal.signal(signal.SIGTERM, self._handle)
        signal.signal(signal.SIGINT, self._handle)

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self.fired is None:
            self.fired = signum
            return
        # Second signal: stop being graceful.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)


@dataclass(frozen=True)
class _StreamEnd:
    """Sentinel yielded by the chunk feeds between byte chunks:
    ``clean`` distinguishes orderly EOF from a vanished peer, ``final``
    marks the end of the whole run (stdin EOF, or a latched signal)."""

    clean: bool
    final: bool


_StreamItem = Union[bytes, _StreamEnd]


def _stdin_chunks(flag: _SignalFlag) -> Iterator[_StreamItem]:
    """Byte chunks from stdin, polling so a latched signal is noticed
    even while the pipe is idle."""
    fd = sys.stdin.fileno()
    while True:
        if flag.fired is not None:
            yield _StreamEnd(clean=True, final=True)
            return
        ready, _, _ = select.select([fd], [], [], _POLL_SECONDS)
        if not ready:
            continue
        chunk = os.read(fd, _CHUNK_BYTES)
        if not chunk:
            yield _StreamEnd(clean=True, final=True)
            return
        yield chunk


def _socket_chunks(
    path: str, flag: _SignalFlag, injector: Optional[FaultInjector]
) -> Iterator[_StreamItem]:
    """Byte chunks from a UNIX-socket accept loop.

    Serves connections sequentially until a signal latches; daemon
    state persists across connections.  A peer that resets (or an
    injected ``serve.disconnect``, which delivers half the chunk and
    then drops the connection) ends its stream with
    ``_StreamEnd(clean=False)`` — the consumer discards the torn frame
    and the loop accepts the next client.  Binds eagerly so the
    "listening" line below is printed only once the socket exists.
    """
    if os.path.exists(path):
        os.unlink(path)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(path)
    server.listen(1)
    server.settimeout(_POLL_SECONDS)
    print(f"listening on {path}", flush=True)

    def generate() -> Iterator[_StreamItem]:
        try:
            while flag.fired is None:
                try:
                    connection, _ = server.accept()
                except socket.timeout:
                    continue
                clean = True
                try:
                    connection.settimeout(_POLL_SECONDS)
                    while flag.fired is None:
                        try:
                            chunk = connection.recv(_CHUNK_BYTES)
                        except socket.timeout:
                            continue
                        except OSError:
                            clean = False
                            break
                        if not chunk:
                            break
                        if injector is not None and (
                            injector.fire(SITE_SERVE_DISCONNECT) is not None
                        ):
                            yield chunk[: max(1, len(chunk) // 2)]
                            clean = False
                            break
                        yield chunk
                finally:
                    connection.close()
                yield _StreamEnd(clean=clean, final=flag.fired is not None)
            yield _StreamEnd(clean=True, final=True)
        finally:
            server.close()
            try:
                os.unlink(path)
            except OSError:
                pass

    return generate()


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if not args.table:
        parser.error("the daemon needs at least one --table dump")
    if args.checkpoint_every and not args.checkpoint:
        parser.error("--checkpoint-every requires --checkpoint PATH")
    if args.resume and not (args.checkpoint or args.wal):
        parser.error("--resume requires --checkpoint PATH or --wal DIR")
    if args.memo_size < 0:
        parser.error("--memo-size must be >= 0")
    if args.batch_size < 1:
        parser.error("--batch-size must be >= 1")
    if args.max_line_bytes < 1:
        parser.error("--max-line-bytes must be >= 1")
    if args.wal_sync_every < 1:
        parser.error("--wal-sync-every must be >= 1")
    if args.wal_segment_bytes < 64:
        parser.error("--wal-segment-bytes must be >= 64")
    if args.shed_watermark < 0:
        parser.error("--shed-watermark must be >= 0")
    if args.heartbeat < 0:
        parser.error("--heartbeat must be >= 0")

    injector: Optional[FaultInjector] = None
    if args.inject:
        injector = FaultInjector(FaultPlan.load(args.inject))
        print(f"fault injection armed from {args.inject}: "
              f"{', '.join(injector.plan.sites()) or 'no sites'}")

    merged = load_tables(args.table, injector=injector)
    table = build_lpm_table(args.lpm, merged, args.memo_size)
    print(f"{args.lpm} LPM table: {len(table):,} entries"
          + (f", memo bound {args.memo_size:,}" if args.memo_size else ""))

    config = ServeConfig(
        name="stdin" if args.stdin else args.socket,
        batch_size=args.batch_size,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        wal_dir=args.wal,
        wal_sync_every=args.wal_sync_every,
        wal_segment_bytes=args.wal_segment_bytes,
        shed_watermark=args.shed_watermark,
    )
    daemon = ServeDaemon(
        table, config, EngineMetrics(1), injector=injector
    )
    if args.resume and args.wal:
        try:
            refed = daemon.recover()
        except WalError as exc:
            print(f"cannot recover: {exc}", file=sys.stderr)
            return EXIT_WAL
        except CheckpointError as exc:
            print(f"cannot recover: {exc}", file=sys.stderr)
            return EXIT_FATAL
        print(
            f"recovered from checkpoint + WAL: state at "
            f"{daemon.events_consumed:,} stream events "
            f"({refed:,} re-fed from the WAL tail, no upstream replay)"
        )
    elif args.resume:
        if os.path.exists(args.checkpoint):
            try:
                daemon.resume_from(args.checkpoint)
            except CheckpointError as exc:
                print(f"cannot resume: {exc}", file=sys.stderr)
                return EXIT_FATAL
            print(
                f"resumed from {args.checkpoint}: replaying the first "
                f"{daemon.resume_skip:,} stream events"
            )
        else:
            print(f"no checkpoint at {args.checkpoint}; starting fresh")
    elif args.wal:
        daemon.attach_wal()

    flag = _SignalFlag()
    flag.install()
    chunks: Iterator[_StreamItem]
    if args.stdin:
        chunks = _stdin_chunks(flag)
    else:
        chunks = _socket_chunks(args.socket, flag, injector)

    splitter = LineSplitter(args.max_line_bytes)
    bad_lines = 0
    submitted = 0
    last_beat = 0

    def count_error(exc: ServeProtocolError) -> bool:
        """Count one undecodable line; True = budget exhausted."""
        nonlocal bad_lines
        bad_lines += 1
        daemon.metrics.record_malformed()
        if args.max_errors is not None and bad_lines > args.max_errors:
            print(f"aborting: {exc} ({bad_lines:,} undecodable lines)",
                  file=sys.stderr)
            return True
        return False

    def consume(line: str) -> bool:
        """Parse and submit one line; True = budget exhausted."""
        nonlocal last_beat, submitted
        try:
            event = parse_event(line)
        except ServeProtocolError as exc:
            return count_error(exc)
        if event is None:
            return False
        daemon.submit(event)
        submitted += 1
        if daemon.ingress_depth >= args.batch_size:
            daemon.pump()
        # Keyed on submissions, not events_consumed: queued events
        # haven't been applied yet, but the daemon is demonstrably
        # alive — which is what a heartbeat reports.
        if args.heartbeat and submitted - last_beat >= args.heartbeat:
            last_beat = submitted
            health = daemon.health()
            print(
                "heartbeat: "
                + " ".join(f"{k}={v}" for k, v in health.items()),
                file=sys.stderr, flush=True,
            )
        return False

    try:
        for item in chunks:
            if isinstance(item, _StreamEnd):
                if item.clean:
                    tail = splitter.flush()
                    if tail is not None and consume(tail):
                        daemon.abort()
                        return EXIT_FATAL
                else:
                    try:
                        splitter.abandon()
                    except ServeProtocolError as exc:
                        if count_error(exc):
                            daemon.abort()
                            return EXIT_FATAL
                if item.final:
                    break
                continue
            splitter.push(item)
            while True:
                try:
                    line = splitter.next_line()
                except ServeProtocolError as exc:
                    if count_error(exc):
                        daemon.abort()
                        return EXIT_FATAL
                    continue
                if line is None:
                    break
                if consume(line):
                    daemon.abort()
                    return EXIT_FATAL
        daemon.finish()
    except InjectedFault as exc:
        daemon.abort()
        print(f"fatal: {exc}", file=sys.stderr)
        return EXIT_FATAL
    except CheckpointError as exc:
        daemon.abort()
        print(f"fatal: {exc}", file=sys.stderr)
        return EXIT_FATAL
    except WalError as exc:
        daemon.abort()
        print(f"fatal: {exc}", file=sys.stderr)
        return EXIT_WAL
    except OSError as exc:
        if exc.errno != errno.ENOSPC:
            raise
        daemon.abort()
        print(f"fatal: write-ahead log out of disk space ({exc})",
              file=sys.stderr)
        return EXIT_WAL

    exit_code = EXIT_OK
    if flag.fired is not None:
        name = signal.Signals(flag.fired).name
        exit_code = EXIT_SIGTERM if flag.fired == signal.SIGTERM else EXIT_SIGINT
        print(
            f"graceful drain after {name}: buffers flushed"
            + (", checkpoint written" if args.checkpoint else "")
            + (", WAL sealed" if args.wal else ""),
            file=sys.stderr,
        )
    if bad_lines:
        print(f"warning: skipped {bad_lines:,} undecodable event line(s)",
              file=sys.stderr)
    print(
        f"stream complete: {daemon.events_consumed:,} events "
        f"({daemon.deltas_received:,} route deltas; table at epoch "
        f"{int(daemon.table.epoch)}, {int(daemon.table.deltas_applied)} "
        "deltas applied)"
    )
    if args.checkpoint:
        print(f"checkpoint written: {args.checkpoint}")
    if args.verify_final:
        daemon.table.verify_patched()
        print(
            "equivalence gate: patched table matches a from-scratch "
            f"rebuild (digest {daemon.table.digest()[:12]}…)"
        )
    print()
    print_cluster_report(daemon.snapshot(), args.top, args.busy)
    if args.metrics:
        print()
        print(daemon.metrics.render())
    return exit_code


if __name__ == "__main__":
    sys.exit(serve_main())
