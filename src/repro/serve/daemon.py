"""The serve event loop: batch, patch, recluster, checkpoint.

:class:`ServeDaemon` is a single-process state machine fed one
:class:`~repro.serve.protocol.ServeEvent` at a time.  Log events buffer
into batches (one LPM pass per batch, like the engine's chunks); route
events buffer into a *coalesced* delta map (last event per prefix wins,
which is also what applying them one-by-one would leave behind).  The
buffers flush whenever the stream switches kind, so a routing change is
always applied between the requests that preceded it and the requests
that follow it — event order on the stream is the serialization order.

Applying a delta batch is the incremental §3.4 self-correction:

1. :meth:`~repro.engine.packed.PackedLpm.apply_delta` patches the live
   table in place and reports the address ``windows`` it touched (a
   :class:`~repro.engine.fastpath.MemoizedLookup` front evicts only the
   memo entries inside those windows);
2. :meth:`~repro.engine.state.ClusterStore.reassign_clients` re-resolves
   only the accumulated clients inside the windows and migrates the
   ones whose longest match moved.

A pathologically large batch (more than half the table) falls back to a
from-scratch rebuild — counted in
``EngineMetrics.patch_rebuild_fallbacks`` — with the patch-generation
counters carried over so checkpoints stay comparable.

Checkpoints reuse the engine's versioned envelope and additionally
persist the routing generation (``routing_epoch`` / ``deltas_applied``)
and the stream position (``stream_events``).  ``--resume`` replays the
stream: route events are re-applied to the table (rebuilding the
patched routing state) without re-running the reclustering — the
restored store already reflects it — and log events inside the
already-checkpointed prefix are dropped
(their counts are in the restored store), and at the boundary the
daemon proves the replay reproduced the checkpoint — same routing
generation, same table digest — before new events are accumulated.
Byte-identical resume assumes the same stream and the same
``--batch-size`` / ``--checkpoint-every`` settings.

With a write-ahead log attached (``--wal``; :mod:`repro.serve.wal`),
the recovery story no longer needs the upstream at all: every accepted
event is appended to the WAL *before* it mutates daemon state, and
checkpoints persist the live table itself (``meta["table_state"]``), so
:meth:`ServeDaemon.recover` rebuilds the exact pre-crash state from
checkpoint + WAL tail alone — adopt the checkpointed table and store,
prove the epoch/digest boundary, then re-feed only the WAL frames past
the checkpoint.  The full-stream replay above remains the fallback for
runs without ``--wal``.

Overload is handled ahead of :meth:`feed`: :meth:`submit` admits events
into a bounded ingress queue with high/low watermarks, and under
sustained pressure sheds *log* events only — routing deltas are always
accepted, because a stale table corrupts every later assignment while a
dropped request merely undercounts one — with every drop counted in
``shed_events`` and the first drop announced via
:class:`~repro.errors.OverloadShedWarning`.

Under ``REPRO_SANITIZE=1`` a sampled subset of patches is followed by
:meth:`verify_patched` — the full patched-equals-rebuilt equivalence
gate — at runtime, not just in tests.
"""

from __future__ import annotations

import errno
import os
import warnings
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.analysis import sanitize as _sanitize
from repro.bgp.synth import RouteDelta
from repro.bgp.table import KIND_BGP, LookupResult, RouteEntry
from repro.core.clustering import ClusterSet
from repro.engine.fastpath import MemoizedLookup
from repro.engine.metrics import EngineMetrics
from repro.engine.packed import merge_windows
from repro.engine.state import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointTableMismatchError,
    ClusterStore,
    read_checkpoint,
    write_checkpoint,
)
from repro.errors import InjectedFault, OverloadShedWarning, WalCorruptError
from repro.faults import SITE_SERVE_CRASH, FaultInjector
from repro.net.prefix import Prefix
from repro.serve.protocol import LogEvent, ServeEvent, parse_event
from repro.serve.wal import WalWriter, recover_wal

__all__ = ["ServeConfig", "ServeDaemon"]

#: Must-precede spec for ``repro-lint --flow``: inside :meth:`feed`,
#: every daemon-state mutation must sit behind the WAL append on every
#: path — a crash between a mutation and its append would replay a
#: stream that never contained the event.
FLOW_SPECS = (
    {
        "rule": "wal-order",
        "functions": ("feed",),
        "append": ("_wal_append",),
    },
)

#: Patch-vs-rebuild crossover: a coalesced delta batch touching more
#: prefixes than ``max(PATCH_FALLBACK_FLOOR, len(table) // 2)`` is
#: cheaper to rebuild than to splice piecewise.
PATCH_FALLBACK_FLOOR = 64


@dataclass
class ServeConfig:
    """Tunables for one daemon run.

    ``wal_dir`` enables the write-ahead log (``None`` = durability off,
    the pre-WAL behaviour).  ``shed_watermark`` bounds the ingress
    queue: 0 disables shedding entirely; otherwise crossing it starts
    dropping log events until the queue drains to ``shed_low``
    (defaulting to half the watermark).  The watermark should exceed
    ``batch_size`` — the serve loop drains a batch at a time, so a
    smaller watermark would shed during perfectly healthy batching.
    """

    name: str = "serve"
    batch_size: int = 4096
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    checkpoint_attempts: int = 3
    wal_dir: Optional[str] = None
    wal_sync_every: int = 64
    wal_segment_bytes: int = 4 << 20
    shed_watermark: int = 0
    shed_low: int = 0


class ServeDaemon:
    """Clusters a live event stream against an in-place-patched table."""

    def __init__(
        self,
        table: Any,
        config: Optional[ServeConfig] = None,
        metrics: Optional[EngineMetrics] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.table = table
        self.config = config or ServeConfig()
        self.metrics = metrics or EngineMetrics(1)
        self.injector = injector
        self.store = ClusterStore()
        self.events_consumed = 0
        self.deltas_received = 0
        self._pending_logs: List[Tuple[int, str, int]] = []
        self._pending_deltas: Dict[Prefix, RouteDelta] = {}
        self._since_checkpoint = 0
        self._resume_skip = 0
        self._resume_path: Optional[str] = None
        self._resume_meta: Dict[str, Any] = {}
        self._wal: Optional[WalWriter] = None
        self._ingress: Deque[ServeEvent] = deque()
        self._shedding = False

    # -- resume ----------------------------------------------------------

    def resume_from(self, path: str) -> None:
        """Adopt a checkpoint's store and arm the stream replay.

        The checkpoint's table digest is *not* checked here: it was
        taken after deltas were applied, so the freshly-loaded table
        legitimately differs.  The check runs at the replay boundary
        instead (:meth:`_verify_resume_boundary`), once the re-applied
        deltas should have reproduced the checkpointed routing state.
        """
        stores, meta = read_checkpoint(path)
        if len(stores) != 1:
            raise CheckpointError(
                f"serve checkpoints hold one store, found {len(stores)} shards"
            )
        self.store = stores[0]
        self._resume_meta = meta
        self._resume_skip = int(meta.get("stream_events", 0))
        self._resume_path = path

    @property
    def resume_skip(self) -> int:
        """Stream events the armed checkpoint already covers (0 = fresh)."""
        return self._resume_skip

    @property
    def replaying(self) -> bool:
        """True while consumed events are still inside the checkpoint."""
        return bool(self._resume_skip) and (
            self.events_consumed < self._resume_skip
        )

    # -- write-ahead log -------------------------------------------------

    def attach_wal(self) -> None:
        """Start a fresh write-ahead log at ``config.wal_dir``.

        For new runs only — a directory holding a previous run's log is
        overwritten segment by segment.  Resumed runs go through
        :meth:`recover`, which continues the existing log instead.
        """
        if self.config.wal_dir is None:
            raise ValueError("attach_wal needs config.wal_dir set")
        self._wal = WalWriter(
            self.config.wal_dir,
            sync_every=self.config.wal_sync_every,
            segment_bytes=self.config.wal_segment_bytes,
            injector=self.injector,
            start_index=self.events_consumed,
        )

    def _wal_append(self, event: ServeEvent) -> None:
        """Durably log one event before it touches any state.

        ``ENOSPC`` gets one recovery attempt: a checkpoint makes every
        closed WAL segment it covers redundant, and truncating them is
        the only space this daemon can legally free — so checkpoint,
        truncate, retry.  A second failure propagates (the disk is
        genuinely full and durability cannot be honoured).
        """
        wal = self._wal
        if wal is None:
            return
        payload = event.to_json().encode("utf-8")
        try:
            receipt = wal.append(payload)
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            self.checkpoint_now()
            receipt = wal.append(payload)
            self.metrics.record_wal_enospc_recovery()
        self.metrics.record_wal_append(receipt.synced)
        if receipt.rotated:
            self.metrics.record_wal_rotation()

    def recover(self) -> int:
        """Rebuild pre-crash state from checkpoint + WAL tail alone.

        No upstream replay: the checkpoint's ``table_state`` (persisted
        by WAL-mode checkpoints) is adopted outright, the epoch/digest
        boundary proof runs against it, and only the WAL frames past the
        checkpoint's ``stream_events`` are re-fed — they are exactly the
        events whose effects the crash destroyed.  Finishes by resuming
        the log in a fresh segment so the run keeps appending.  Returns
        the number of events re-fed.
        """
        wal_dir = self.config.wal_dir
        if wal_dir is None:
            raise ValueError("recover needs config.wal_dir set")
        recovery = recover_wal(wal_dir)
        base = 0
        path = self.config.checkpoint_path
        # A checkpoint that was never written is a legal fresh start
        # (the WAL still holds everything from event 0, because segment
        # truncation only ever follows a checkpoint); a checkpoint that
        # exists but cannot be read is NOT — recovering from scratch
        # would silently drop whatever the truncated segments covered —
        # so read errors propagate.
        if path is not None and os.path.exists(path):
            stores, meta = read_checkpoint(path)
            if len(stores) != 1:
                raise CheckpointError(
                    "serve checkpoints hold one store, found "
                    f"{len(stores)} shards"
                )
            restored = meta.get("table_state")
            if restored is None:
                raise CheckpointTableMismatchError(
                    f"checkpoint {path!r} carries no table_state — it "
                    "was written without --wal, so it can only resume "
                    "by full-stream replay, not WAL recovery"
                )
            if isinstance(self.table, MemoizedLookup):
                self.table.table = restored
                self.table.clear_memo()
            else:
                self.table = restored
            self._verify_recovered_table(meta)
            self.store = stores[0]
            self.events_consumed = int(meta.get("stream_events", 0))
            self.deltas_received = int(meta.get("deltas_received", 0))
            base = self.events_consumed
        tail = [pair for pair in recovery.events if pair[0] >= base]
        if recovery.next_index < base or len(tail) != recovery.next_index - base:
            raise WalCorruptError(
                f"WAL at {wal_dir!r} does not cover the checkpoint "
                f"boundary: checkpoint at stream event {base}, WAL holds "
                f"{len(tail)} events up to {recovery.next_index} — "
                "segments are missing"
            )
        for index, payload in tail:
            event = parse_event(payload.decode("utf-8"))
            if event is None:
                raise WalCorruptError(
                    f"WAL frame {index} decodes to no event — the log was "
                    "not written by this daemon"
                )
            self.feed(event)
        self._flush_all()
        self.metrics.record_wal_recovery(len(tail), recovery.truncated_frames)
        self._wal = WalWriter.resume(
            wal_dir,
            recovery,
            sync_every=self.config.wal_sync_every,
            segment_bytes=self.config.wal_segment_bytes,
            injector=self.injector,
        )
        return len(tail)

    def _verify_recovered_table(self, meta: Dict[str, Any]) -> None:
        """The boundary proof, WAL flavour: the adopted table must carry
        exactly the routing generation and digest the checkpoint was
        taken against."""
        expected_epoch = int(meta.get("routing_epoch", 0))
        expected_deltas = int(meta.get("deltas_applied", 0))
        actual = (int(self.table.epoch), int(self.table.deltas_applied))
        if actual != (expected_epoch, expected_deltas):
            raise CheckpointTableMismatchError(
                "recovered table's routing generation does not match the "
                f"checkpoint (checkpoint epoch {expected_epoch} / "
                f"{expected_deltas} deltas; table {actual[0]} / {actual[1]})"
            )
        expected_digest = str(meta.get("table_digest", ""))
        if expected_digest and self.table.digest() != expected_digest:
            raise CheckpointTableMismatchError(
                "recovered table's digest does not match the checkpoint "
                f"(stored {expected_digest[:12]}…, "
                f"restored {self.table.digest()[:12]}…)"
            )

    # -- bounded ingress --------------------------------------------------

    def submit(self, event: ServeEvent) -> bool:
        """Admit one event through the overload gate.

        With no watermark configured this is :meth:`feed`.  Otherwise
        the event joins the ingress queue — unless shedding is active
        and it is a log event, in which case it is dropped and counted
        (``False`` return).  Routing deltas are *never* shed: a stale
        table silently mis-clusters every later request, while a
        dropped request only undercounts one.
        """
        high = self.config.shed_watermark
        if high <= 0:
            self.feed(event)
            return True
        size = len(self._ingress)
        if self._shedding:
            if size <= self._shed_floor():
                self._shedding = False
        elif size >= high:
            self._shedding = True
            warnings.warn(
                f"ingress queue reached {size} events (watermark "
                f"{high}); shedding log events until it drains to "
                f"{self._shed_floor()}",
                OverloadShedWarning,
                stacklevel=2,
            )
        if self._shedding and isinstance(event, LogEvent):
            self.metrics.record_shed(1)
            return False
        self._ingress.append(event)
        return True

    def pump(self, limit: Optional[int] = None) -> int:
        """Drain up to ``limit`` queued events into :meth:`feed`
        (everything queued when ``limit`` is ``None``).  Returns the
        number drained."""
        drained = 0
        ingress = self._ingress
        while ingress and (limit is None or drained < limit):
            self.feed(ingress.popleft())
            drained += 1
        return drained

    def _shed_floor(self) -> int:
        if self.config.shed_low > 0:
            return self.config.shed_low
        return self.config.shed_watermark // 2

    @property
    def shedding(self) -> bool:
        """True while the overload gate is dropping log events."""
        return self._shedding

    @property
    def ingress_depth(self) -> int:
        return len(self._ingress)

    # -- event loop ------------------------------------------------------

    def feed(self, event: ServeEvent) -> None:
        """Consume one stream event (request or routing delta)."""
        self._wal_append(event)
        self.events_consumed += 1
        self._since_checkpoint += 1
        if isinstance(event, RouteDelta):
            self._flush_logs()
            self.deltas_received += 1
            # Last event per prefix wins — the same end state applying
            # the run one-by-one would leave, because no log event
            # separates the deltas of one run.
            self._pending_deltas[event.prefix] = event
        else:
            self._flush_deltas()
            self._pending_logs.append((event.client, event.url, event.size))
            if len(self._pending_logs) >= self.config.batch_size:
                self._flush_logs()
        if self._resume_skip and self.events_consumed == self._resume_skip:
            self._flush_all()
            self._verify_resume_boundary()
        if (
            self.config.checkpoint_path
            and self.config.checkpoint_every
            and self._since_checkpoint >= self.config.checkpoint_every
        ):
            self.checkpoint_now()

    def finish(self) -> None:
        """Drain ingress, flush, final checkpoint, seal the WAL.

        The order matters: the checkpoint is written (and covered WAL
        segments truncated) *before* the seal, so a sealed log always
        ends with a segment the checkpoint still references — recovery
        after a graceful shutdown finds a sealed, contiguous log.
        """
        self.pump()
        if self.replaying:
            raise CheckpointTableMismatchError(
                f"stream ended after {self.events_consumed:,} events but "
                f"the checkpoint was taken at {self._resume_skip:,} — "
                "resume needs the same stream replayed from the start"
            )
        self._flush_all()
        if self.config.checkpoint_path:
            self.checkpoint_now()
        if self._wal is not None and not self._wal.sealed:
            self._wal.seal()
        self._drain_stats()

    def abort(self) -> None:
        """Crash-consistent teardown for fatal errors: sync and close
        the WAL *without* sealing, so recovery treats the run as a crash
        and replays its tail.  Buffers are deliberately not flushed —
        their events are in the WAL, and applying them here could mask
        the very state the fatal error poisoned."""
        if self._wal is not None and not self._wal.sealed:
            self._wal.close()

    def health(self) -> Dict[str, Any]:
        """One heartbeat's worth of liveness figures (plain types)."""
        return {
            "events": self.events_consumed,
            "deltas": self.deltas_received,
            "clusters": len(self.store),
            "unclustered": self.store.num_unclustered,
            "ingress": len(self._ingress),
            "shedding": self._shedding,
            "shed_events": self.metrics.shed_events,
            "wal_appends": self.metrics.wal_appends,
            "checkpoints": self.metrics.checkpoints_written,
            "epoch": int(self.table.epoch),
        }

    def snapshot(self, name: Optional[str] = None) -> ClusterSet:
        """Materialise the current clusters (non-destructive)."""
        return self.store.snapshot(
            name=name if name is not None else self.config.name,
            method="network-aware",
        )

    # -- flushing --------------------------------------------------------

    def _flush_all(self) -> None:
        self._flush_logs()
        self._flush_deltas()

    def _flush_logs(self) -> None:
        if not self._pending_logs:
            return
        batch = self._pending_logs
        self._pending_logs = []
        if self._resume_skip and self.events_consumed <= self._resume_skip:
            # Replay: these requests are already in the restored store.
            return
        started = perf_counter()
        applied = self.store.apply_batch(batch, self.table)
        self.metrics.record_batch([applied], perf_counter() - started, applied)

    def _flush_deltas(self) -> None:
        if not self._pending_deltas:
            return
        deltas = self._pending_deltas
        self._pending_deltas = {}
        if self.injector is not None:
            if self.injector.fire(SITE_SERVE_CRASH) is not None:
                # Deliberately *before* any mutation: the process dies
                # with the on-disk checkpoint predating this batch,
                # which is what resume must recover from.
                raise InjectedFault(
                    SITE_SERVE_CRASH, "injected serve crash mid-delta"
                )
        started = perf_counter()
        announce: List[Tuple[Prefix, Any]] = []
        withdraw: List[Prefix] = []
        for prefix in sorted(deltas, key=Prefix.sort_key):
            delta = deltas[prefix]
            if delta.op == RouteDelta.OP_ANNOUNCE:
                announce.append((prefix, self._value_for(delta)))
            else:
                withdraw.append(prefix)
        replay = bool(self._resume_skip) and (
            self.events_consumed <= self._resume_skip
        )
        threshold = max(PATCH_FALLBACK_FLOOR, len(self.table) // 2)
        if len(announce) + len(withdraw) > threshold:
            windows = self._rebuild(announce, withdraw)
            if not replay:
                self.metrics.record_patch_fallback()
        else:
            result = self.table.apply_delta(announce, withdraw)
            windows = list(result.windows)
        if replay:
            # Replay rebuilds the routing state only: the restored
            # store already reflects these deltas' reclustering, so
            # re-running it would double-apply the migrations.
            return
        moved = self.store.reassign_clients(windows, self.table)
        self.metrics.record_patch(
            len(announce), len(withdraw), moved, perf_counter() - started
        )
        if _sanitize.is_enabled() and _sanitize.crosscheck_due():
            # Sampled runtime equivalence gate: the patched table must
            # be indistinguishable from a from-scratch rebuild.
            self.table.verify_patched()
            _sanitize.record_crosscheck()

    def _value_for(self, delta: RouteDelta) -> LookupResult:
        """The table value an announce installs (LookupResult-shaped,
        like :meth:`PackedLpm.from_merged` values, so provenance and
        cluster source labels keep working)."""
        entry = RouteEntry(
            prefix=delta.prefix,
            as_path=(delta.origin_asn,) if delta.origin_asn else (),
        )
        return LookupResult(
            prefix=delta.prefix,
            entry=entry,
            source_name=delta.source,
            source_kind=KIND_BGP,
        )

    def _rebuild(
        self, announce: List[Tuple[Prefix, Any]], withdraw: List[Prefix]
    ) -> List[Tuple[int, int]]:
        """Full-rebuild fallback for oversized delta batches.

        Produces the same final table and the same invalidation windows
        as the in-place patch would, and carries the patch-generation
        counters forward so resume accounting stays consistent.
        """
        inner = self.table.table if isinstance(
            self.table, MemoizedLookup
        ) else self.table
        items = dict(inner.items())
        spans: List[Tuple[int, int]] = []
        for prefix, value in announce:
            items[prefix] = value
            spans.append((prefix.network, prefix.last_address))
        for prefix in withdraw:
            items.pop(prefix, None)
            spans.append((prefix.network, prefix.last_address))
        epoch = int(inner.epoch)
        deltas_applied = int(inner.deltas_applied)
        rebuilt = type(inner).from_items(
            sorted(items.items(), key=lambda kv: kv[0].sort_key())
        )
        rebuilt.restore_generation(
            epoch + 1, deltas_applied + len(announce) + len(withdraw)
        )
        if isinstance(self.table, MemoizedLookup):
            self.table.table = rebuilt
            self.table.clear_memo()
        else:
            self.table = rebuilt
        return merge_windows(spans)

    # -- checkpoints -----------------------------------------------------

    def checkpoint_now(self) -> None:
        """Flush and write a verified checkpoint (no-op while replaying,
        when the on-disk checkpoint is already ahead of us).

        Resets the periodic-checkpoint countdown itself, so direct
        calls — from :meth:`finish`, a signal handler, or the ENOSPC
        path — push the next periodic checkpoint out instead of letting
        it fire immediately after.

        WAL-mode checkpoints additionally persist the live table
        (``meta["table_state"]``) so :meth:`recover` needs no stream
        replay, and afterwards delete every closed WAL segment the new
        checkpoint covers.
        """
        path = self.config.checkpoint_path
        if path is None:
            return
        self._flush_all()
        self._since_checkpoint = 0
        if self.replaying:
            return
        digest = self.table.digest()
        meta: Dict[str, Any] = {
            "stream": self.config.name,
            "stream_events": self.events_consumed,
        }
        if self.config.wal_dir is not None:
            meta["deltas_received"] = self.deltas_received
            meta["table_state"] = (
                self.table.table
                if isinstance(self.table, MemoizedLookup)
                else self.table
            )
        for attempt in range(1, self.config.checkpoint_attempts + 1):
            write_checkpoint(
                path,
                [self.store],
                table_digest=digest,
                meta=meta,
                routing_epoch=int(self.table.epoch),
                deltas_applied=int(self.table.deltas_applied),
            )
            if self.injector is not None:
                self.injector.damage_file(path)
            try:
                read_checkpoint(path, table_digest=digest)
                break
            except CheckpointCorruptError:
                if attempt == self.config.checkpoint_attempts:
                    raise
                self.metrics.record_checkpoint_rewrite()
        self.metrics.record_checkpoint()
        if self._wal is not None:
            removed = self._wal.truncate_covered(self.events_consumed)
            if removed:
                self.metrics.record_wal_truncated_segments(removed)

    def _verify_resume_boundary(self) -> None:
        """Prove the replay reproduced the checkpointed routing state."""
        expected_epoch = int(self._resume_meta.get("routing_epoch", 0))
        expected_deltas = int(self._resume_meta.get("deltas_applied", 0))
        actual_epoch = int(self.table.epoch)
        actual_deltas = int(self.table.deltas_applied)
        if (actual_epoch, actual_deltas) != (expected_epoch, expected_deltas):
            raise CheckpointTableMismatchError(
                "replayed stream does not reproduce the checkpoint's "
                f"routing generation (checkpoint epoch {expected_epoch} / "
                f"{expected_deltas} deltas; replay {actual_epoch} / "
                f"{actual_deltas}) — resume needs the same stream and the "
                "same batching flags"
            )
        if self._resume_path is not None:
            # Re-running the digest gauntlet against the *replayed*
            # table catches any divergence the counters cannot see.
            read_checkpoint(self._resume_path, table_digest=self.table.digest())

    # -- stats -----------------------------------------------------------

    def _drain_stats(self) -> None:
        take_memo = getattr(self.table, "take_memo_stats", None)
        if take_memo is not None:
            self.metrics.record_memo(*take_memo())
        if _sanitize.is_enabled():
            self.metrics.record_sanitize(*_sanitize.take_stats())
