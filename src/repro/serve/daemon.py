"""The serve event loop: batch, patch, recluster, checkpoint.

:class:`ServeDaemon` is a single-process state machine fed one
:class:`~repro.serve.protocol.ServeEvent` at a time.  Log events buffer
into batches (one LPM pass per batch, like the engine's chunks); route
events buffer into a *coalesced* delta map (last event per prefix wins,
which is also what applying them one-by-one would leave behind).  The
buffers flush whenever the stream switches kind, so a routing change is
always applied between the requests that preceded it and the requests
that follow it — event order on the stream is the serialization order.

Applying a delta batch is the incremental §3.4 self-correction:

1. :meth:`~repro.engine.packed.PackedLpm.apply_delta` patches the live
   table in place and reports the address ``windows`` it touched (a
   :class:`~repro.engine.fastpath.MemoizedLookup` front evicts only the
   memo entries inside those windows);
2. :meth:`~repro.engine.state.ClusterStore.reassign_clients` re-resolves
   only the accumulated clients inside the windows and migrates the
   ones whose longest match moved.

A pathologically large batch (more than half the table) falls back to a
from-scratch rebuild — counted in
``EngineMetrics.patch_rebuild_fallbacks`` — with the patch-generation
counters carried over so checkpoints stay comparable.

Checkpoints reuse the engine's versioned envelope and additionally
persist the routing generation (``routing_epoch`` / ``deltas_applied``)
and the stream position (``stream_events``).  ``--resume`` replays the
stream: route events are re-applied to the table (rebuilding the
patched routing state) without re-running the reclustering — the
restored store already reflects it — and log events inside the
already-checkpointed prefix are dropped
(their counts are in the restored store), and at the boundary the
daemon proves the replay reproduced the checkpoint — same routing
generation, same table digest — before new events are accumulated.
Byte-identical resume assumes the same stream and the same
``--batch-size`` / ``--checkpoint-every`` settings.

Under ``REPRO_SANITIZE=1`` a sampled subset of patches is followed by
:meth:`verify_patched` — the full patched-equals-rebuilt equivalence
gate — at runtime, not just in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import sanitize as _sanitize
from repro.bgp.synth import RouteDelta
from repro.bgp.table import KIND_BGP, LookupResult, RouteEntry
from repro.core.clustering import ClusterSet
from repro.engine.fastpath import MemoizedLookup
from repro.engine.metrics import EngineMetrics
from repro.engine.packed import merge_windows
from repro.engine.state import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointTableMismatchError,
    ClusterStore,
    read_checkpoint,
    write_checkpoint,
)
from repro.errors import InjectedFault
from repro.faults import SITE_SERVE_CRASH, FaultInjector
from repro.net.prefix import Prefix
from repro.serve.protocol import ServeEvent

__all__ = ["ServeConfig", "ServeDaemon"]

#: Patch-vs-rebuild crossover: a coalesced delta batch touching more
#: prefixes than ``max(PATCH_FALLBACK_FLOOR, len(table) // 2)`` is
#: cheaper to rebuild than to splice piecewise.
PATCH_FALLBACK_FLOOR = 64


@dataclass
class ServeConfig:
    """Tunables for one daemon run."""

    name: str = "serve"
    batch_size: int = 4096
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 0
    checkpoint_attempts: int = 3


class ServeDaemon:
    """Clusters a live event stream against an in-place-patched table."""

    def __init__(
        self,
        table: Any,
        config: Optional[ServeConfig] = None,
        metrics: Optional[EngineMetrics] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.table = table
        self.config = config or ServeConfig()
        self.metrics = metrics or EngineMetrics(1)
        self.injector = injector
        self.store = ClusterStore()
        self.events_consumed = 0
        self.deltas_received = 0
        self._pending_logs: List[Tuple[int, str, int]] = []
        self._pending_deltas: Dict[Prefix, RouteDelta] = {}
        self._since_checkpoint = 0
        self._resume_skip = 0
        self._resume_path: Optional[str] = None
        self._resume_meta: Dict[str, Any] = {}

    # -- resume ----------------------------------------------------------

    def resume_from(self, path: str) -> None:
        """Adopt a checkpoint's store and arm the stream replay.

        The checkpoint's table digest is *not* checked here: it was
        taken after deltas were applied, so the freshly-loaded table
        legitimately differs.  The check runs at the replay boundary
        instead (:meth:`_verify_resume_boundary`), once the re-applied
        deltas should have reproduced the checkpointed routing state.
        """
        stores, meta = read_checkpoint(path)
        if len(stores) != 1:
            raise CheckpointError(
                f"serve checkpoints hold one store, found {len(stores)} shards"
            )
        self.store = stores[0]
        self._resume_meta = meta
        self._resume_skip = int(meta.get("stream_events", 0))
        self._resume_path = path

    @property
    def resume_skip(self) -> int:
        """Stream events the armed checkpoint already covers (0 = fresh)."""
        return self._resume_skip

    @property
    def replaying(self) -> bool:
        """True while consumed events are still inside the checkpoint."""
        return bool(self._resume_skip) and (
            self.events_consumed < self._resume_skip
        )

    # -- event loop ------------------------------------------------------

    def feed(self, event: ServeEvent) -> None:
        """Consume one stream event (request or routing delta)."""
        self.events_consumed += 1
        self._since_checkpoint += 1
        if isinstance(event, RouteDelta):
            self._flush_logs()
            self.deltas_received += 1
            # Last event per prefix wins — the same end state applying
            # the run one-by-one would leave, because no log event
            # separates the deltas of one run.
            self._pending_deltas[event.prefix] = event
        else:
            self._flush_deltas()
            self._pending_logs.append((event.client, event.url, event.size))
            if len(self._pending_logs) >= self.config.batch_size:
                self._flush_logs()
        if self._resume_skip and self.events_consumed == self._resume_skip:
            self._flush_all()
            self._verify_resume_boundary()
        if (
            self.config.checkpoint_path
            and self.config.checkpoint_every
            and self._since_checkpoint >= self.config.checkpoint_every
        ):
            self.checkpoint_now()
            self._since_checkpoint = 0

    def finish(self) -> None:
        """Flush all buffers, write the final checkpoint, drain stats."""
        if self.replaying:
            raise CheckpointTableMismatchError(
                f"stream ended after {self.events_consumed:,} events but "
                f"the checkpoint was taken at {self._resume_skip:,} — "
                "resume needs the same stream replayed from the start"
            )
        self._flush_all()
        if self.config.checkpoint_path:
            self.checkpoint_now()
        self._drain_stats()

    def snapshot(self, name: Optional[str] = None) -> ClusterSet:
        """Materialise the current clusters (non-destructive)."""
        return self.store.snapshot(
            name=name if name is not None else self.config.name,
            method="network-aware",
        )

    # -- flushing --------------------------------------------------------

    def _flush_all(self) -> None:
        self._flush_logs()
        self._flush_deltas()

    def _flush_logs(self) -> None:
        if not self._pending_logs:
            return
        batch = self._pending_logs
        self._pending_logs = []
        if self._resume_skip and self.events_consumed <= self._resume_skip:
            # Replay: these requests are already in the restored store.
            return
        started = perf_counter()
        applied = self.store.apply_batch(batch, self.table)
        self.metrics.record_batch([applied], perf_counter() - started, applied)

    def _flush_deltas(self) -> None:
        if not self._pending_deltas:
            return
        deltas = self._pending_deltas
        self._pending_deltas = {}
        if self.injector is not None:
            if self.injector.fire(SITE_SERVE_CRASH) is not None:
                # Deliberately *before* any mutation: the process dies
                # with the on-disk checkpoint predating this batch,
                # which is what resume must recover from.
                raise InjectedFault(
                    SITE_SERVE_CRASH, "injected serve crash mid-delta"
                )
        started = perf_counter()
        announce: List[Tuple[Prefix, Any]] = []
        withdraw: List[Prefix] = []
        for prefix in sorted(deltas, key=Prefix.sort_key):
            delta = deltas[prefix]
            if delta.op == RouteDelta.OP_ANNOUNCE:
                announce.append((prefix, self._value_for(delta)))
            else:
                withdraw.append(prefix)
        replay = bool(self._resume_skip) and (
            self.events_consumed <= self._resume_skip
        )
        threshold = max(PATCH_FALLBACK_FLOOR, len(self.table) // 2)
        if len(announce) + len(withdraw) > threshold:
            windows = self._rebuild(announce, withdraw)
            if not replay:
                self.metrics.record_patch_fallback()
        else:
            result = self.table.apply_delta(announce, withdraw)
            windows = list(result.windows)
        if replay:
            # Replay rebuilds the routing state only: the restored
            # store already reflects these deltas' reclustering, so
            # re-running it would double-apply the migrations.
            return
        moved = self.store.reassign_clients(windows, self.table)
        self.metrics.record_patch(
            len(announce), len(withdraw), moved, perf_counter() - started
        )
        if _sanitize.is_enabled() and _sanitize.crosscheck_due():
            # Sampled runtime equivalence gate: the patched table must
            # be indistinguishable from a from-scratch rebuild.
            self.table.verify_patched()
            _sanitize.record_crosscheck()

    def _value_for(self, delta: RouteDelta) -> LookupResult:
        """The table value an announce installs (LookupResult-shaped,
        like :meth:`PackedLpm.from_merged` values, so provenance and
        cluster source labels keep working)."""
        entry = RouteEntry(
            prefix=delta.prefix,
            as_path=(delta.origin_asn,) if delta.origin_asn else (),
        )
        return LookupResult(
            prefix=delta.prefix,
            entry=entry,
            source_name=delta.source,
            source_kind=KIND_BGP,
        )

    def _rebuild(
        self, announce: List[Tuple[Prefix, Any]], withdraw: List[Prefix]
    ) -> List[Tuple[int, int]]:
        """Full-rebuild fallback for oversized delta batches.

        Produces the same final table and the same invalidation windows
        as the in-place patch would, and carries the patch-generation
        counters forward so resume accounting stays consistent.
        """
        inner = self.table.table if isinstance(
            self.table, MemoizedLookup
        ) else self.table
        items = dict(inner.items())
        spans: List[Tuple[int, int]] = []
        for prefix, value in announce:
            items[prefix] = value
            spans.append((prefix.network, prefix.last_address))
        for prefix in withdraw:
            items.pop(prefix, None)
            spans.append((prefix.network, prefix.last_address))
        epoch = int(inner.epoch)
        deltas_applied = int(inner.deltas_applied)
        rebuilt = type(inner).from_items(
            sorted(items.items(), key=lambda kv: kv[0].sort_key())
        )
        rebuilt.restore_generation(
            epoch + 1, deltas_applied + len(announce) + len(withdraw)
        )
        if isinstance(self.table, MemoizedLookup):
            self.table.table = rebuilt
            self.table.clear_memo()
        else:
            self.table = rebuilt
        return merge_windows(spans)

    # -- checkpoints -----------------------------------------------------

    def checkpoint_now(self) -> None:
        """Flush and write a verified checkpoint (no-op while replaying,
        when the on-disk checkpoint is already ahead of us)."""
        path = self.config.checkpoint_path
        if path is None:
            return
        self._flush_all()
        if self.replaying:
            return
        digest = self.table.digest()
        meta = {
            "stream": self.config.name,
            "stream_events": self.events_consumed,
        }
        for attempt in range(1, self.config.checkpoint_attempts + 1):
            write_checkpoint(
                path,
                [self.store],
                table_digest=digest,
                meta=meta,
                routing_epoch=int(self.table.epoch),
                deltas_applied=int(self.table.deltas_applied),
            )
            if self.injector is not None:
                self.injector.damage_file(path)
            try:
                read_checkpoint(path, table_digest=digest)
                break
            except CheckpointCorruptError:
                if attempt == self.config.checkpoint_attempts:
                    raise
                self.metrics.record_checkpoint_rewrite()
        self.metrics.record_checkpoint()

    def _verify_resume_boundary(self) -> None:
        """Prove the replay reproduced the checkpointed routing state."""
        expected_epoch = int(self._resume_meta.get("routing_epoch", 0))
        expected_deltas = int(self._resume_meta.get("deltas_applied", 0))
        actual_epoch = int(self.table.epoch)
        actual_deltas = int(self.table.deltas_applied)
        if (actual_epoch, actual_deltas) != (expected_epoch, expected_deltas):
            raise CheckpointTableMismatchError(
                "replayed stream does not reproduce the checkpoint's "
                f"routing generation (checkpoint epoch {expected_epoch} / "
                f"{expected_deltas} deltas; replay {actual_epoch} / "
                f"{actual_deltas}) — resume needs the same stream and the "
                "same batching flags"
            )
        if self._resume_path is not None:
            # Re-running the digest gauntlet against the *replayed*
            # table catches any divergence the counters cannot see.
            read_checkpoint(self._resume_path, table_digest=self.table.digest())

    # -- stats -----------------------------------------------------------

    def _drain_stats(self) -> None:
        take_memo = getattr(self.table, "take_memo_stats", None)
        if take_memo is not None:
            self.metrics.record_memo(*take_memo())
        if _sanitize.is_enabled():
            self.metrics.record_sanitize(*_sanitize.take_stats())
