"""The serve stream's wire format: one JSON object per line (ndjson).

Three event types flow on one stream, so routing changes are ordered
relative to the requests around them — the property the incremental
reclustering relies on:

``{"type": "log", "client": "12.65.147.9", "url": "/a", "size": 1024}``
    one weblog request; ``client`` is dotted-quad text (or a raw
    integer address), ``size`` defaults to 0 (a 304, like CLF's "-").

``{"type": "announce", "prefix": "12.65.128.0/19", "origin_asn": 7018,
"source": "AADS", "reason": "churn"}``
    a route appeared (or re-appeared, or changed origin).

``{"type": "withdraw", "prefix": "12.65.128.0/19", ...}``
    a route disappeared.

Route events are exactly the JSON form of
:class:`~repro.bgp.synth.RouteDelta`, so ``repro-bgp-synth`` output
pipes straight into ``repro-engine serve`` with no translation.

Malformed lines raise :class:`~repro.errors.ServeProtocolError`; the
daemon counts-and-skips them under its ``--max-errors`` budget, the
same hygiene the batch pipeline applies to malformed CLF lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.bgp.synth import RouteDelta
from repro.errors import ServeProtocolError
from repro.net.ipv4 import AddressError, format_ipv4, parse_ipv4

__all__ = [
    "EVENT_LOG",
    "EVENT_ANNOUNCE",
    "EVENT_WITHDRAW",
    "LogEvent",
    "ServeEvent",
    "parse_event",
]

EVENT_LOG = "log"
EVENT_ANNOUNCE = RouteDelta.OP_ANNOUNCE
EVENT_WITHDRAW = RouteDelta.OP_WITHDRAW


@dataclass(frozen=True)
class LogEvent:
    """One weblog request on the stream: the ``(client, url, size)``
    projection the cluster accumulators need."""

    client: int
    url: str = ""
    size: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": EVENT_LOG,
            "client": format_ipv4(self.client),
            "url": self.url,
            "size": self.size,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


#: Anything the daemon's :meth:`~repro.serve.daemon.ServeDaemon.feed`
#: accepts: a request or a routing delta.
ServeEvent = Union[LogEvent, RouteDelta]


def parse_event(line: str) -> Optional[ServeEvent]:
    """Decode one stream line; blank lines decode to ``None``.

    Raises :class:`ServeProtocolError` for anything that is not a JSON
    object with a known ``type`` and well-formed fields.
    """
    text = line.strip()
    if not text:
        return None
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ServeProtocolError(
            f"event line is not JSON: {text[:80]!r} ({exc})"
        ) from exc
    if not isinstance(data, dict):
        raise ServeProtocolError(
            f"event must be a JSON object, got {type(data).__name__}: "
            f"{text[:80]!r}"
        )
    kind = data.get("type")
    if kind == EVENT_LOG:
        try:
            client = data["client"]
            address = (
                parse_ipv4(client) if isinstance(client, str) else int(client)
            )
            return LogEvent(
                client=address,
                url=str(data.get("url", "")),
                size=int(data.get("size", 0)),
            )
        except (AddressError, KeyError, TypeError, ValueError) as exc:
            raise ServeProtocolError(
                f"bad log event: {text[:80]!r} ({exc})"
            ) from exc
    if kind in (EVENT_ANNOUNCE, EVENT_WITHDRAW):
        try:
            return RouteDelta.from_dict(data)
        except (AddressError, KeyError, TypeError, ValueError) as exc:
            raise ServeProtocolError(
                f"bad route event: {text[:80]!r} ({exc})"
            ) from exc
    raise ServeProtocolError(
        f"unknown event type {kind!r}: {text[:80]!r}"
    )
