"""The serve stream's wire format: one JSON object per line (ndjson).

Three event types flow on one stream, so routing changes are ordered
relative to the requests around them — the property the incremental
reclustering relies on:

``{"type": "log", "client": "12.65.147.9", "url": "/a", "size": 1024}``
    one weblog request; ``client`` is dotted-quad text (or a raw
    integer address), ``size`` defaults to 0 (a 304, like CLF's "-").

``{"type": "announce", "prefix": "12.65.128.0/19", "origin_asn": 7018,
"source": "AADS", "reason": "churn"}``
    a route appeared (or re-appeared, or changed origin).

``{"type": "withdraw", "prefix": "12.65.128.0/19", ...}``
    a route disappeared.

Route events are exactly the JSON form of
:class:`~repro.bgp.synth.RouteDelta`, so ``repro-bgp-synth`` output
pipes straight into ``repro-engine serve`` with no translation.

Malformed lines raise :class:`~repro.errors.ServeProtocolError`; the
daemon counts-and-skips them under its ``--max-errors`` budget, the
same hygiene the batch pipeline applies to malformed CLF lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.bgp.synth import RouteDelta
from repro.errors import (
    ServeDisconnectError,
    ServeLineTooLongError,
    ServeProtocolError,
)
from repro.net.ipv4 import AddressError, format_ipv4, parse_ipv4

__all__ = [
    "EVENT_LOG",
    "EVENT_ANNOUNCE",
    "EVENT_WITHDRAW",
    "DEFAULT_MAX_LINE_BYTES",
    "LogEvent",
    "ServeEvent",
    "LineSplitter",
    "parse_event",
]

#: Default per-line byte budget for :class:`LineSplitter`.  Generous —
#: real event lines are well under 200 bytes — but finite, so a client
#: that never sends a newline cannot grow daemon memory without bound.
DEFAULT_MAX_LINE_BYTES = 1 << 16

EVENT_LOG = "log"
EVENT_ANNOUNCE = RouteDelta.OP_ANNOUNCE
EVENT_WITHDRAW = RouteDelta.OP_WITHDRAW


@dataclass(frozen=True)
class LogEvent:
    """One weblog request on the stream: the ``(client, url, size)``
    projection the cluster accumulators need."""

    client: int
    url: str = ""
    size: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": EVENT_LOG,
            "client": format_ipv4(self.client),
            "url": self.url,
            "size": self.size,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


#: Anything the daemon's :meth:`~repro.serve.daemon.ServeDaemon.feed`
#: accepts: a request or a routing delta.
ServeEvent = Union[LogEvent, RouteDelta]


class LineSplitter:
    """Reassembles ndjson lines from arbitrary byte chunks, bounded.

    Socket reads hand the serve loop whatever the kernel had — half a
    line, three lines and a fragment — so the loop needs stateful
    splitting.  :meth:`push` buffers a chunk; :meth:`next_line` yields
    one complete line at a time (``None`` when more bytes are needed).

    The buffer is bounded by ``max_line_bytes``: a line that exceeds it
    raises :class:`~repro.errors.ServeLineTooLongError` *once*, the
    oversized line's bytes are discarded through its terminating
    newline (whenever that arrives), and splitting continues with the
    next line — one counted error per hostile line, never unbounded
    memory, never a dead connection.
    """

    def __init__(self, max_line_bytes: int = DEFAULT_MAX_LINE_BYTES) -> None:
        if max_line_bytes < 1:
            raise ValueError(
                f"max_line_bytes must be >= 1: {max_line_bytes!r}"
            )
        self.max_line_bytes = max_line_bytes
        self._buffer = bytearray()
        self._discarding = False

    @property
    def pending(self) -> int:
        """Bytes of an incomplete line still buffered — non-zero at
        connection teardown means the peer vanished mid-frame."""
        return len(self._buffer)

    def push(self, chunk: bytes) -> None:
        """Buffer one received chunk (never raises; the budget check
        happens in :meth:`next_line`, where the error can be counted)."""
        self._buffer.extend(chunk)

    def next_line(self) -> Optional[str]:
        """The next complete line, newline stripped; ``None`` when the
        buffer holds no complete line yet.

        Raises :class:`ServeLineTooLongError` when the line under
        assembly exceeds the budget — whether its newline has arrived
        or not — after discarding the offending bytes.
        """
        while True:
            buffer = self._buffer
            newline = buffer.find(b"\n")
            if self._discarding:
                if newline < 0:
                    # Still inside the oversized line: drop what we have
                    # and keep waiting for its terminator.
                    buffer.clear()
                    return None
                del buffer[: newline + 1]
                self._discarding = False
                continue
            if newline < 0:
                if len(buffer) > self.max_line_bytes:
                    dropped = len(buffer)
                    buffer.clear()
                    self._discarding = True
                    raise ServeLineTooLongError(
                        f"event line exceeds {self.max_line_bytes} bytes "
                        f"({dropped} buffered with no newline in sight) — "
                        "line discarded"
                    )
                return None
            if newline > self.max_line_bytes:
                del buffer[: newline + 1]
                raise ServeLineTooLongError(
                    f"event line of {newline} bytes exceeds the "
                    f"{self.max_line_bytes}-byte budget — line discarded"
                )
            line = bytes(buffer[:newline])
            del buffer[: newline + 1]
            return line.decode("utf-8", errors="replace")

    def flush(self) -> Optional[str]:
        """The final unterminated line at a *clean* end of stream, or
        ``None`` — files legitimately end without a trailing newline.
        Callers seeing an unclean teardown call :meth:`abandon` instead;
        a partial frame from a vanished peer is an error, not a line."""
        if self._discarding or not self._buffer:
            self._buffer.clear()
            self._discarding = False
            return None
        line = bytes(self._buffer).decode("utf-8", errors="replace")
        self._buffer.clear()
        return line

    def abandon(self) -> None:
        """Tear down after an *unclean* end of stream (reset, timeout,
        injected disconnect).  Always leaves the splitter clean for the
        next connection; raises :class:`~repro.errors.ServeDisconnectError`
        if a partial frame was buffered, so the serve loop can count the
        torn frame under its error budget."""
        pending = len(self._buffer)
        discarding = self._discarding
        self._buffer.clear()
        self._discarding = False
        if pending or discarding:
            raise ServeDisconnectError(
                f"client vanished mid-frame ({pending} bytes of an "
                "unterminated event line buffered) — partial frame "
                "discarded"
            )


def parse_event(line: str) -> Optional[ServeEvent]:
    """Decode one stream line; blank lines decode to ``None``.

    Raises :class:`ServeProtocolError` for anything that is not a JSON
    object with a known ``type`` and well-formed fields.
    """
    text = line.strip()
    if not text:
        return None
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ServeProtocolError(
            f"event line is not JSON: {text[:80]!r} ({exc})"
        ) from exc
    if not isinstance(data, dict):
        raise ServeProtocolError(
            f"event must be a JSON object, got {type(data).__name__}: "
            f"{text[:80]!r}"
        )
    kind = data.get("type")
    if kind == EVENT_LOG:
        try:
            client = data["client"]
            address = (
                parse_ipv4(client) if isinstance(client, str) else int(client)
            )
            return LogEvent(
                client=address,
                url=str(data.get("url", "")),
                size=int(data.get("size", 0)),
            )
        except (AddressError, KeyError, TypeError, ValueError) as exc:
            raise ServeProtocolError(
                f"bad log event: {text[:80]!r} ({exc})"
            ) from exc
    if kind in (EVENT_ANNOUNCE, EVENT_WITHDRAW):
        try:
            return RouteDelta.from_dict(data)
        except (AddressError, KeyError, TypeError, ValueError) as exc:
            raise ServeProtocolError(
                f"bad route event: {text[:80]!r} ({exc})"
            ) from exc
    raise ServeProtocolError(
        f"unknown event type {kind!r}: {text[:80]!r}"
    )
