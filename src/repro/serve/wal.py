"""Segmented, CRC32-framed write-ahead log for the serve daemon.

The daemon's original recovery story — "replay the identical stream
from event 0" — assumes the upstream can rewind, which a live socket
feed cannot.  The WAL removes that assumption: every *accepted* event
is appended here **before** it mutates daemon state, so the daemon's
state machine is always reconstructible from its newest checkpoint plus
the WAL tail, with no cooperation from the upstream at all.

On-disk format
--------------

A log is a directory of segment files, ``wal-00000000.seg``,
``wal-00000001.seg``, …  Each segment starts with a 17-byte header::

    magic      8 bytes   b"REPROWAL"
    version    1 byte    WAL_VERSION
    start      8 bytes   stream index of the segment's first frame (LE)

followed by frames.  A frame is::

    kind       1 byte    FRAME_EVENT or FRAME_SEAL
    length     4 bytes   payload length (LE)
    crc32      4 bytes   zlib.crc32 of the payload (LE)
    payload    ``length`` bytes (the event's canonical ndjson)

Appends go to the newest segment; when it crosses ``segment_bytes`` the
writer fsyncs, closes it, and opens the next.  ``fsync`` is batched:
one sync per ``sync_every`` appends (and always on rotate/seal), so
durability latency is tunable against throughput.

Recovery (:func:`recover_wal`) reads the segments in order.  A torn
*tail* — an incomplete or CRC-failing frame at the end of the newest
segment, exactly what a crash mid-append leaves — is repaired by
truncating the file at the last good frame and counted (one per torn
tail) so the daemon can report it.  Damage anywhere else — a bad frame
mid-log, a mangled segment header, a gap in the segment sequence, event
frames after a seal — raises
:class:`~repro.errors.WalCorruptError`: the log cannot be trusted past
that point and resuming from it would silently drop events.

A clean shutdown appends a zero-length ``FRAME_SEAL`` frame
(:meth:`WalWriter.seal`); recovery reports it so operators can
distinguish "crashed" from "drained".  Resuming a sealed log is legal —
recovery simply starts the next segment — but the in-process writer
refuses further appends with :class:`~repro.errors.WalSealedError`.

Checkpoints make the log finite: once a checkpoint covers stream index
``n``, every *closed* segment whose frames all precede ``n`` is deleted
(:meth:`WalWriter.truncate_covered`).  Disk pressure rides the same
lever — an ``ENOSPC`` append makes the daemon checkpoint, truncate, and
retry before giving up (see ``ServeDaemon._wal_append``).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import InjectedFault, WalCorruptError, WalSealedError
from repro.faults import (
    SITE_SERVE_WAL_ENOSPC,
    SITE_SERVE_WAL_TORN,
    FaultInjector,
)

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "FRAME_EVENT",
    "FRAME_SEAL",
    "encode_frame",
    "decode_frames",
    "WalRecovery",
    "WalWriter",
    "recover_wal",
]

WAL_MAGIC = b"REPROWAL"
WAL_VERSION = 1

#: Lifecycle spec for ``repro-lint --flow``: every segment file opened
#: by the writer must reach ``close`` on all paths — a descriptor leaked
#: on an exception edge pins a partially-written segment that recovery
#: will later read as torn.
FLOW_SPECS = (
    {
        "rule": "resource-leak",
        "resource": "WAL segment file",
        "acquire": ("open",),
        "release_methods": ("close",),
        "modules": ("repro.serve.wal",),
    },
)

FRAME_EVENT = 0x45  # 'E'
FRAME_SEAL = 0x53  # 'S'

_FRAME_HEADER = struct.Struct("<BII")  # kind, payload length, payload crc32
_SEGMENT_HEADER = struct.Struct("<8sBQ")  # magic, version, start index

#: A frame longer than this cannot be legitimate (event lines are
#: ndjson, bounded by the serve line budget); treating the length field
#: as suspect keeps a flipped bit from making recovery "wait" for
#: gigabytes of payload that never existed.
MAX_FRAME_BYTES = 1 << 24

_ENOSPC = 28  # errno.ENOSPC, inlined to keep the hot append loop flat


def _segment_name(sequence: int) -> str:
    return f"wal-{sequence:08d}.seg"


def encode_frame(payload: bytes, kind: int = FRAME_EVENT) -> bytes:
    """Frame ``payload`` for appending: header (kind, length, CRC32)
    followed by the payload bytes."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return _FRAME_HEADER.pack(kind, len(payload), zlib.crc32(payload)) + payload


def decode_frames(blob: bytes) -> Tuple[List[Tuple[int, bytes]], int, bool]:
    """Decode consecutive frames from ``blob``.

    Returns ``(frames, consumed, clean)``: the ``(kind, payload)``
    pairs of every *complete, CRC-verified* frame; the byte offset
    where the last good frame ends; and whether the blob ends exactly
    there (``clean=False`` means a torn or corrupt tail follows).
    Decoding stops at the first incomplete header, impossible length,
    unknown kind, short payload, or CRC mismatch — the torn-tail
    contract the recovery property test pins: truncate a frame stream
    at *any* byte offset and you get back exactly the frames before
    the cut.
    """
    frames: List[Tuple[int, bytes]] = []
    offset = 0
    size = len(blob)
    while size - offset >= _FRAME_HEADER.size:
        kind, length, crc = _FRAME_HEADER.unpack_from(blob, offset)
        if kind not in (FRAME_EVENT, FRAME_SEAL) or length > MAX_FRAME_BYTES:
            return frames, offset, False
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > size:
            return frames, offset, False
        payload = blob[start:end]
        if zlib.crc32(payload) != crc:
            return frames, offset, False
        frames.append((kind, payload))
        offset = end
    return frames, offset, offset == size


@dataclass
class WalRecovery:
    """What :func:`recover_wal` found on disk.

    ``events`` is the ordered ``(stream_index, payload)`` list of every
    recovered event frame; ``next_index`` is where the next append
    belongs; ``truncated_frames`` counts torn tails repaired (0 on a
    clean log); ``sealed`` reports a graceful-shutdown seal at the end
    of the log; ``segments`` lists the surviving on-disk segments as
    ``(sequence, start_index, end_index, path)`` so a resuming writer
    can later truncate the ones a checkpoint covers.
    """

    events: List[Tuple[int, bytes]]
    next_index: int
    truncated_frames: int
    sealed: bool
    segments: List[Tuple[int, int, int, str]]


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """The ``(sequence, path)`` pairs of the segments in ``directory``,
    ordered; non-segment files are ignored."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not (name.startswith("wal-") and name.endswith(".seg")):
            continue
        digits = name[len("wal-"):-len(".seg")]
        if not digits.isdigit():
            continue
        found.append((int(digits), os.path.join(directory, name)))
    found.sort()
    return found


def recover_wal(directory: str, repair: bool = True) -> WalRecovery:
    """Read every segment in ``directory`` back into ordered events.

    Tolerates exactly the damage a crash can cause — a torn tail on the
    newest segment, repaired by truncating the file at the last good
    frame (``repair=False`` leaves the bytes in place, for inspection).
    Anything else raises :class:`WalCorruptError`; see the module
    docstring for the full contract.
    """
    ordered = list_segments(directory)
    events: List[Tuple[int, bytes]] = []
    segments: List[Tuple[int, int, int, str]] = []
    truncated = 0
    sealed = False
    next_index = 0
    for position, (sequence, path) in enumerate(ordered):
        last = position == len(ordered) - 1
        with open(path, "rb") as handle:
            raw = handle.read()
        if len(raw) < _SEGMENT_HEADER.size:
            if not last:
                raise WalCorruptError(
                    f"WAL segment {path!r} has a truncated header but is "
                    "not the newest segment — the log is damaged mid-way"
                )
            # A crash during segment creation: nothing recoverable.
            truncated += 1
            if repair:
                os.unlink(path)
            continue
        magic, version, start = _SEGMENT_HEADER.unpack_from(raw, 0)
        if magic != WAL_MAGIC:
            raise WalCorruptError(
                f"{path!r} is not a repro WAL segment (bad magic)"
            )
        if version != WAL_VERSION:
            raise WalCorruptError(
                f"WAL segment {path!r} is version {version}, this build "
                f"writes version {WAL_VERSION}"
            )
        if segments and start != next_index:
            raise WalCorruptError(
                f"WAL segment {path!r} starts at stream index {start} but "
                f"the previous segment ends at {next_index} — a segment "
                "is missing or out of order"
            )
        frames, consumed, clean = decode_frames(raw[_SEGMENT_HEADER.size:])
        # A seal poisons only the rest of *its own* segment: a resumed
        # run legitimately appends fresh segments after a sealed one, so
        # the log as a whole counts as sealed only when the newest
        # segment ends in a seal.
        sealed = False
        index = start
        for kind, payload in frames:
            if sealed:
                raise WalCorruptError(
                    f"WAL segment {path!r} carries frames after its seal"
                )
            if kind == FRAME_SEAL:
                sealed = True
                continue
            events.append((index, payload))
            index += 1
        if not clean:
            if not last:
                raise WalCorruptError(
                    f"WAL segment {path!r} has a bad frame mid-log (only "
                    "the newest segment may carry a torn tail)"
                )
            truncated += 1
            sealed = False
            if repair:
                with open(path, "r+b") as handle:
                    handle.truncate(_SEGMENT_HEADER.size + consumed)
        next_index = index
        segments.append((sequence, start, index, path))
    return WalRecovery(
        events=events,
        next_index=next_index,
        truncated_frames=truncated,
        sealed=sealed,
        segments=segments,
    )


@dataclass(frozen=True)
class AppendReceipt:
    """What one :meth:`WalWriter.append` did: whether the batched fsync
    fired, and whether the segment rotated afterwards."""

    synced: bool = False
    rotated: bool = False


class WalWriter:
    """Appends framed events to a segmented log, durably and in order.

    One writer owns one directory for the life of a daemon run.  A
    fresh run starts at stream index 0; a resumed run is constructed
    from a :class:`WalRecovery` (:meth:`resume`) and always starts a
    new segment — appending into a possibly-torn tail would make the
    next crash ambiguous.
    """

    def __init__(
        self,
        directory: str,
        sync_every: int = 64,
        segment_bytes: int = 4 << 20,
        injector: Optional[FaultInjector] = None,
        start_index: int = 0,
        next_sequence: int = 0,
        inherited: Sequence[Tuple[int, int, int, str]] = (),
    ) -> None:
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1: {sync_every!r}")
        if segment_bytes < _SEGMENT_HEADER.size + _FRAME_HEADER.size:
            raise ValueError(f"segment_bytes too small: {segment_bytes!r}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.sync_every = sync_every
        self.segment_bytes = segment_bytes
        self.injector = injector
        self.next_index = start_index
        self._next_sequence = next_sequence
        #: Closed (or inherited pre-resume) segments as
        #: ``(sequence, start, end, path)`` — the truncation candidates.
        self._closed: List[Tuple[int, int, int, str]] = list(inherited)
        self._handle: Optional["_SegmentHandle"] = None
        self._since_sync = 0
        self._sealed = False

    @classmethod
    def resume(
        cls,
        directory: str,
        recovery: WalRecovery,
        sync_every: int = 64,
        segment_bytes: int = 4 << 20,
        injector: Optional[FaultInjector] = None,
    ) -> "WalWriter":
        """A writer continuing a recovered log in a fresh segment."""
        next_sequence = (
            recovery.segments[-1][0] + 1 if recovery.segments else 0
        )
        return cls(
            directory,
            sync_every=sync_every,
            segment_bytes=segment_bytes,
            injector=injector,
            start_index=recovery.next_index,
            next_sequence=next_sequence,
            inherited=recovery.segments,
        )

    # -- appending -------------------------------------------------------

    def append(self, payload: bytes) -> AppendReceipt:
        """Durably frame one event; returns what housekeeping fired.

        The caller's contract: append *before* applying the event to
        any in-memory state, so a crash at any instant leaves the log a
        superset of the state.  Raises :class:`WalSealedError` after
        :meth:`seal`, and lets ``OSError`` (``ENOSPC`` among them)
        propagate for the daemon's disk-pressure handling.
        """
        if self._sealed:
            raise WalSealedError(
                "write-ahead log is sealed — no appends after a graceful "
                "shutdown"
            )
        if self.injector is not None:
            if self.injector.fire(SITE_SERVE_WAL_ENOSPC) is not None:
                raise OSError(_ENOSPC, "injected: no space left on device")
        frame = encode_frame(payload)
        handle = self._ensure_segment()
        if self.injector is not None:
            if self.injector.fire(SITE_SERVE_WAL_TORN) is not None:
                # A torn write: half the frame reaches the platter, then
                # the process dies.  Recovery must truncate it away.
                handle.write(frame[: max(1, len(frame) // 2)])
                handle.sync()
                raise InjectedFault(
                    SITE_SERVE_WAL_TORN, "injected torn WAL append"
                )
        handle.write(frame)
        self.next_index += 1
        self._since_sync += 1
        synced = False
        if self._since_sync >= self.sync_every:
            handle.sync()
            self._since_sync = 0
            synced = True
        rotated = False
        if handle.size >= self.segment_bytes:
            self._rotate()
            rotated = True
        return AppendReceipt(synced=synced, rotated=rotated)

    def flush(self) -> None:
        """Force the batched fsync now (drain path)."""
        if self._handle is not None and self._since_sync:
            self._handle.sync()
            self._since_sync = 0

    def seal(self) -> None:
        """Mark a graceful shutdown: seal frame, fsync, close.

        A log that ends in a seal recovers with ``sealed=True``; a
        writer, once sealed, refuses further appends.
        """
        if self._sealed:
            raise WalSealedError("write-ahead log is already sealed")
        handle = self._ensure_segment()
        handle.write(encode_frame(b"", kind=FRAME_SEAL))
        handle.sync()
        self._close_segment()
        self._sealed = True

    def close(self) -> None:
        """Sync and close *without* sealing (abort path: the log reads
        back as a crash, which is what an abort is)."""
        if self._handle is not None:
            self._handle.sync()
            self._close_segment()

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- segment lifecycle -----------------------------------------------

    def _ensure_segment(self) -> "_SegmentHandle":
        if self._handle is None:
            sequence = self._next_sequence
            self._next_sequence += 1
            path = os.path.join(self.directory, _segment_name(sequence))
            self._handle = _SegmentHandle(path, sequence, self.next_index)
        return self._handle

    def _rotate(self) -> None:
        handle = self._handle
        if handle is None:
            return
        handle.sync()
        self._since_sync = 0
        self._close_segment()

    def _close_segment(self) -> None:
        handle = self._handle
        if handle is None:
            return
        handle.close()
        self._closed.append(
            (handle.sequence, handle.start_index, self.next_index, handle.path)
        )
        self._handle = None

    # -- checkpoint-driven truncation ------------------------------------

    def truncate_covered(self, upto_index: int) -> int:
        """Delete closed segments a checkpoint has made redundant.

        A segment whose every frame precedes stream index
        ``upto_index`` can never be needed again — recovery starts from
        the checkpoint.  The open segment is never deleted.  Returns
        the number of segments removed.
        """
        survivors: List[Tuple[int, int, int, str]] = []
        removed = 0
        for sequence, start, end, path in self._closed:
            if end <= upto_index:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
                removed += 1
            else:
                survivors.append((sequence, start, end, path))
        self._closed = survivors
        return removed


class _SegmentHandle:
    """One open segment file: header written on creation, size tracked
    so rotation needs no ``stat`` calls."""

    def __init__(self, path: str, sequence: int, start_index: int) -> None:
        self.path = path
        self.sequence = sequence
        self.start_index = start_index
        self._file = open(path, "wb")
        try:
            header = _SEGMENT_HEADER.pack(WAL_MAGIC, WAL_VERSION, start_index)
            self._file.write(header)
            self.size = len(header)
        except BaseException:
            # A failed header write (ENOSPC, signal) must not leak the
            # descriptor: nobody holds a reference to a half-constructed
            # handle, so nothing else can ever close it.
            self._file.close()
            raise

    def write(self, blob: bytes) -> None:
        self._file.write(blob)
        self.size += len(blob)

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
