"""Simulated Internet substrate.

The paper measures its clustering against the live 1999 Internet via
BGP dumps, nslookup, and traceroute.  This package provides the
synthetic stand-in: a generated ground-truth topology (ASes, registry
allocations, administrative entities, leaf networks) plus deterministic
reverse-DNS and traceroute oracles over it.  See DESIGN.md's
substitution table for why each stand-in preserves the behaviour the
algorithms depend on.
"""

from repro.simnet.dns import SimulatedDns, name_components, nontrivial_suffix
from repro.simnet.geo import GeoModel, Location, haversine_km
from repro.simnet.entities import (
    AdminEntity,
    Allocation,
    AsKind,
    AutonomousSystem,
    EntityKind,
    LeafNetwork,
)
from repro.simnet.stats import TopologySummary, summarize_topology
from repro.simnet.topology import Topology, TopologyConfig, generate_topology
from repro.simnet.traceroute import (
    ProbeAccounting,
    SimulatedTraceroute,
    TracerouteResult,
)

__all__ = [
    "GeoModel",
    "Location",
    "haversine_km",
    "AdminEntity",
    "Allocation",
    "AsKind",
    "AutonomousSystem",
    "EntityKind",
    "LeafNetwork",
    "TopologySummary",
    "summarize_topology",
    "Topology",
    "TopologyConfig",
    "generate_topology",
    "SimulatedDns",
    "name_components",
    "nontrivial_suffix",
    "SimulatedTraceroute",
    "TracerouteResult",
    "ProbeAccounting",
]
