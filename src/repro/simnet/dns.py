"""Simulated reverse DNS (the paper's ``nslookup``).

The nslookup-based validation (§3.3) resolves each sampled client to a
fully-qualified domain name and suffix-matches names within a cluster.
This module answers reverse lookups against the ground-truth topology:

* hosts inherit their administrative entity's domain suffix;
* ISP-pool hosts get dialup-style names (``client-12-65-147-94.isp.net``,
  matching the paper's bellatlantic.net example);
* roughly half of all clients do not resolve — the entity hides its
  reverse zone (firewall, DHCP pool, unregistered customers), matching
  the paper's ~50 % resolvability finding.

Lookups are deterministic in (topology seed, address) so repeated
experiments see a stable name space.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.ipv4 import MAX_ADDRESS, format_ipv4
from repro.simnet.entities import EntityKind
from repro.simnet.topology import Topology
from repro.util.rng import derive_seed

__all__ = ["SimulatedDns", "name_components", "shared_suffix_length"]

_HOST_WORDS = (
    "macbeth", "hamlet", "ariel", "puck", "oberon", "titania", "portia",
    "brutus", "cassius", "ophelia", "duncan", "banquo", "lear", "regan",
    "mailsrv", "web", "ns", "firewall", "gw", "proxy", "dev", "build",
)


class SimulatedDns:
    """Reverse-DNS oracle over a ground-truth :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        per_host_failure: float = 0.05,
        pool_host_failure: float = 0.35,
    ) -> None:
        """``per_host_failure`` adds host-level resolution failures on
        top of entity-level hidden zones (stale PTR records etc.);
        ``pool_host_failure`` is the higher rate inside ISP dialup/DHCP
        pools, whose dynamic addresses often have no registration — one
        of the paper's stated causes of its ~50 % unresolvability."""
        self._topology = topology
        self._per_host_failure = per_host_failure
        self._pool_host_failure = pool_host_failure
        self._seed = derive_seed(topology.config.seed, "dns")
        self.lookups_performed = 0

    def resolve(self, address: int) -> Optional[str]:
        """Return the FQDN for ``address``, or None when unresolvable."""
        if not 0 <= address <= MAX_ADDRESS:
            raise ValueError(f"address out of range: {address!r}")
        self.lookups_performed += 1
        leaf = self._topology.leaf_for_address(address)
        if leaf is None:
            return None
        entity = self._topology.entities[leaf.entity_id]
        if not entity.resolvable:
            return None
        if self._host_noise(address) < self._failure_rate(entity.kind):
            return None
        return self._host_name(address, entity.kind, entity.domain)

    def is_resolvable(self, address: int) -> bool:
        """True when :meth:`resolve` would return a name (no counting)."""
        leaf = self._topology.leaf_for_address(address)
        if leaf is None:
            return False
        entity = self._topology.entities[leaf.entity_id]
        return entity.resolvable and (
            self._host_noise(address) >= self._failure_rate(entity.kind)
        )

    def _failure_rate(self, entity_kind: str) -> float:
        if entity_kind == EntityKind.ISP_POOL:
            return self._pool_host_failure
        return self._per_host_failure

    # -- internals --------------------------------------------------------

    def _host_noise(self, address: int) -> float:
        """Deterministic per-address uniform variate in [0, 1)."""
        mixed = derive_seed(self._seed, str(address))
        return (mixed & 0xFFFFFFFF) / float(1 << 32)

    def _host_name(self, address: int, entity_kind: str, domain: str) -> str:
        if entity_kind == EntityKind.ISP_POOL:
            return f"client-{format_ipv4(address).replace('.', '-')}.{domain}"
        mixed = derive_seed(self._seed, f"name:{address}")
        word = _HOST_WORDS[mixed % len(_HOST_WORDS)]
        return f"{word}{address & 0xFFFF}.{domain}"


def name_components(name: str) -> Tuple[str, ...]:
    """Split an FQDN into its dot-separated components."""
    return tuple(part for part in name.split(".") if part)


def shared_suffix_length(name: str) -> int:
    """Return ``n``, the suffix length the paper's rule compares.

    §3.3 footnote 7: with ``m`` components in the client name, use
    ``n = 3`` when ``m >= 4``, else ``n = 2``.
    """
    m = len(name_components(name))
    return 3 if m >= 4 else 2


def nontrivial_suffix(name: str) -> Tuple[str, ...]:
    """Return the non-trivial suffix of ``name`` under the paper's rule."""
    components = name_components(name)
    return components[-shared_suffix_length(name):]
