"""Ground-truth entities of the simulated Internet.

The paper validates clusters against two fuzzy real-world notions:
*topological closeness* and *common administrative control*.  Because we
cannot query the 1999 Internet, the reproduction builds a synthetic one
with explicit ground truth: autonomous systems own address allocations,
allocations are subdivided into leaf networks, and every leaf network
belongs to exactly one administrative entity.  Validation and accuracy
measurements read this ground truth the way the paper's nslookup /
traceroute probes read the real network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.net.prefix import Prefix

__all__ = [
    "AsKind",
    "EntityKind",
    "AdminEntity",
    "AutonomousSystem",
    "Allocation",
    "LeafNetwork",
]


class AsKind:
    """Categories of autonomous systems (drives announcement behaviour)."""

    BACKBONE = "backbone"          # tier-1 transit, many allocations
    REGIONAL_ISP = "regional_isp"  # consumer/business ISP
    CAMPUS = "campus"              # university / research network
    ENTERPRISE = "enterprise"      # single large organisation
    LEGACY_B = "legacy_b"          # pre-CIDR class-B holder (one /16)
    NATIONAL_GATEWAY = "national_gateway"  # aggregates a country behind one AS

    ALL = (BACKBONE, REGIONAL_ISP, CAMPUS, ENTERPRISE, LEGACY_B, NATIONAL_GATEWAY)


class EntityKind:
    """Categories of administrative entities (drives DNS naming)."""

    ISP_POOL = "isp_pool"      # dialup/DHCP pool named under the ISP's domain
    BUSINESS = "business"      # small business behind an ISP sub-allocation
    UNIVERSITY = "university"  # department-style multi-label domains
    GOVERNMENT = "government"
    ENTERPRISE = "enterprise"

    ALL = (ISP_POOL, BUSINESS, UNIVERSITY, GOVERNMENT, ENTERPRISE)


@dataclass(frozen=True)
class AdminEntity:
    """One administrative control domain (a company, department, ISP pool).

    ``domain`` is the DNS suffix its hosts are named under;
    ``resolvable`` is False for entities whose reverse DNS is hidden
    (firewalls, unregistered ISP customers — the paper finds ~50 % of
    clients unresolvable, §3.3).  ``sites`` counts geographically
    distinct attachment points: multi-site entities share a domain but
    not a routing-path suffix, which is why traceroute validation is
    slightly stricter than nslookup validation in Table 3.
    """

    entity_id: int
    kind: str
    domain: str
    resolvable: bool
    sites: int = 1

    def __post_init__(self) -> None:
        if self.kind not in EntityKind.ALL:
            raise ValueError(f"unknown entity kind: {self.kind!r}")
        if self.sites < 1:
            raise ValueError(f"entity needs at least one site: {self.sites!r}")

    @property
    def domain_components(self) -> Tuple[str, ...]:
        """The dot-separated components of the entity's domain."""
        return tuple(self.domain.split("."))


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: a region of administrative routing control.

    ``country`` feeds the paper's US / non-US mis-identification split
    (Table 3): national-gateway ASes are always non-US and aggregate all
    their customers behind coarse announcements.
    """

    asn: int
    name: str
    kind: str
    country: str

    def __post_init__(self) -> None:
        if self.kind not in AsKind.ALL:
            raise ValueError(f"unknown AS kind: {self.kind!r}")
        if not 1 <= self.asn <= 65535:
            raise ValueError(f"ASN out of 16-bit range: {self.asn!r}")

    @property
    def is_gateway(self) -> bool:
        return self.kind == AsKind.NATIONAL_GATEWAY


@dataclass(frozen=True)
class Allocation:
    """A registry-level address block assigned to one AS.

    This is what ARIN/NLANR-style IP network dumps record; the AS may
    subdivide it into leaf networks without the registry's knowledge
    (§3.1.1).  ``distribution_router`` names the intra-AS router that
    fronts the block in traceroute paths.
    """

    prefix: Prefix
    asn: int
    distribution_router: str


@dataclass(frozen=True)
class LeafNetwork:
    """The finest-grained ground-truth network: one subnet, one entity.

    ``announced`` says whether the owning AS announces this exact prefix
    into BGP (multihomed / statically routed customers) or leaves it
    aggregated inside its allocation (dialup pools, small customers).
    ``edge_router`` is the last hop before hosts; hosts in the same
    leaf always share it.  ``site`` selects which of the owning
    entity's sites this subnet attaches to.
    """

    prefix: Prefix
    entity_id: int
    asn: int
    allocation_prefix: Prefix
    announced: bool
    edge_router: str
    site: int = 0

    @property
    def capacity(self) -> int:
        """Usable host addresses (excludes network/broadcast for ≤ /30)."""
        total = self.prefix.num_addresses
        return total - 2 if total > 2 else total


@dataclass
class TopologyStats:
    """Summary counts for a generated topology (reporting/tests)."""

    num_ases: int = 0
    num_allocations: int = 0
    num_leaf_networks: int = 0
    num_entities: int = 0
    prefix_length_histogram: dict = field(default_factory=dict)
