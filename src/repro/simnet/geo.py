"""Geography for the simulated Internet.

§3.1.1 notes that AS number and path information "can also provide
hints on the geographical location of clients", and §4.1.4's preferred
proxy-placement approach groups proxies "according to their AS numbers
and geographical locations".  This module gives every AS a location:

* each country has an approximate centroid;
* each AS gets a deterministic jittered position inside its country;
* great-circle distance and a simple distance-plus-hops latency model
  connect the pieces, so placement quality can be scored in
  milliseconds of client-perceived latency (the paper's §1 motivation
  for moving content closer to clients).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.simnet.topology import Topology
from repro.util.rng import derive_seed

__all__ = ["GeoModel", "Location", "haversine_km"]

#: Rough country centroids (latitude, longitude) for the countries the
#: topology generator uses.
_COUNTRY_CENTROIDS: Dict[str, Tuple[float, float]] = {
    "US": (39.8, -98.6),
    "CA": (56.1, -106.3),
    "UK": (54.0, -2.0),
    "DE": (51.2, 10.4),
    "FR": (46.2, 2.2),
    "JP": (36.2, 138.3),
    "KR": (36.5, 127.8),
    "BR": (-14.2, -51.9),
    "AU": (-25.3, 133.8),
    "ZA": (-30.6, 22.9),
    "HR": (45.1, 15.2),
    "SG": (1.35, 103.8),
    "NL": (52.1, 5.3),
}

_EARTH_RADIUS_KM = 6371.0

#: Latency model: base stack latency plus per-km propagation (speed of
#: light in fibre, with routing stretch) plus per-hop queueing.
_BASE_MS = 4.0
_MS_PER_KM = 0.015
_MS_PER_HOP = 1.5


@dataclass(frozen=True)
class Location:
    """A point on the globe."""

    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude!r}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude!r}")


def haversine_km(a: Location, b: Location) -> float:
    """Great-circle distance between two locations, in kilometres."""
    lat_a, lon_a = math.radians(a.latitude), math.radians(a.longitude)
    lat_b, lon_b = math.radians(b.latitude), math.radians(b.longitude)
    d_lat = lat_b - lat_a
    d_lon = lon_b - lon_a
    h = (
        math.sin(d_lat / 2.0) ** 2
        + math.cos(lat_a) * math.cos(lat_b) * math.sin(d_lon / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


class GeoModel:
    """Deterministic AS locations + a distance/hop latency model."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._seed = derive_seed(topology.config.seed, "geo")
        self._locations: Dict[int, Location] = {}
        for asn, autonomous_system in topology.ases.items():
            centroid = _COUNTRY_CENTROIDS.get(
                autonomous_system.country, _COUNTRY_CENTROIDS["US"]
            )
            jitter_lat = self._noise(f"lat:{asn}") * 8.0 - 4.0
            jitter_lon = self._noise(f"lon:{asn}") * 16.0 - 8.0
            self._locations[asn] = Location(
                max(-89.0, min(89.0, centroid[0] + jitter_lat)),
                max(-179.0, min(179.0, centroid[1] + jitter_lon)),
            )

    def _noise(self, label: str) -> float:
        return (derive_seed(self._seed, label) & 0xFFFFFFFF) / float(1 << 32)

    # -- locations -----------------------------------------------------------

    def location_of_as(self, asn: int) -> Location:
        """Headquarters location of an AS (KeyError for unknown ASNs)."""
        return self._locations[asn]

    def location_of_allocation(self, asn: int, allocation_cidr: str) -> Location:
        """Location of one allocation's service region.

        Large ASes span regions: each registry allocation gets its own
        deterministic position near (but not at) the AS headquarters,
        so geographic grouping can split a continental ISP into
        regional proxy sites.
        """
        base = self._locations[asn]
        jitter_lat = self._noise(f"alat:{asn}:{allocation_cidr}") * 14.0 - 7.0
        jitter_lon = self._noise(f"alon:{asn}:{allocation_cidr}") * 28.0 - 14.0
        return Location(
            max(-89.0, min(89.0, base.latitude + jitter_lat)),
            max(-179.0, min(179.0, base.longitude + jitter_lon)),
        )

    def location_of_address(self, address: int) -> Optional[Location]:
        """Location of ``address``'s network region (None if
        unallocated): the allocation-level position when known, the
        AS headquarters otherwise."""
        autonomous_system = self._topology.as_for_address(address)
        if autonomous_system is None:
            return None
        allocation = self._topology.allocation_for_address(address)
        if allocation is not None:
            return self.location_of_allocation(
                autonomous_system.asn, allocation.prefix.cidr
            )
        return self._locations[autonomous_system.asn]

    # -- latency ---------------------------------------------------------------

    def distance_km(self, asn_a: int, asn_b: int) -> float:
        """Great-circle distance between two ASes."""
        return haversine_km(self._locations[asn_a], self._locations[asn_b])

    def latency_ms(self, asn_a: int, asn_b: int, hops: int = 6) -> float:
        """Modelled one-way latency between two ASes.

        Within one AS (``asn_a == asn_b``) only the base and hop terms
        apply; across ASes the propagation term dominates for
        intercontinental pairs — which is exactly why placing proxies
        near clients pays (§1).
        """
        if hops < 0:
            raise ValueError(f"hop count must be non-negative: {hops!r}")
        distance = (
            0.0 if asn_a == asn_b else self.distance_km(asn_a, asn_b)
        )
        return _BASE_MS + distance * _MS_PER_KM + hops * _MS_PER_HOP

    def latency_between(
        self, a: Location, b: Location, hops: int = 6
    ) -> float:
        """Modelled one-way latency between two raw locations."""
        if hops < 0:
            raise ValueError(f"hop count must be non-negative: {hops!r}")
        return _BASE_MS + haversine_km(a, b) * _MS_PER_KM + hops * _MS_PER_HOP

    def client_latency_ms(
        self, client: int, target_asn: int, hops: int = 6
    ) -> Optional[float]:
        """Latency from ``client``'s network to an AS (None when the
        client is unallocated)."""
        autonomous_system = self._topology.as_for_address(client)
        if autonomous_system is None:
            return None
        return self.latency_ms(autonomous_system.asn, target_asn, hops)
