"""Topology statistics: what kind of world did we generate?

The calibration experiment and the tests need summary views of the
ground truth — AS/entity/leaf composition, length histograms, entity
size distribution.  Collected here so every consumer reads the same
numbers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.simnet.topology import Topology

__all__ = ["TopologySummary", "summarize_topology"]


@dataclass(frozen=True)
class TopologySummary:
    """Composition counts of one generated topology."""

    num_ases: int
    num_allocations: int
    num_leaf_networks: int
    num_entities: int
    ases_by_kind: Dict[str, int]
    entities_by_kind: Dict[str, int]
    leaf_length_histogram: Dict[int, int]
    allocation_length_histogram: Dict[int, int]
    leafs_per_entity_max: int
    announced_leaf_fraction: float
    non_us_as_fraction: float

    def describe(self) -> str:
        return (
            f"{self.num_ases} ASes, {self.num_allocations} allocations, "
            f"{self.num_leaf_networks:,} leaf networks over "
            f"{self.num_entities:,} entities; "
            f"{self.announced_leaf_fraction:.0%} of leafs announced, "
            f"{self.non_us_as_fraction:.0%} of ASes non-US"
        )


def summarize_topology(topology: Topology) -> TopologySummary:
    """Compute :class:`TopologySummary` for ``topology``."""
    ases_by_kind = Counter(a.kind for a in topology.ases.values())
    entities_by_kind = Counter(e.kind for e in topology.entities.values())
    leaf_lengths = Counter(l.prefix.length for l in topology.leaf_networks)
    allocation_lengths = Counter(a.prefix.length for a in topology.allocations)
    leafs_per_entity = Counter(l.entity_id for l in topology.leaf_networks)
    announced = sum(1 for l in topology.leaf_networks if l.announced)
    non_us = sum(1 for a in topology.ases.values() if a.country != "US")
    return TopologySummary(
        num_ases=len(topology.ases),
        num_allocations=len(topology.allocations),
        num_leaf_networks=len(topology.leaf_networks),
        num_entities=len(topology.entities),
        ases_by_kind=dict(ases_by_kind),
        entities_by_kind=dict(entities_by_kind),
        leaf_length_histogram=dict(leaf_lengths),
        allocation_length_histogram=dict(allocation_lengths),
        leafs_per_entity_max=max(leafs_per_entity.values(), default=0),
        announced_leaf_fraction=(
            announced / len(topology.leaf_networks)
            if topology.leaf_networks else 0.0
        ),
        non_us_as_fraction=non_us / len(topology.ases) if topology.ases else 0.0,
    )
