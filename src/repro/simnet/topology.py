"""Synthetic Internet topology with ground truth.

Generates the world the rest of the reproduction observes indirectly:

* autonomous systems of five kinds (backbone, regional ISP, campus,
  enterprise, national gateway) spread over countries;
* registry-level address *allocations* per AS, carved from a global
  address pool the way CIDR blocks were allocated circa 1999;
* *leaf networks* subdividing each allocation — the finest ground-truth
  subnet, each owned by exactly one administrative entity;
* per-leaf BGP announcement decisions (announced specific vs aggregated
  behind the allocation), which later shape what the synthetic routing
  snapshots can see.

The generated leaf/announcement structure is tuned so that the prefixes
visible in NAP-style BGP snapshots reproduce the paper's Figure 1
shape: roughly half are /24, with far more shorter-than-24 entries
than longer (route servers filter long customer specifics; those
survive only in the forwarding-table source, as in the paper's
merged table whose prefix lengths reach /29).

Everything is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.simnet.entities import (
    AdminEntity,
    Allocation,
    AsKind,
    AutonomousSystem,
    EntityKind,
    LeafNetwork,
)
from repro.util.rng import spawn

__all__ = ["TopologyConfig", "Topology", "generate_topology"]

# Countries used for AS placement.  The paper's Table 3 splits
# mis-identifications into US / non-US; national gateways (Croatia,
# France, Japan in the paper) are always non-US here.
_US = "US"
_NON_US = ("CA", "UK", "DE", "FR", "JP", "KR", "BR", "AU", "ZA", "HR", "SG", "NL")

_TLD_BY_COUNTRY = {
    "US": ("com", "net", "org", "edu", "gov"),
    "CA": ("ca",),
    "UK": ("co.uk", "ac.uk"),
    "DE": ("de",),
    "FR": ("fr",),
    "JP": ("co.jp", "ac.jp"),
    "KR": ("co.kr",),
    "BR": ("com.br",),
    "AU": ("com.au", "edu.au"),
    "ZA": ("co.za", "ac.za"),
    "HR": ("hr",),
    "SG": ("com.sg",),
    "NL": ("nl",),
}

_NAME_SYLLABLES = (
    "tel", "net", "link", "corp", "west", "east", "north", "sky", "star",
    "gate", "wave", "core", "metro", "inter", "uni", "tech", "data", "byte",
    "ridge", "park", "lake", "hill", "bell", "path", "port", "field",
)


def _coin(rng: random.Random, probability: float) -> bool:
    return rng.random() < probability


def _org_word(rng: random.Random) -> str:
    return rng.choice(_NAME_SYLLABLES) + rng.choice(_NAME_SYLLABLES)


@dataclass
class TopologyConfig:
    """Knobs for topology generation.

    The defaults generate a network sized for laptop-scale experiments:
    a few thousand leaf networks, which after log synthesis yields on
    the order of a thousand clusters (the paper's Nagano log has 9,853
    from 59,582 clients; we operate at roughly 1/10 scale).
    """

    seed: int = 2000
    num_backbone: int = 3
    num_regional_isps: int = 14
    num_campus: int = 12
    num_enterprise: int = 12
    num_gateways: int = 4
    num_legacy_b: int = 40
    #: Mean allocations per AS, by kind.
    allocations_per_kind: Dict[str, int] = field(
        default_factory=lambda: {
            AsKind.BACKBONE: 6,
            AsKind.REGIONAL_ISP: 4,
            AsKind.CAMPUS: 1,
            AsKind.ENTERPRISE: 1,
            AsKind.LEGACY_B: 1,
            AsKind.NATIONAL_GATEWAY: 3,
        }
    )
    #: Probability that a business leaf is announced as a BGP specific.
    business_announce_probability: float = 0.80
    #: Probability that an ISP-pool leaf is announced individually.
    pool_announce_probability: float = 0.35
    #: Fraction of admin entities whose reverse DNS is hidden (drives the
    #: paper's ~50 % nslookup resolvability).
    unresolvable_entity_fraction: float = 0.45
    #: Fraction of multi-site entities (same domain, different routing
    #: path) — makes traceroute validation slightly stricter than
    #: nslookup, as in Table 3.
    multi_site_entity_fraction: float = 0.06


class Topology:
    """A generated Internet: ASes, allocations, leaf networks, entities.

    Ground-truth queries (``leaf_for_address`` & co.) are what the
    simulated DNS/traceroute and the accuracy metrics consult.
    """

    def __init__(self, config: TopologyConfig) -> None:
        self.config = config
        self.ases: Dict[int, AutonomousSystem] = {}
        self.entities: Dict[int, AdminEntity] = {}
        self.allocations: List[Allocation] = []
        self.leaf_networks: List[LeafNetwork] = []
        self._leaf_tree: RadixTree[LeafNetwork] = RadixTree()
        self._allocation_tree: RadixTree[Allocation] = RadixTree()

    # -- construction helpers (used by the generator) --------------------

    def _add_leaf(self, leaf: LeafNetwork) -> None:
        self.leaf_networks.append(leaf)
        self._leaf_tree.insert(leaf.prefix, leaf)

    def _add_allocation(self, allocation: Allocation) -> None:
        self.allocations.append(allocation)
        self._allocation_tree.insert(allocation.prefix, allocation)

    # -- ground-truth queries --------------------------------------------

    def leaf_for_address(self, address: int) -> Optional[LeafNetwork]:
        """Return the leaf network containing ``address``, if allocated."""
        match = self._leaf_tree.longest_match(address)
        return match[1] if match else None

    def allocation_for_address(self, address: int) -> Optional[Allocation]:
        """Return the registry allocation containing ``address``."""
        match = self._allocation_tree.longest_match(address)
        return match[1] if match else None

    def entity_for_address(self, address: int) -> Optional[AdminEntity]:
        """Return the administrative entity owning ``address``."""
        leaf = self.leaf_for_address(address)
        return self.entities[leaf.entity_id] if leaf else None

    def as_for_address(self, address: int) -> Optional[AutonomousSystem]:
        """Return the AS originating ``address``."""
        leaf = self.leaf_for_address(address)
        return self.ases[leaf.asn] if leaf else None

    def announced_routes(self) -> Iterator[Tuple[Prefix, int]]:
        """Yield ground-truth BGP announcements as ``(prefix, origin asn)``.

        National-gateway ASes announce only their allocations; other
        ASes announce allocations plus any leaf marked ``announced``.
        """
        for allocation in self.allocations:
            yield allocation.prefix, allocation.asn
        for leaf in self.leaf_networks:
            if leaf.announced and not self.ases[leaf.asn].is_gateway:
                yield leaf.prefix, leaf.asn

    def registry_blocks(self) -> Iterator[Tuple[Prefix, int]]:
        """Yield registry (ARIN/NLANR-style) allocation records."""
        for allocation in self.allocations:
            yield allocation.prefix, allocation.asn

    def hosts_in_leaf(
        self, leaf: LeafNetwork, count: int, rng: random.Random
    ) -> List[int]:
        """Sample ``count`` distinct host addresses inside ``leaf``."""
        capacity = leaf.capacity
        count = min(count, capacity)
        # Offset 0 is the network address for blocks larger than /31.
        base = 1 if leaf.prefix.num_addresses > 2 else 0
        offsets = rng.sample(range(base, base + capacity), count)
        return [leaf.prefix.network + offset for offset in offsets]

    def unallocated_address(self, rng: random.Random) -> int:
        """Return an address covered by no allocation (bogus log client).

        Drawn from 127.0.0.0/8-adjacent reserved space the allocator
        never hands out, so the merged prefix table cannot match it.
        """
        return (127 << 24) | rng.randrange(1, 1 << 24)

    # -- summaries ---------------------------------------------------------

    def leaf_length_histogram(self) -> Dict[int, int]:
        """Histogram of leaf-network prefix lengths (ground truth)."""
        histogram: Dict[int, int] = {}
        for leaf in self.leaf_networks:
            histogram[leaf.prefix.length] = histogram.get(leaf.prefix.length, 0) + 1
        return histogram

    def describe(self) -> str:
        """One-line summary used by example scripts."""
        return (
            f"Topology(seed={self.config.seed}: {len(self.ases)} ASes, "
            f"{len(self.allocations)} allocations, "
            f"{len(self.leaf_networks)} leaf networks, "
            f"{len(self.entities)} entities)"
        )


class _AddressPool:
    """Sequential aligned allocator over the 1999-style unicast space.

    Hands out blocks from /8s in the CIDR swamp and legacy ranges,
    skipping reserved space (0/8, 10/8, 127/8, >= 224/8).
    """

    def __init__(self) -> None:
        usable = [o for o in range(4, 224) if o not in (10, 127, 172, 192)]
        self._octets = usable
        self._octet_index = 0
        self._cursor = self._octets[0] << 24

    def take(self, length: int) -> Prefix:
        """Return the next available aligned block of ``length``."""
        size = 1 << (32 - length)
        cursor = (self._cursor + size - 1) & ~(size - 1)  # align up
        # Keep each allocation within one /8 so first octets stay tidy.
        octet_base = self._octets[self._octet_index] << 24
        if cursor + size > octet_base + (1 << 24):
            self._octet_index += 1
            if self._octet_index >= len(self._octets):
                raise RuntimeError("synthetic address pool exhausted")
            cursor = self._octets[self._octet_index] << 24
        self._cursor = cursor + size
        return Prefix(cursor, length)


class _Generator:
    """Stateful builder: splits generation into labelled RNG streams."""

    def __init__(self, config: TopologyConfig) -> None:
        self.config = config
        self.topology = Topology(config)
        self.pool = _AddressPool()
        self._next_entity_id = 1
        self._next_asn = 1
        self._pool_entities: Dict[int, AdminEntity] = {}

    # AS-kind specific allocation length menus (length, weight).
    _ALLOC_LENGTHS = {
        AsKind.BACKBONE: ((14, 1), (15, 2), (16, 3)),
        AsKind.REGIONAL_ISP: ((16, 2), (17, 3), (18, 4), (19, 3)),
        AsKind.CAMPUS: ((16, 5), (17, 2), (18, 2)),
        AsKind.ENTERPRISE: ((16, 2), (17, 2), (18, 3), (19, 2), (20, 1)),
        AsKind.LEGACY_B: ((16, 1),),
        AsKind.NATIONAL_GATEWAY: ((15, 1), (16, 3), (17, 2)),
    }

    def build(self) -> Topology:
        rng = spawn(self.config.seed, "topology")
        plan = (
            [(AsKind.BACKBONE, _US)] * self.config.num_backbone
            + [(AsKind.REGIONAL_ISP, None)] * self.config.num_regional_isps
            + [(AsKind.CAMPUS, None)] * self.config.num_campus
            + [(AsKind.ENTERPRISE, None)] * self.config.num_enterprise
            + [(AsKind.LEGACY_B, None)] * self.config.num_legacy_b
            + [(AsKind.NATIONAL_GATEWAY, "gateway")] * self.config.num_gateways
        )
        for kind, country_hint in plan:
            self._build_as(rng, kind, country_hint)
        return self.topology

    # -- AS construction ---------------------------------------------------

    def _build_as(
        self, rng: random.Random, kind: str, country_hint: Optional[str]
    ) -> None:
        asn = self._next_asn
        self._next_asn += 1
        if country_hint == "gateway":
            country = rng.choice(_NON_US)
        elif country_hint is not None:
            country = country_hint
        else:
            country = _US if _coin(rng, 0.65) else rng.choice(_NON_US)
        name = _org_word(rng)
        autonomous_system = AutonomousSystem(asn, name, kind, country)
        self.topology.ases[asn] = autonomous_system

        mean = self.config.allocations_per_kind[kind]
        count = max(1, mean + rng.choice((-1, 0, 0, 1)))
        for index in range(count):
            self._build_allocation(rng, autonomous_system, index)

    def _build_allocation(
        self, rng: random.Random, autonomous_system: AutonomousSystem, index: int
    ) -> None:
        lengths = self._ALLOC_LENGTHS[autonomous_system.kind]
        length = _weighted(rng, lengths)
        prefix = self.pool.take(length)
        allocation = Allocation(
            prefix=prefix,
            asn=autonomous_system.asn,
            distribution_router=f"dist{index}.as{autonomous_system.asn}.net",
        )
        self.topology._add_allocation(allocation)
        self._carve_allocation(rng, autonomous_system, allocation)

    # -- subdivision --------------------------------------------------------

    def _carve_allocation(
        self,
        rng: random.Random,
        autonomous_system: AutonomousSystem,
        allocation: Allocation,
    ) -> None:
        kind = autonomous_system.kind
        if kind == AsKind.REGIONAL_ISP:
            self._carve_isp(rng, autonomous_system, allocation)
        elif kind == AsKind.NATIONAL_GATEWAY:
            self._carve_gateway(rng, autonomous_system, allocation)
        elif kind == AsKind.BACKBONE:
            self._carve_backbone(rng, autonomous_system, allocation)
        elif kind == AsKind.LEGACY_B:
            self._carve_single_entity(
                rng, autonomous_system, allocation, menu=(17, 18, 18, 19, 20)
            )
        else:  # campus, enterprise: one entity owns the whole block
            self._carve_single_entity(rng, autonomous_system, allocation)

    def _carve_isp(
        self,
        rng: random.Random,
        autonomous_system: AutonomousSystem,
        allocation: Allocation,
    ) -> None:
        """ISP space: mostly /23–/24 dialup pools under the ISP's own
        domain, plus "business blocks" (/24s subdivided into /26–/29
        customer subnets with distinct domains) — the structure that
        makes fixed-/24 clustering mis-group small customers (§2)."""
        # One pool entity per ISP: every dialup pool across all of the
        # AS's allocations shares the ISP's domain and administration.
        pool_entity = self._pool_entities.get(autonomous_system.asn)
        if pool_entity is None:
            pool_entity = self._new_entity(
                rng, EntityKind.ISP_POOL, autonomous_system
            )
            self._pool_entities[autonomous_system.asn] = pool_entity
        for chunk in self._random_chunks(
            rng, allocation.prefix, (22, 23, 24, 24, 24, 24, 24, 24)
        ):
            roll = rng.random()
            if roll < 0.70:
                self._emit_leaf(
                    rng, chunk, pool_entity, autonomous_system, allocation,
                    announce_probability=self.config.pool_announce_probability,
                )
            elif roll < 0.76 and chunk.length == 24:
                # Business block: one /24 shared by several small
                # distinct-customer subnets (the paper's §2
                # 151.198.194.x example) — the structure that breaks
                # fixed-/24 clustering.
                sub_length = rng.choice((26, 26, 26, 27, 28))
                for subnet in chunk.subnets(sub_length):
                    business = self._new_entity(
                        rng, EntityKind.BUSINESS, autonomous_system
                    )
                    self._emit_leaf(
                        rng, subnet, business, autonomous_system, allocation,
                        announce_probability=(
                            self.config.business_announce_probability
                        ),
                    )
            else:
                # Mid-size customer holding the whole chunk.
                business = self._new_entity(
                    rng, EntityKind.BUSINESS, autonomous_system
                )
                self._emit_leaf(
                    rng, chunk, business, autonomous_system, allocation,
                    announce_probability=self.config.business_announce_probability,
                )

    def _carve_gateway(
        self,
        rng: random.Random,
        autonomous_system: AutonomousSystem,
        allocation: Allocation,
    ) -> None:
        """National gateway: distinct in-country organisations, none of
        which are visible in BGP (only the gateway aggregate is) — the
        paper's main observed mis-identification source (§3.3)."""
        menu = (22, 22, 23, 23, 24, 24)
        for chunk in self._random_chunks(rng, allocation.prefix, menu):
            kind = rng.choice(
                (EntityKind.BUSINESS, EntityKind.UNIVERSITY, EntityKind.GOVERNMENT)
            )
            entity = self._new_entity(rng, kind, autonomous_system)
            self._emit_leaf(
                rng, chunk, entity, autonomous_system, allocation,
                announce_probability=0.0,
            )

    def _carve_backbone(
        self,
        rng: random.Random,
        autonomous_system: AutonomousSystem,
        allocation: Allocation,
    ) -> None:
        """Backbone space: large direct customers, usually announced."""
        menu = (20, 21, 21, 22, 22, 23, 23, 24, 24, 24, 24)
        for chunk in self._random_chunks(rng, allocation.prefix, menu):
            kind = rng.choice((EntityKind.ENTERPRISE, EntityKind.BUSINESS))
            entity = self._new_entity(rng, kind, autonomous_system)
            self._emit_leaf(
                rng, chunk, entity, autonomous_system, allocation,
                announce_probability=0.9,
            )

    def _carve_single_entity(
        self,
        rng: random.Random,
        autonomous_system: AutonomousSystem,
        allocation: Allocation,
        menu: tuple = (22, 23, 23, 24, 24, 24, 24, 25),
    ) -> None:
        """Campus/enterprise: one admin entity, internally subnetted.

        Subnets are invisible to BGP (only the allocation is announced),
        but because every subnet belongs to the same entity the
        allocation-granularity cluster is still correct."""
        kind = (
            EntityKind.UNIVERSITY
            if autonomous_system.kind == AsKind.CAMPUS
            else EntityKind.ENTERPRISE
        )
        entity = self._new_entity(rng, kind, autonomous_system)
        for chunk in self._random_chunks(rng, allocation.prefix, menu):
            self._emit_leaf(
                rng, chunk, entity, autonomous_system, allocation,
                announce_probability=0.35,
            )

    def _random_chunks(
        self, rng: random.Random, prefix: Prefix, length_menu: Sequence[int]
    ) -> Iterator[Prefix]:
        """Partition ``prefix`` into contiguous chunks with lengths drawn
        from ``length_menu`` (never shorter than the prefix itself)."""
        cursor = prefix.network
        end = prefix.last_address + 1
        while cursor < end:
            length = max(prefix.length, rng.choice(length_menu))
            size = 1 << (32 - length)
            # Respect alignment: shrink the block until it is aligned and fits.
            while cursor % size or cursor + size > end:
                length += 1
                size >>= 1
            yield Prefix(cursor, length)
            cursor += size

    # -- entity / leaf emission ---------------------------------------------

    def _new_entity(
        self,
        rng: random.Random,
        kind: str,
        autonomous_system: AutonomousSystem,
        forced_domain: Optional[str] = None,
    ) -> AdminEntity:
        entity_id = self._next_entity_id
        self._next_entity_id += 1
        domain = forced_domain or self._make_domain(rng, kind, autonomous_system)
        # ISP dialup pools always have generic PTR records
        # (client-a-b-c-d.isp.net); firewalled businesses and
        # enterprises hide reverse DNS far more often.  The mix lands
        # near the paper's ~50 % client resolvability with much less
        # variance than a uniform per-entity coin.
        if kind == EntityKind.ISP_POOL:
            resolvable = True
        elif kind in (EntityKind.BUSINESS, EntityKind.ENTERPRISE):
            resolvable = not _coin(
                rng, min(1.0, self.config.unresolvable_entity_fraction * 1.4)
            )
        else:
            resolvable = not _coin(
                rng, self.config.unresolvable_entity_fraction * 0.6
            )
        sites = 2 if _coin(rng, self.config.multi_site_entity_fraction) else 1
        entity = AdminEntity(entity_id, kind, domain, resolvable, sites)
        self.topology.entities[entity_id] = entity
        return entity

    def _make_domain(
        self, rng: random.Random, kind: str, autonomous_system: AutonomousSystem
    ) -> str:
        # The entity id is baked into the domain so no two entities can
        # collide on a name suffix: a spurious shared suffix would make
        # a genuinely mixed cluster pass nslookup validation.
        tlds = _TLD_BY_COUNTRY[autonomous_system.country]
        word = f"{_org_word(rng)}{self._next_entity_id}"
        if kind == EntityKind.ISP_POOL:
            return f"{autonomous_system.name}{autonomous_system.asn}.net"
        if kind == EntityKind.UNIVERSITY:
            tld = tlds[-1]  # the academic-flavoured TLD where present
            return f"{rng.choice(('cs', 'ee', 'math', 'phys'))}.{word}.{tld}"
        tld = rng.choice(tlds)
        return f"{word}.{tld}"

    def _emit_leaf(
        self,
        rng: random.Random,
        prefix: Prefix,
        entity: AdminEntity,
        autonomous_system: AutonomousSystem,
        allocation: Allocation,
        announce_probability: float,
    ) -> None:
        site = rng.randrange(entity.sites)
        leaf = LeafNetwork(
            prefix=prefix,
            entity_id=entity.entity_id,
            asn=autonomous_system.asn,
            allocation_prefix=allocation.prefix,
            announced=_coin(rng, announce_probability),
            edge_router=(
                f"gw{entity.entity_id}-{site}.as{autonomous_system.asn}.net"
            ),
            site=site,
        )
        self.topology._add_leaf(leaf)


def _weighted(rng: random.Random, menu: Sequence[Tuple[int, int]]) -> int:
    total = sum(weight for _, weight in menu)
    point = rng.random() * total
    acc = 0.0
    for value, weight in menu:
        acc += weight
        if point < acc:
            return value
    return menu[-1][0]


def generate_topology(config: Optional[TopologyConfig] = None) -> Topology:
    """Generate a ground-truth Internet from ``config`` (or defaults)."""
    return _Generator(config or TopologyConfig()).build()
