"""Simulated traceroute, including the paper's optimized variant.

The traceroute-based validation (§3.3) probes each sampled client and
suffix-matches either the resolved name or the last few hops of the
router path.  This module computes router-level paths over the
ground-truth topology and models the probe/latency cost of both the
classic traceroute and the paper's optimized one, so the claimed ~90 %
probe savings and ~80 % wait-time savings can be measured rather than
asserted.

Path model (per destination):

    probe origin -> backbone core(s) -> AS core -> allocation
    distribution router -> leaf edge router -> host

Two hosts share the same last-two-hop suffix exactly when they sit
behind the same (distribution, edge) pair — i.e. the same entity site
within the same allocation.  Multi-site entities therefore pass the
nslookup test but can fail the traceroute test, reproducing the
slightly higher traceroute mis-identification counts of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.simnet.dns import SimulatedDns
from repro.simnet.topology import Topology
from repro.util.rng import derive_seed

__all__ = ["TracerouteResult", "SimulatedTraceroute", "ProbeAccounting"]

#: Default Max_ttl used by the optimized traceroute (§3.3).
MAX_TTL = 30

#: Classic traceroute sends q probes per ttl regardless of replies.
CLASSIC_PROBES_PER_TTL = 3

#: Modelled wait for a probe that gets a reply (one RTT-ish unit) and
#: for one that times out (traceroute's per-probe timeout).  Only the
#: *ratios* between classic and optimized costs matter for validation;
#: the reply/timeout split is what makes the wait saving differ from
#: the probe saving, as in the paper's ~90 % probes / ~80 % time.
PROBE_WAIT_MS = 350.0
TIMEOUT_WAIT_MS = 3000.0


@dataclass(frozen=True)
class TracerouteResult:
    """Outcome of probing one destination.

    ``name`` is the destination's FQDN when it could be resolved (the
    optimized traceroute resolves ~50 % of hosts with a single
    Max_ttl-probe); ``path`` is the router-hop list discovered
    otherwise (always available).  ``probes_sent`` / ``wait_ms`` carry
    the cost accounting for this run.
    """

    address: int
    name: Optional[str]
    path: Tuple[str, ...]
    hops: int
    probes_sent: int
    wait_ms: float
    rtt_ms: Optional[float]

    def last_hops(self, n: int = 2) -> Tuple[str, ...]:
        """The last ``n`` routers before the destination."""
        return self.path[-n:] if self.path else ()

    @property
    def resolved(self) -> bool:
        """True when either a name or a non-empty path was obtained."""
        return self.name is not None or bool(self.path)


@dataclass
class ProbeAccounting:
    """Aggregate probe/wait cost over a batch of traceroutes."""

    destinations: int = 0
    probes: int = 0
    wait_ms: float = 0.0

    def add(self, result: TracerouteResult) -> None:
        self.destinations += 1
        self.probes += result.probes_sent
        self.wait_ms += result.wait_ms

    def savings_vs(self, other: "ProbeAccounting") -> Tuple[float, float]:
        """Return (probe saving, wait saving) of self relative to other."""
        probe_saving = 1.0 - (self.probes / other.probes) if other.probes else 0.0
        wait_saving = 1.0 - (self.wait_ms / other.wait_ms) if other.wait_ms else 0.0
        return probe_saving, wait_saving


class SimulatedTraceroute:
    """Traceroute oracle over a ground-truth :class:`Topology`.

    A destination answers the final probe directly (returning its name
    and RTT) exactly when its reverse DNS is visible — the paper
    observes the two ~50 % rates coincide because both are blocked by
    the same firewalls.
    """

    def __init__(self, topology: Topology, dns: Optional[SimulatedDns] = None) -> None:
        self._topology = topology
        self._dns = dns or SimulatedDns(topology)
        self._seed = derive_seed(topology.config.seed, "traceroute")

    # -- path construction -------------------------------------------------

    def path_to(self, address: int) -> Tuple[str, ...]:
        """Return the router path toward ``address`` (excludes the host).

        Unallocated destinations get a short path that dies in the
        backbone (no edge information), so they can never satisfy a
        path-suffix match.
        """
        leaf = self._topology.leaf_for_address(address)
        backbone = ("br1.probe-origin.net", "br2.probe-origin.net")
        if leaf is None:
            return backbone
        allocation = self._topology.allocation_for_address(address)
        dist_router = (
            allocation.distribution_router
            if allocation is not None
            else f"dist?.as{leaf.asn}.net"
        )
        return backbone + (
            f"core.as{leaf.asn}.net",
            dist_router,
            leaf.edge_router,
        )

    def hop_count(self, address: int) -> int:
        """Number of router hops to ``address`` (host excluded)."""
        return len(self.path_to(address))

    # -- probing -------------------------------------------------------------

    def classic(self, address: int) -> TracerouteResult:
        """Classic traceroute: q probes per ttl, starting at ttl=1.

        Against a silent destination the classic tool keeps probing all
        the way to Max_ttl (q probes per ttl, each ending in a timeout)
        before giving up — the cost the optimized variant eliminates.
        """
        path = self.path_to(address)
        reachable = self._dns.is_resolvable(address)
        hops = len(path) + 1  # + the destination itself
        probed_ttls = hops if reachable else MAX_TTL
        probes = probed_ttls * CLASSIC_PROBES_PER_TTL
        # Probes within the discovered path elicit TIME_EXCEEDED replies;
        # probes past a silent destination all time out.
        replying = (hops if reachable else len(path)) * CLASSIC_PROBES_PER_TTL
        timeouts = probes - replying
        name = self._dns.resolve(address) if reachable else None
        return TracerouteResult(
            address=address,
            name=name,
            path=path,
            hops=hops,
            probes_sent=probes,
            wait_ms=replying * PROBE_WAIT_MS + timeouts * TIMEOUT_WAIT_MS,
            rtt_ms=self._rtt(address) if reachable else None,
        )

    def optimized(self, address: int) -> TracerouteResult:
        """The paper's optimized traceroute.

        First sends a single probe with ttl = Max_ttl.  If the
        destination answers (ICMP PORT_UNREACHABLE) we have its address,
        name, and RTT from one probe.  Otherwise it walks hop by hop
        with one probe per ttl (re-probing only on bad replies) until
        the path stops yielding information.
        """
        path = self.path_to(address)
        reachable = self._dns.is_resolvable(address)
        if reachable:
            name = self._dns.resolve(address)
            return TracerouteResult(
                address=address,
                name=name,
                path=path,
                hops=len(path) + 1,
                probes_sent=1,
                wait_ms=PROBE_WAIT_MS,
                rtt_ms=self._rtt(address),
            )
        # Destination silent: 1 probe at Max_ttl (times out), then one
        # probe per hop walking the path (each answered by a router),
        # with an occasional retry that also times out.
        retries = 1 if self._noise(address) < 0.2 else 0
        probes = 1 + len(path) + retries
        wait = (1 + retries) * TIMEOUT_WAIT_MS + len(path) * PROBE_WAIT_MS
        return TracerouteResult(
            address=address,
            name=None,
            path=path,
            hops=len(path),
            probes_sent=probes,
            wait_ms=wait,
            rtt_ms=None,
        )

    def probe_batch(
        self, addresses: Sequence[int], optimized: bool = True
    ) -> Tuple[List[TracerouteResult], ProbeAccounting]:
        """Probe every address; return results plus cost accounting."""
        accounting = ProbeAccounting()
        results: List[TracerouteResult] = []
        probe = self.optimized if optimized else self.classic
        for address in addresses:
            result = probe(address)
            results.append(result)
            accounting.add(result)
        return results, accounting

    # -- internals -------------------------------------------------------------

    def _noise(self, address: int) -> float:
        mixed = derive_seed(self._seed, f"retry:{address}")
        return (mixed & 0xFFFFFFFF) / float(1 << 32)

    def _rtt(self, address: int) -> float:
        """Deterministic pseudo-RTT: base per hop plus jitter."""
        mixed = derive_seed(self._seed, f"rtt:{address}")
        jitter = (mixed & 0xFFFF) / float(1 << 16)
        return 10.0 * self.hop_count(address) + 40.0 * jitter
