"""Shared utilities: deterministic RNG streams, Zipf sampling, and
plain-text rendering of experiment tables and figures."""

from repro.util.rng import derive_seed, make_rng, spawn
from repro.util.tables import format_count, format_ratio, render_table
from repro.util.zipf import ZipfSampler, zipf_weights

__all__ = [
    "derive_seed",
    "make_rng",
    "spawn",
    "render_table",
    "format_count",
    "format_ratio",
    "ZipfSampler",
    "zipf_weights",
]
