"""ASCII rendering of figure series.

Each paper figure is regenerated as numeric series; these helpers give a
quick visual check in the terminal (log-log scatter profiles, CDFs,
histograms) without a plotting library.  The numeric series themselves
are the deliverable; the ASCII art is a convenience.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_series", "ascii_histogram", "ascii_cdf"]


def ascii_series(
    values: Sequence[float],
    width: int = 72,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Plot ``values`` against their 1-based index as a scatter profile."""
    points = [(i + 1.0, v) for i, v in enumerate(values) if v is not None]
    return _scatter(points, width, height, log_x, log_y, title)


def ascii_cdf(
    values: Sequence[float],
    width: int = 72,
    height: int = 16,
    log_x: bool = True,
    title: Optional[str] = None,
) -> str:
    """Plot the empirical CDF of ``values``."""
    if not values:
        return title or "(empty)"
    ordered = sorted(values)
    n = len(ordered)
    points = [(value, (index + 1) / n) for index, value in enumerate(ordered)]
    return _scatter(points, width, height, log_x, False, title)


def ascii_histogram(
    labels: Sequence[str],
    counts: Sequence[int],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Render a horizontal bar chart of ``counts`` labelled by ``labels``."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must have equal length")
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(counts) if counts else 0
    label_width = max((len(label) for label in labels), default=0)
    for label, count in zip(labels, counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"{label.rjust(label_width)} | {bar} {count}")
    return "\n".join(lines)


def _scatter(
    points: Sequence[Tuple[float, float]],
    width: int,
    height: int,
    log_x: bool,
    log_y: bool,
    title: Optional[str],
) -> str:
    if not points:
        return title or "(empty)"

    def tx(x: float) -> float:
        return math.log10(x) if log_x else x

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    usable = [
        (tx(x), ty(y))
        for x, y in points
        if (not log_x or x > 0) and (not log_y or y > 0)
    ]
    if not usable:
        return title or "(empty)"
    xs = [p[0] for p in usable]
    ys = [p[1] for p in usable]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in usable:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"y: {y_lo:.3g} .. {y_hi:.3g}" + ("  (log10)" if log_y else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_lo:.3g} .. {x_hi:.3g}" + ("  (log10)" if log_x else ""))
    return "\n".join(lines)
