"""Deterministic random-number plumbing.

Every synthetic component (topology, snapshots, logs, churn) takes an
explicit seed so that experiments are reproducible run-to-run.  This
module centralises seed derivation: a parent seed fans out into
independent child streams by hashing a label, so adding a new consumer
never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

__all__ = ["derive_seed", "make_rng", "spawn"]


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stream ``label``.

    Stable across runs and Python versions (uses SHA-256, not ``hash``).
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int) -> random.Random:
    """Return a fresh :class:`random.Random` seeded with ``seed``.

    Under ``REPRO_SANITIZE=1`` the returned RNG counts its draws into
    the sanitize statistics (sequence-identical to an uninstrumented
    ``random.Random(seed)``), so two runs that should be byte-identical
    can be audited for hidden extra randomness.  The import is lazy:
    RNG construction is rare (once per stream), and the common disabled
    path must not tax ``import repro.util.rng``.
    """
    from repro.analysis import sanitize

    if sanitize.is_enabled():
        return sanitize.counting_rng(seed)
    return random.Random(seed)


def spawn(parent_seed: int, label: str) -> random.Random:
    """Shorthand for ``make_rng(derive_seed(parent_seed, label))``."""
    return make_rng(derive_seed(parent_seed, label))


def maybe_seed(seed: Optional[int], default: int = 0) -> int:
    """Normalise an optional seed argument to a concrete integer."""
    return default if seed is None else seed
