"""Plain-text table rendering for experiment output.

The experiment harness prints each reproduced paper table/figure as an
aligned ASCII table so results can be diffed against the paper's rows
without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_count", "format_ratio"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Cells are stringified with ``str``; numeric-looking cells are
    right-aligned, everything else left-aligned.
    """
    str_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    numeric = [True] * len(headers)
    for row in str_rows:
        for index, cell in enumerate(row):
            if not _looks_numeric(cell):
                numeric[index] = False

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _looks_numeric(cell: str) -> bool:
    if not cell:
        return True
    stripped = cell.replace(",", "").replace("%", "").replace("-", "", 1)
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def format_count(value: int) -> str:
    """Render an integer with thousands separators, paper-table style."""
    return f"{value:,}"


def format_ratio(value: float, places: int = 2) -> str:
    """Render a 0-1 ratio as a percentage string."""
    return f"{100.0 * value:.{places}f}%"
