"""Zipf-like discrete distributions.

The paper leans on the observation (§3.2.2, citing Breslau et al.) that
web-request popularity is Zipf-like: both URL popularity and per-cluster
request counts are heavy-tailed.  The workload generator samples from
the distributions built here.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence

__all__ = ["ZipfSampler", "zipf_weights"]


def zipf_weights(n: int, alpha: float = 1.0) -> List[float]:
    """Return unnormalised Zipf weights ``1/rank**alpha`` for n ranks."""
    if n <= 0:
        raise ValueError(f"need at least one rank, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    return [1.0 / (rank ** alpha) for rank in range(1, n + 1)]


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to 1/(r+1)^alpha.

    Uses a precomputed cumulative table and binary search: O(log n) per
    sample, O(n) memory, no numpy dependency.
    """

    def __init__(self, n: int, alpha: float = 1.0) -> None:
        weights = zipf_weights(n, alpha)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        self.n = n
        self.alpha = alpha

    def sample(self, rng: random.Random) -> int:
        """Draw one rank (0 is the most popular)."""
        point = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        """Draw ``count`` independent ranks."""
        return [self.sample(rng) for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank out of range: {rank}")
        low = self._cumulative[rank - 1] if rank else 0.0
        return (self._cumulative[rank] - low) / self._total


def weighted_choice(rng: random.Random, weights: Sequence[float]) -> int:
    """Return an index drawn proportionally to ``weights``."""
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if point < acc:
            return index
    return len(weights) - 1
