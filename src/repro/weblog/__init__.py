"""Web server log substrate.

Common Log Format entries and streaming parsing, log containers with
the indexes the clustering pipeline needs, per-log summary statistics,
a deterministic URL catalog (sizes + modification histories for the
caching simulation), the synthetic workload generator, and per-paper-
log presets (Nagano, Apache, EW3, Sun, ISP trace).
"""

from repro.weblog.catalog import UrlCatalog
from repro.weblog.entry import LogEntry, LogFormatError, format_clf_time, parse_clf_time
from repro.weblog.parser import ParseReport, WebLog, load_clf, parse_clf_lines
from repro.weblog.presets import PRESET_NAMES, make_log, make_spec
from repro.weblog.stats import LogStats, requests_by_client, requests_per_hour, summarize
from repro.weblog.anonymize import PrefixPreservingAnonymizer
from repro.weblog.writer import load_log, save_log
from repro.weblog.synth import (
    ProxySpec,
    SpiderSpec,
    SyntheticLog,
    WorkloadSpec,
    generate_log,
)

__all__ = [
    "PrefixPreservingAnonymizer",
    "save_log",
    "load_log",
    "LogEntry",
    "LogFormatError",
    "format_clf_time",
    "parse_clf_time",
    "WebLog",
    "ParseReport",
    "parse_clf_lines",
    "load_clf",
    "LogStats",
    "summarize",
    "requests_per_hour",
    "requests_by_client",
    "UrlCatalog",
    "WorkloadSpec",
    "SpiderSpec",
    "ProxySpec",
    "SyntheticLog",
    "generate_log",
    "PRESET_NAMES",
    "make_spec",
    "make_log",
]
