"""Prefix-preserving log anonymization.

The paper closes by inviting "large portal sites to make their logs
available" — which in practice requires anonymizing client addresses.
A naive random mapping would destroy exactly what this library studies:
the prefix structure.  This module implements *prefix-preserving*
anonymization: two addresses share a k-bit prefix after anonymization
**iff** they shared a k-bit prefix before.

Mechanism: a deterministic keyed bit-flip per prefix node.  For bit
position ``i`` of an address, the flip decision depends only on the
(anonymized-independent) first ``i`` original bits and the key — the
classic construction later formalised as Crypto-PAn, here built on the
library's keyed SHA-256 stream.

Because clustering is purely prefix-structural, clustering an
anonymized log against an equally-anonymized prefix table yields a
clustering *isomorphic* to the original — the property the tests pin
down.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bgp.table import MergedPrefixTable, RouteEntry, RoutingTable
from repro.net.prefix import Prefix
from repro.util.rng import derive_seed
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog

__all__ = ["PrefixPreservingAnonymizer"]


class PrefixPreservingAnonymizer:
    """Keyed, deterministic, prefix-preserving IPv4 anonymizer."""

    def __init__(self, key: int) -> None:
        self.key = key
        # Flip decisions are derived lazily and memoised per prefix
        # node; a full tree would have 2^33 nodes.
        self._flips: Dict[tuple, int] = {}

    def _flip(self, depth: int, prefix_bits: int) -> int:
        """The flip bit for position ``depth`` given the original
        ``depth`` leading bits (as an integer)."""
        node = (depth, prefix_bits)
        cached = self._flips.get(node)
        if cached is None:
            cached = derive_seed(self.key, f"{depth}:{prefix_bits}") & 1
            self._flips[node] = cached
        return cached

    # -- addresses -----------------------------------------------------------

    def anonymize_address(self, address: int) -> int:
        """Anonymize one IPv4 address (int in, int out)."""
        if not 0 <= address < (1 << 32):
            raise ValueError(f"address out of range: {address!r}")
        result = 0
        prefix_bits = 0
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            flipped = bit ^ self._flip(depth, prefix_bits)
            result = (result << 1) | flipped
            prefix_bits = (prefix_bits << 1) | bit
        return result

    def anonymize_prefix(self, prefix: Prefix) -> Prefix:
        """Anonymize a CIDR block; the length is preserved and the
        network bits map through the same flip tree as addresses."""
        anonymized = self.anonymize_address(prefix.network)
        return Prefix(anonymized, prefix.length)

    # -- bulk helpers ---------------------------------------------------------

    def anonymize_log(self, log: WebLog) -> WebLog:
        """Anonymize every client address in ``log`` (URLs untouched —
        URL scrubbing is a separate policy decision)."""
        entries: List[LogEntry] = [
            LogEntry(
                client=self.anonymize_address(entry.client),
                timestamp=entry.timestamp,
                url=entry.url,
                size=entry.size,
                status=entry.status,
                method=entry.method,
                user_agent=entry.user_agent,
                referer=entry.referer,
            )
            for entry in log.entries
        ]
        return WebLog(f"{log.name}.anon", entries)

    def anonymize_table(self, table: MergedPrefixTable) -> MergedPrefixTable:
        """Map a merged prefix table through the same anonymization, so
        anonymized clients can be clustered with identical structure."""
        result = MergedPrefixTable()
        # Rebuild per-kind tables so provenance priority is preserved.
        by_kind: Dict[str, RoutingTable] = {}
        for prefix, lookup in table.items():
            target = by_kind.get(lookup.source_kind)
            if target is None:
                target = by_kind[lookup.source_kind] = RoutingTable(
                    f"anon-{lookup.source_kind}", kind=lookup.source_kind
                )
            target.add(
                RouteEntry(
                    prefix=self.anonymize_prefix(prefix),
                    next_hop="",  # scrubbed: next hops identify peers
                    as_path=lookup.entry.as_path,
                )
            )
        for kind_table in by_kind.values():
            result.add_table(kind_table)
        return result
