"""URL catalog: the origin server's resource population.

The caching simulation needs, for every URL, a stable response size
(byte hit ratios, cache capacity in bytes) and a modification history
(TTL expiry + piggyback/If-Modified-Since validation).  Real logs give
sizes; modification times are never logged, so the catalog generates a
deterministic per-URL Poisson modification process: roughly half the
resources are immutable and the rest change every few hours, which is
what makes a 1-hour TTL meaningful in Figure 11's simulation.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.rng import spawn

__all__ = ["UrlCatalog"]


class UrlCatalog:
    """Deterministic resource population for one synthetic log."""

    def __init__(
        self,
        num_urls: int,
        seed: int,
        start_time: float,
        duration_seconds: float,
        mean_bytes: float = 8192.0,
        immutable_fraction: float = 0.5,
        mean_change_hours: float = 6.0,
    ) -> None:
        if num_urls <= 0:
            raise ValueError(f"catalog needs at least one URL: {num_urls}")
        self.num_urls = num_urls
        self.start_time = start_time
        self.duration_seconds = duration_seconds
        rng = spawn(seed, "catalog")
        # Log-normal sizes: median well under the mean, a heavy tail of
        # large resources (the usual web object size shape).
        sigma = 1.0
        mu = math.log(mean_bytes) - sigma * sigma / 2.0
        self._sizes: List[int] = [
            max(64, int(rng.lognormvariate(mu, sigma))) for _ in range(num_urls)
        ]
        self._urls: List[str] = [
            f"/docs/page{index:05d}.html" for index in range(num_urls)
        ]
        self._index: Dict[str, int] = {
            url: index for index, url in enumerate(self._urls)
        }
        # Per-URL modification schedule over [start, start + duration].
        self._mod_times: List[Tuple[float, ...]] = []
        for index in range(num_urls):
            if rng.random() < immutable_fraction:
                self._mod_times.append(())
                continue
            interval = rng.expovariate(1.0 / (mean_change_hours * 3600.0))
            times: List[float] = []
            cursor = start_time + rng.random() * max(interval, 1.0)
            while cursor < start_time + duration_seconds:
                times.append(cursor)
                interval = rng.expovariate(1.0 / (mean_change_hours * 3600.0))
                cursor += max(interval, 60.0)
            self._mod_times.append(tuple(times))

    # -- lookups -------------------------------------------------------------

    def url(self, index: int) -> str:
        return self._urls[index]

    def urls(self) -> Sequence[str]:
        return tuple(self._urls)

    def index_of(self, url: str) -> Optional[int]:
        return self._index.get(url)

    def size_of(self, url: str) -> int:
        """Response size in bytes; unknown URLs get a default size."""
        index = self._index.get(url)
        return self._sizes[index] if index is not None else 2048

    def total_bytes(self) -> int:
        """Sum of all resource sizes (bounds useful cache capacity)."""
        return sum(self._sizes)

    # -- modification history ---------------------------------------------

    def modified_between(self, url: str, t0: float, t1: float) -> bool:
        """True when ``url`` changed in the half-open interval (t0, t1].

        This is what an If-Modified-Since validation observes: the
        cached copy fetched at ``t0`` is stale at ``t1`` iff some
        modification happened in between.
        """
        index = self._index.get(url)
        if index is None:
            return False
        times = self._mod_times[index]
        if not times:
            return False
        position = bisect.bisect_right(times, t0)
        return position < len(times) and times[position] <= t1

    def last_modified(self, url: str, at: float) -> float:
        """The most recent modification time of ``url`` at time ``at``
        (the catalog epoch when it never changed)."""
        index = self._index.get(url)
        if index is None:
            return self.start_time
        times = self._mod_times[index]
        position = bisect.bisect_right(times, at)
        return times[position - 1] if position else self.start_time
