"""Web server log entries (Common Log Format).

The paper's pipeline starts from server logs: the clustering extracts
client IP addresses, the spider/proxy detection uses request timing and
the User-Agent field, and the caching simulation replays the full
request stream.  :class:`LogEntry` carries exactly those fields, and
round-trips through the NCSA Combined Log Format so that real logs can
be ingested alongside synthetic ones.
"""

from __future__ import annotations

import calendar
import re
import time as _time
from dataclasses import dataclass

from repro.net.ipv4 import format_ipv4, parse_ipv4

__all__ = ["LogEntry", "LogFormatError", "format_clf_time", "parse_clf_time"]

_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_INDEX = {name: i + 1 for i, name in enumerate(_MONTHS)}

# host ident authuser [date] "request" status bytes "referer" "agent"
_CLF_PATTERN = re.compile(
    r'^(?P<host>\S+) (?P<ident>\S+) (?P<user>\S+) '
    r'\[(?P<time>[^\]]+)\] "(?P<request>[^"]*)" '
    r'(?P<status>\d{3}) (?P<size>\d+|-)'
    r'(?: "(?P<referer>[^"]*)" "(?P<agent>[^"]*)")?\s*$'
)


class LogFormatError(ValueError):
    """Raised when a log line cannot be parsed."""


def format_clf_time(timestamp: float) -> str:
    """Render an epoch ``timestamp`` as a CLF time field (UTC).

    >>> format_clf_time(887328000.0)
    '13/Feb/1998:00:00:00 +0000'
    """
    parts = _time.gmtime(timestamp)
    month = _MONTHS[parts.tm_mon - 1]
    return (
        f"{parts.tm_mday:02d}/{month}/{parts.tm_year}:"
        f"{parts.tm_hour:02d}:{parts.tm_min:02d}:{parts.tm_sec:02d} +0000"
    )


def parse_clf_time(text: str) -> float:
    """Parse a CLF time field back to an epoch timestamp.

    Only the +0000 zone is produced by this library; other zone offsets
    are honoured on input.
    """
    match = re.match(
        r"^(\d{2})/([A-Za-z]{3})/(\d{4}):(\d{2}):(\d{2}):(\d{2}) ([+-])(\d{2})(\d{2})$",
        text.strip(),
    )
    if not match:
        raise LogFormatError(f"bad CLF time: {text!r}")
    day, mon, year, hour, minute, second, sign, zh, zm = match.groups()
    if mon not in _MONTH_INDEX:
        raise LogFormatError(f"bad month in CLF time: {text!r}")
    epoch = calendar.timegm(
        (int(year), _MONTH_INDEX[mon], int(day), int(hour), int(minute),
         int(second), 0, 0, 0)
    )
    offset = (int(zh) * 3600 + int(zm) * 60) * (1 if sign == "+" else -1)
    return float(epoch - offset)


@dataclass(frozen=True)
class LogEntry:
    """One request as recorded by the origin server.

    ``client`` is the integer IPv4 address; ``size`` is the response
    body size in bytes (0 renders as "-", as real servers log 304s).
    """

    client: int
    timestamp: float
    url: str
    size: int = 0
    status: int = 200
    method: str = "GET"
    user_agent: str = ""
    referer: str = ""

    @property
    def client_text(self) -> str:
        """Dotted-quad client address."""
        return format_ipv4(self.client)

    def to_clf(self, combined: bool = True) -> str:
        """Render as one NCSA (combined) log line."""
        size_field = str(self.size) if self.size > 0 else "-"
        base = (
            f"{self.client_text} - - [{format_clf_time(self.timestamp)}] "
            f'"{self.method} {self.url} HTTP/1.0" {self.status} {size_field}'
        )
        if not combined:
            return base
        return f'{base} "{self.referer or "-"}" "{self.user_agent or "-"}"'

    @classmethod
    def from_clf(cls, line: str) -> "LogEntry":
        """Parse one NCSA common/combined log line."""
        match = _CLF_PATTERN.match(line)
        if not match:
            raise LogFormatError(f"unparseable log line: {line[:120]!r}")
        request = match.group("request").split()
        if len(request) >= 2:
            method, url = request[0], request[1]
        elif request:
            method, url = "GET", request[0]
        else:
            raise LogFormatError(f"empty request field: {line[:120]!r}")
        size_field = match.group("size")
        referer = match.group("referer") or ""
        agent = match.group("agent") or ""
        return cls(
            client=parse_ipv4(match.group("host")),
            timestamp=parse_clf_time(match.group("time")),
            url=url,
            size=0 if size_field == "-" else int(size_field),
            status=int(match.group("status")),
            method=method,
            user_agent="" if agent == "-" else agent,
            referer="" if referer == "-" else referer,
        )
