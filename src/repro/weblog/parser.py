"""Streaming log parsing and the in-memory log container.

:class:`WebLog` is the unit the pipeline operates on: an ordered
request stream plus the derived indexes the clustering and detection
steps need (unique clients, per-client request lists).  Logs stream in
from CLF files line by line — malformed lines and the 0.0.0.0 source
address are dropped with counts kept, per the paper's footnote 6.

Parsing is two-tier: a single precompiled pattern (:data:`_FAST_CLF`)
accepts the common well-formed shape in one match and builds the entry
with plain ``str.split``/``int`` work, and anything it declines falls
back to the full :meth:`LogEntry.from_clf` grammar.  The fast path is
a strict subset of the full parse — it never accepts a line the
grammar would reject and produces identical entries — so the
:class:`ParseReport` accounting is byte-for-byte unchanged.
"""

from __future__ import annotations

import calendar
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, TextIO

from repro.weblog.entry import _MONTH_INDEX, LogEntry, LogFormatError

__all__ = [
    "WebLog",
    "ParseReport",
    "ParseLimitError",
    "parse_clf_lines",
    "iter_clf_entries",
    "load_clf",
]


class ParseLimitError(ValueError):
    """Raised when malformed lines exceed a stream's ``max_errors``."""


# The hot-loop fast path: one combined pattern covering the common CLF
# shape end to end, with every field group strict enough that a match
# is guaranteed to parse to the exact LogEntry the full grammar
# (LogEntry.from_clf) would produce.  Anything the pattern is unsure
# about — odd request shapes, quotes inside the URL, non-HTTP protocol
# tokens, out-of-range octets, unknown months — simply fails to match
# and falls through to from_clf, so the fast path can never flip a
# line between parsed/malformed/null_client buckets.
_OCTET = r"(?:25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)"
_FAST_CLF = re.compile(
    r"(" + _OCTET + r"(?:\." + _OCTET + r"){3}) \S+ \S+ "
    r"\[(\d{2})/(Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec)/"
    r"(\d{4}):(\d{2}):(\d{2}):(\d{2}) ([+-])(\d{2})(\d{2})\] "
    r'"([A-Z]+) ([^\s"]+)(?: ([^\s"]+))?" (\d{3}) (\d+|-)'
    r'(?: "([^"]*)" "([^"]*)")?$'
)


def _fast_entry(line: str) -> Optional[LogEntry]:
    """Parse a stripped CLF ``line`` on the fast path, or return None.

    Produces bit-identical entries to :meth:`LogEntry.from_clf` for
    every line it accepts (the timestamp arithmetic mirrors
    :func:`repro.weblog.entry.parse_clf_time` term for term); returns
    None for everything else so the caller can run the full parse.
    """
    match = _FAST_CLF.match(line)
    if match is None:
        return None
    (host, day, mon, year, hour, minute, second, sign, zone_h, zone_m,
     method, url, _proto, status, size, referer, agent) = match.groups()
    first, second_octet, third, fourth = host.split(".")
    epoch = calendar.timegm((
        int(year), _MONTH_INDEX[mon], int(day),
        int(hour), int(minute), int(second), 0, 0, 0,
    ))
    offset = (int(zone_h) * 3600 + int(zone_m) * 60)
    if sign == "-":
        offset = -offset
    return LogEntry(
        client=(int(first) << 24) | (int(second_octet) << 16)
               | (int(third) << 8) | int(fourth),
        timestamp=float(epoch - offset),
        url=url,
        size=0 if size == "-" else int(size),
        status=int(status),
        method=method,
        user_agent="" if agent is None or agent == "-" else agent,
        referer="" if referer is None or referer == "-" else referer,
    )


@dataclass
class ParseReport:
    """Counts from one parsing pass (kept for log hygiene reporting)."""

    total_lines: int = 0
    parsed: int = 0
    malformed: int = 0
    null_client: int = 0  # requests from 0.0.0.0, excluded per footnote 6


class WebLog:
    """An ordered collection of :class:`LogEntry` with client indexes."""

    def __init__(self, name: str, entries: Optional[Iterable[LogEntry]] = None):
        self.name = name
        self.entries: List[LogEntry] = list(entries) if entries else []
        self._by_client: Optional[Dict[int, List[int]]] = None

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def append(self, entry: LogEntry) -> None:
        self.entries.append(entry)
        self._by_client = None

    def extend(self, entries: Iterable[LogEntry]) -> None:
        self.entries.extend(entries)
        self._by_client = None

    def sort_by_time(self) -> None:
        """Order entries chronologically (simulation replay order)."""
        self.entries.sort(key=lambda e: e.timestamp)
        self._by_client = None

    # -- indexes -----------------------------------------------------------

    def clients(self) -> List[int]:
        """Unique client addresses, ascending."""
        return sorted(self._client_index())

    def num_clients(self) -> int:
        return len(self._client_index())

    def requests_of(self, client: int) -> List[LogEntry]:
        """All requests issued by ``client``, in log order."""
        index = self._client_index()
        return [self.entries[i] for i in index.get(client, ())]

    def request_count_of(self, client: int) -> int:
        index = self._client_index()
        return len(index.get(client, ()))

    def unique_urls(self) -> int:
        return len({entry.url for entry in self.entries})

    def duration_seconds(self) -> float:
        if not self.entries:
            return 0.0
        times = [entry.timestamp for entry in self.entries]
        return max(times) - min(times)

    def time_span(self) -> tuple:
        """(first, last) timestamps; (0.0, 0.0) for an empty log."""
        if not self.entries:
            return (0.0, 0.0)
        times = [entry.timestamp for entry in self.entries]
        return (min(times), max(times))

    def partition_sessions(self, session_seconds: float) -> List["WebLog"]:
        """Split chronologically into fixed-length sessions (§3.6's
        6-hour partitioning of the Nagano log)."""
        if session_seconds <= 0:
            raise ValueError("session length must be positive")
        if not self.entries:
            return []
        start, _ = self.time_span()
        sessions: Dict[int, List[LogEntry]] = {}
        for entry in self.entries:
            bucket = int((entry.timestamp - start) // session_seconds)
            sessions.setdefault(bucket, []).append(entry)
        return [
            WebLog(f"{self.name}.session{bucket}", entries)
            for bucket, entries in sorted(sessions.items())
        ]

    def without_clients(self, excluded: Iterable[int]) -> "WebLog":
        """A copy with all requests from ``excluded`` clients removed
        (spider/proxy elimination, §4.1.1)."""
        drop = set(excluded)
        kept = [entry for entry in self.entries if entry.client not in drop]
        return WebLog(self.name, kept)

    def _client_index(self) -> Dict[int, List[int]]:
        if self._by_client is None:
            index: Dict[int, List[int]] = {}
            for position, entry in enumerate(self.entries):
                index.setdefault(entry.client, []).append(position)
            self._by_client = index
        return self._by_client


def iter_clf_entries(
    lines: Iterable[str],
    report: Optional[ParseReport] = None,
    max_errors: Optional[int] = None,
) -> Iterator[LogEntry]:
    """Stream :class:`LogEntry` objects out of CLF ``lines``.

    This is the engine-mode front end: entries are yielded as they
    parse, so arbitrarily large logs stream through in constant memory,
    and malformed lines are counted-and-skipped in ``report`` rather
    than aborting the batch they arrived in.  ``max_errors`` is the
    guard against feeding the engine something that is not a CLF log at
    all: when more than ``max_errors`` malformed lines accumulate, the
    stream raises :class:`ParseLimitError` (``max_errors=0`` means
    strict, ``None`` — the default — never trips).

    Requests from 0.0.0.0 (BOOTP-style unknown-source placeholders) are
    excluded, as in the paper's experiments.
    """
    report = report if report is not None else ParseReport()
    for line in lines:
        report.total_lines += 1
        stripped = line.strip()
        if not stripped:
            continue
        entry = _fast_entry(stripped)
        if entry is None:
            try:
                entry = LogEntry.from_clf(stripped)
            except (LogFormatError, ValueError):
                report.malformed += 1
                if max_errors is not None and report.malformed > max_errors:
                    raise ParseLimitError(
                        f"{report.malformed} malformed lines exceed the "
                        f"max_errors={max_errors} guard "
                        f"(line {report.total_lines}: {stripped[:80]!r})"
                    )
                continue
        if entry.client == 0:
            report.null_client += 1
            continue
        report.parsed += 1
        yield entry


def parse_clf_lines(
    name: str,
    lines: Iterable[str],
    report: Optional[ParseReport] = None,
    max_errors: Optional[int] = None,
) -> WebLog:
    """Parse CLF ``lines`` into a :class:`WebLog` (see
    :func:`iter_clf_entries` for the skip/guard behaviour)."""
    return WebLog(name, iter_clf_entries(lines, report, max_errors))


def load_clf(name: str, stream: TextIO) -> WebLog:
    """Parse a CLF file object into a :class:`WebLog`."""
    return parse_clf_lines(name, stream)
