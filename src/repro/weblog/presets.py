"""Per-paper-log workload presets.

One preset per server log the paper evaluates (§3.2.2): Nagano (1998
Winter Olympics, one day, transient event), Apache, EW3 (Easy World
Wide Web), and Sun, plus the large ISP client trace used for server
clustering in §3.6.  Absolute sizes are scaled to laptop runtimes
(roughly 1/40 of the paper's request counts at ``scale=1.0``); the
``scale`` knob grows or shrinks everything proportionally, and every
experiment reports shapes and ratios rather than absolute counts.

Paper reference points:

=========  ==========  ========  ===========  ========  ================
log        requests    clients   unique URLs  duration  notes
=========  ==========  ========  ===========  ========  ================
Nagano     11,665,713  59,582    33,875       24 h      no spiders
Apache     (large)     (large)   (n/a)        94 d      35,563 clusters
EW3        (large)     (large)   (n/a)        (n/a)     24,921 clusters
Sun        (large)     (large)   116,274      (n/a)     spider + proxy
=========  ==========  ========  ===========  ========  ================
"""

from __future__ import annotations


from repro.simnet.topology import Topology
from repro.weblog.synth import (
    ProxySpec,
    SpiderSpec,
    SyntheticLog,
    WorkloadSpec,
    generate_log,
)

__all__ = ["PRESET_NAMES", "make_spec", "make_log"]

PRESET_NAMES = ("nagano", "apache", "ew3", "sun", "isp")


def make_spec(name: str, scale: float = 1.0, seed: int = 2000) -> WorkloadSpec:
    """Build the :class:`WorkloadSpec` for preset ``name``.

    ``scale`` multiplies clients/URLs/requests together; 1.0 is the
    default experiment size, and tests use ~0.1 for speed.
    """

    def s(value: int, minimum: int = 1) -> int:
        return max(minimum, round(value * scale))

    if name == "nagano":
        # One-day transient event: busy, no spiders, a couple of proxies.
        return WorkloadSpec(
            name="nagano",
            seed=seed + 1,
            duration_hours=24.0,
            num_clients=s(4000),
            num_urls=s(2200),
            total_requests=s(260_000),
            spiders=(),
            proxies=(
                ProxySpec(requests=s(18_000), user_agents=7, cohabitants=0),
                ProxySpec(requests=s(6_000), user_agents=5, cohabitants=3),
            ),
        )
    if name == "apache":
        # Long-duration popular site.
        return WorkloadSpec(
            name="apache",
            seed=seed + 2,
            duration_hours=7 * 24.0,
            num_clients=s(6500),
            num_urls=s(900),
            total_requests=s(200_000),
            proxies=(ProxySpec(requests=s(8_000), user_agents=6, cohabitants=2),),
        )
    if name == "ew3":
        return WorkloadSpec(
            name="ew3",
            seed=seed + 3,
            duration_hours=3 * 24.0,
            num_clients=s(4500),
            num_urls=s(1300),
            total_requests=s(150_000),
            proxies=(ProxySpec(requests=s(6_000), user_agents=5, cohabitants=1),),
        )
    if name == "sun":
        # The Sun log contains the paper's canonical spider (§4.1.2) and
        # a suspected proxy issuing 323,867 of a 2-client cluster's
        # 326,566 requests.
        return WorkloadSpec(
            name="sun",
            seed=seed + 4,
            duration_hours=10 * 24.0,
            num_clients=s(5500),
            num_urls=s(5000),
            total_requests=s(220_000),
            spiders=(
                SpiderSpec(
                    requests=s(25_000), url_coverage=0.5,
                    sessions=8, cohabitants=12,
                ),
            ),
            proxies=(ProxySpec(requests=s(12_000), user_agents=8, cohabitants=1),),
        )
    if name == "isp":
        # §3.6's ISP client trace, reinterpreted: the addresses in this
        # log are the *servers* contacted through the ISP's proxy, so
        # clustering it yields server clusters.
        return WorkloadSpec(
            name="isp",
            seed=seed + 5,
            duration_hours=11 * 24.0,
            num_clients=s(7000),     # unique server addresses
            num_urls=s(1000),
            total_requests=s(240_000),
            client_zipf_alpha=1.35,  # few hot server farms get most hits
        )
    raise ValueError(f"unknown preset {name!r}; choose from {PRESET_NAMES}")


def make_log(
    topology: Topology,
    name: str,
    scale: float = 1.0,
    seed: int = 2000,
) -> SyntheticLog:
    """Generate the preset log ``name`` over ``topology``."""
    return generate_log(topology, make_spec(name, scale=scale, seed=seed))
