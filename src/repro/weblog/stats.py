"""Log summary statistics (§3.2.2's per-log characterisation)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.weblog.parser import WebLog

__all__ = ["LogStats", "summarize"]


@dataclass(frozen=True)
class LogStats:
    """The per-log numbers the paper reports for each server log."""

    name: str
    requests: int
    clients: int
    unique_urls: int
    duration_hours: float
    total_bytes: int

    def describe(self) -> str:
        return (
            f"{self.name}: {self.requests:,} requests, "
            f"{self.clients:,} clients, {self.unique_urls:,} unique URLs, "
            f"{self.duration_hours:.1f} h"
        )


def summarize(log: WebLog) -> LogStats:
    """Compute :class:`LogStats` for ``log``."""
    return LogStats(
        name=log.name,
        requests=len(log),
        clients=log.num_clients(),
        unique_urls=log.unique_urls(),
        duration_hours=log.duration_seconds() / 3600.0,
        total_bytes=sum(entry.size for entry in log.entries),
    )


def requests_per_hour(log: WebLog, bucket_seconds: float = 3600.0) -> List[int]:
    """Histogram of request arrivals over time (Figure 9's raw series).

    Returns one count per ``bucket_seconds`` bucket from the log's
    first to last request.
    """
    if not log.entries:
        return []
    start, end = log.time_span()
    buckets = int((end - start) // bucket_seconds) + 1
    counts = [0] * buckets
    for entry in log.entries:
        counts[int((entry.timestamp - start) // bucket_seconds)] += 1
    return counts


def requests_by_client(log: WebLog) -> Dict[int, int]:
    """Map client address -> number of requests issued."""
    counts: Dict[int, int] = {}
    for entry in log.entries:
        counts[entry.client] = counts.get(entry.client, 0) + 1
    return counts
