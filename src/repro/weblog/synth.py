"""Synthetic web-server-log generation.

Replaces the paper's proprietary server logs (Nagano Olympics, Apache,
EW3, Sun, ...) with generated traces whose statistical structure
matches what the paper reports and relies on:

* clients drawn from the ground-truth topology's leaf networks with a
  Zipf-weighted network popularity, so cluster sizes and per-cluster
  request counts come out heavy-tailed (Figures 3–6);
* Zipf URL popularity with per-client revisit locality (cache hit
  ratios, Figures 11–12);
* diurnal arrival rates with per-client activity sessions (Figure 9's
  daily spikes);
* optional planted *spiders* (huge sequential URL sweeps, non-diurnal
  timing, one User-Agent) and *proxies* (aggregate-like popularity and
  timing, many User-Agents, short think time) with ground-truth labels
  so detection can be scored (§4.1.2);
* a ~0.1 % sprinkle of bogus/unallocated client addresses, which is
  what keeps the clusterable-client ratio at 99.9 % rather than 100 %.

Everything is deterministic in ``spec.seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import random

from repro.simnet.topology import Topology
from repro.util.rng import spawn
from repro.util.zipf import ZipfSampler
from repro.weblog.catalog import UrlCatalog
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog

__all__ = ["SpiderSpec", "ProxySpec", "WorkloadSpec", "SyntheticLog", "generate_log"]

#: 1998-02-13 00:00:00 UTC — the Nagano log's day.
NAGANO_EPOCH = 887328000.0

_USER_AGENTS = (
    "Mozilla/4.04 [en] (X11; U; SunOS 5.6)",
    "Mozilla/4.0 (compatible; MSIE 4.01; Windows 95)",
    "Mozilla/4.0 (compatible; MSIE 4.01; Windows 98)",
    "Mozilla/3.01 (Macintosh; I; PPC)",
    "Mozilla/4.5 [en] (WinNT; I)",
    "Lynx/2.8.1rel.2 libwww-FM/2.14",
    "Mozilla/4.06 [en] (Win95; I)",
    "Mozilla/4.51 [en] (X11; I; Linux 2.2.5 i686)",
)

_SPIDER_AGENT = "ArchitextSpider/1.0 (crawler@example.org)"


@dataclass(frozen=True)
class SpiderSpec:
    """One planted spider (§4.1.2: the Sun log's spider issued 692,453
    requests over 4,426 of 116,274 URLs from a 27-host cluster)."""

    requests: int
    url_coverage: float = 0.8   # fraction of the catalog it sweeps
    sessions: int = 6           # continuous crawling bursts
    cohabitants: int = 8        # normal clients sharing its network


@dataclass(frozen=True)
class ProxySpec:
    """One planted forward proxy: mimics the aggregate access pattern
    but concentrates many users' requests behind one address."""

    requests: int
    user_agents: int = 6        # distinct UAs relayed (detection signal)
    cohabitants: int = 1        # other clients in its network


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic server log."""

    name: str
    seed: int = 1
    duration_hours: float = 24.0
    num_clients: int = 2000
    num_urls: int = 1500
    total_requests: int = 100_000
    start_time: float = NAGANO_EPOCH
    url_zipf_alpha: float = 1.0
    client_zipf_alpha: float = 1.25
    leaf_zipf_alpha: float = 1.1
    revisit_probability: float = 0.15
    mean_url_bytes: float = 8192.0
    diurnal_amplitude: float = 0.75
    diurnal_peak_hour: float = 14.0
    bogus_client_fraction: float = 0.001
    spiders: Tuple[SpiderSpec, ...] = ()
    proxies: Tuple[ProxySpec, ...] = ()

    @property
    def duration_seconds(self) -> float:
        return self.duration_hours * 3600.0


@dataclass
class SyntheticLog:
    """A generated log plus its ground truth.

    ``spider_clients`` / ``proxy_clients`` label the planted hosts so
    the detection heuristics of §4.1.2 can be scored; ``catalog``
    carries sizes and modification histories for the caching
    simulation.
    """

    log: WebLog
    catalog: UrlCatalog
    spec: WorkloadSpec
    spider_clients: List[int] = field(default_factory=list)
    proxy_clients: List[int] = field(default_factory=list)
    bogus_clients: List[int] = field(default_factory=list)


class _Workload:
    """Stateful generator for one log (split into labelled RNG streams)."""

    def __init__(self, topology: Topology, spec: WorkloadSpec) -> None:
        self.topology = topology
        self.spec = spec
        self.catalog = UrlCatalog(
            spec.num_urls,
            spec.seed,
            spec.start_time,
            spec.duration_seconds,
            mean_bytes=spec.mean_url_bytes,
        )
        self.url_sampler = ZipfSampler(spec.num_urls, spec.url_zipf_alpha)
        self.entries: List[LogEntry] = []
        self.result = SyntheticLog(
            log=WebLog(spec.name), catalog=self.catalog, spec=spec
        )

    # -- client placement --------------------------------------------------

    def _place_clients(self, rng: random.Random) -> List[int]:
        """Draw client addresses: Zipf-popular leaf networks, distinct
        hosts within each."""
        leafs = list(self.topology.leaf_networks)
        rng.shuffle(leafs)
        leaf_sampler = ZipfSampler(len(leafs), self.spec.leaf_zipf_alpha)
        used: Dict[int, set] = {}
        clients: List[int] = []
        attempts = 0
        limit = self.spec.num_clients * 20
        while len(clients) < self.spec.num_clients and attempts < limit:
            attempts += 1
            leaf = leafs[leaf_sampler.sample(rng)]
            taken = used.setdefault(leaf.prefix.network, set())
            if len(taken) >= leaf.capacity:
                continue
            base = 1 if leaf.prefix.num_addresses > 2 else 0
            offset = base + rng.randrange(leaf.capacity)
            if offset in taken:
                continue
            taken.add(offset)
            clients.append(leaf.prefix.network + offset)
        return clients

    def _bogus_clients(self, rng: random.Random) -> List[int]:
        count = max(0, round(self.spec.num_clients * self.spec.bogus_client_fraction))
        return [self.topology.unallocated_address(rng) for _ in range(count)]

    # -- timing --------------------------------------------------------------

    def _diurnal_time(self, rng: random.Random) -> float:
        """One arrival time following the diurnal rate by rejection."""
        spec = self.spec
        peak = spec.diurnal_peak_hour
        while True:
            t = rng.random() * spec.duration_seconds
            hour = (t / 3600.0) % 24.0
            rate = 1.0 + spec.diurnal_amplitude * math.cos(
                2.0 * math.pi * (hour - peak) / 24.0
            )
            if rng.random() * (1.0 + spec.diurnal_amplitude) < rate:
                return spec.start_time + t

    def _session_times(
        self, rng: random.Random, count: int, sessions: int
    ) -> List[float]:
        """``count`` request times packed into diurnally-placed activity
        sessions (normal users browse in bursts, not all day)."""
        if count <= 0:
            return []
        starts = sorted(self._diurnal_time(rng) for _ in range(sessions))
        times: List[float] = []
        per_session = max(1, count // sessions)
        remaining = count
        for start in starts:
            take = min(per_session, remaining)
            length = rng.uniform(900.0, 5400.0)  # 15–90 minute session
            times.extend(start + rng.random() * length for _ in range(take))
            remaining -= take
            if remaining <= 0:
                break
        while remaining > 0:
            times.append(self._diurnal_time(rng))
            remaining -= 1
        end = self.spec.start_time + self.spec.duration_seconds
        return [min(t, end - 1.0) for t in times]

    # -- request emission -------------------------------------------------

    def _emit_normal_client(
        self, rng: random.Random, client: int, count: int
    ) -> None:
        agent = rng.choice(_USER_AGENTS)
        sessions = max(1, min(40, count // 25))
        times = self._session_times(rng, count, sessions)
        history: List[int] = []
        for timestamp in times:
            if history and rng.random() < self.spec.revisit_probability:
                url_index = rng.choice(history)
            else:
                url_index = self.url_sampler.sample(rng)
                history.append(url_index)
                if len(history) > 32:
                    history.pop(0)
            url = self.catalog.url(url_index)
            self.entries.append(
                LogEntry(
                    client=client,
                    timestamp=timestamp,
                    url=url,
                    size=self.catalog.size_of(url),
                    user_agent=agent,
                )
            )

    def _emit_spider(self, rng: random.Random, spec: SpiderSpec) -> None:
        """A spider sweeps the catalog near-sequentially in long flat
        bursts — no diurnal shape, few repeats (Figure 9(c))."""
        leaf = rng.choice(self.topology.leaf_networks)
        hosts = self.topology.hosts_in_leaf(leaf, 1 + spec.cohabitants, rng)
        spider, cohabitants = hosts[0], hosts[1:]
        self.result.spider_clients.append(spider)
        sweep = max(1, int(self.spec.num_urls * spec.url_coverage))
        total = self.spec.duration_seconds
        session_span = total / max(1, spec.sessions)
        position = 0
        for session in range(spec.sessions):
            session_start = self.spec.start_time + session * session_span
            session_requests = spec.requests // spec.sessions
            gap = (session_span * 0.6) / max(1, session_requests)
            for step in range(session_requests):
                url = self.catalog.url(position % sweep)
                position += 1
                self.entries.append(
                    LogEntry(
                        client=spider,
                        timestamp=session_start + step * gap,
                        url=url,
                        size=self.catalog.size_of(url),
                        user_agent=_SPIDER_AGENT,
                    )
                )
        # The spider's cluster also contains a handful of normal hosts,
        # producing the skewed within-cluster distribution of Figure 10.
        for cohabitant in cohabitants:
            self._emit_normal_client(rng, cohabitant, 2 + rng.randrange(40))

    def _emit_proxy(self, rng: random.Random, spec: ProxySpec) -> None:
        """A proxy relays many users: aggregate-shaped popularity and
        diurnal timing, many User-Agents (Figure 9(b))."""
        leaf = rng.choice(self.topology.leaf_networks)
        hosts = self.topology.hosts_in_leaf(leaf, 1 + spec.cohabitants, rng)
        proxy, cohabitants = hosts[0], hosts[1:]
        self.result.proxy_clients.append(proxy)
        agents = [rng.choice(_USER_AGENTS) for _ in range(spec.user_agents)]
        for _ in range(spec.requests):
            url_index = self.url_sampler.sample(rng)
            url = self.catalog.url(url_index)
            self.entries.append(
                LogEntry(
                    client=proxy,
                    timestamp=self._diurnal_time(rng),
                    url=url,
                    size=self.catalog.size_of(url),
                    user_agent=rng.choice(agents),
                )
            )
        for cohabitant in cohabitants:
            self._emit_normal_client(rng, cohabitant, 2 + rng.randrange(60))

    # -- assembly ----------------------------------------------------------

    def generate(self) -> SyntheticLog:
        spec = self.spec
        clients = self._place_clients(spawn(spec.seed, "clients"))
        bogus = self._bogus_clients(spawn(spec.seed, "bogus"))
        self.result.bogus_clients = bogus

        special_requests = sum(s.requests for s in spec.spiders) + sum(
            p.requests for p in spec.proxies
        )
        normal_budget = max(len(clients), spec.total_requests - special_requests)

        # Per-client request counts: Zipf over clients, scaled to budget.
        weight_rng = spawn(spec.seed, "weights")
        weights = [
            1.0 / ((rank + 1) ** spec.client_zipf_alpha) for rank in range(len(clients))
        ]
        weight_rng.shuffle(weights)
        # Individual *normal* clients never dominate a server log the
        # way clusters do — single addresses with outsized request
        # counts are proxies or spiders (§4.1.2), which are planted
        # separately.  Cap per-client activity, redistributing the
        # clipped budget across the rest so the target request count
        # survives the cap.
        cap = max(40, round(normal_budget * 0.004))
        counts = _capped_allocation(weights, normal_budget, cap)

        emit_rng = spawn(spec.seed, "emit")
        for client, count in zip(clients, counts):
            self._emit_normal_client(emit_rng, client, count)
        for address in bogus:
            self._emit_normal_client(emit_rng, address, 1 + emit_rng.randrange(3))
        for spider_spec in spec.spiders:
            self._emit_spider(spawn(spec.seed, f"spider:{spider_spec}"), spider_spec)
        for proxy_spec in spec.proxies:
            self._emit_proxy(spawn(spec.seed, f"proxy:{proxy_spec}"), proxy_spec)

        self.result.log.extend(self.entries)
        self.result.log.sort_by_time()
        return self.result


def _capped_allocation(
    weights: Sequence[float], budget: int, cap: int
) -> List[int]:
    """Distribute ``budget`` proportionally to ``weights`` with a
    per-slot ``cap``, water-filling the clipped excess over the
    remaining slots (each slot gets at least 1)."""
    n = len(weights)
    if n == 0:
        return []
    if cap * n <= budget:
        return [cap] * n  # budget unreachable: everyone saturates
    counts = [0] * n
    active = list(range(n))
    remaining = budget
    for _ in range(20):
        weight_sum = sum(weights[i] for i in active)
        if weight_sum <= 0 or remaining <= 0:
            break
        saturated = []
        for i in active:
            share = max(1, round(remaining * weights[i] / weight_sum))
            counts[i] = min(cap, counts[i] + share)
            if counts[i] >= cap:
                saturated.append(i)
        remaining = budget - sum(counts)
        active = [i for i in active if i not in set(saturated)]
        if not active or remaining <= 0:
            break
    return [max(1, c) for c in counts]


def generate_log(topology: Topology, spec: WorkloadSpec) -> SyntheticLog:
    """Generate one synthetic server log over ``topology``."""
    return _Workload(topology, spec).generate()
