"""Writing web logs to disk (and reading them back).

The synthetic workloads exist so the pipeline can run without the
paper's proprietary logs — but downstream users have real log files,
and tests want round-trips.  :func:`save_log` streams a
:class:`WebLog` to an NCSA common/combined file; :func:`load_log` is
the file-path twin of :func:`repro.weblog.parser.load_clf`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.weblog.parser import ParseReport, WebLog, parse_clf_lines

__all__ = ["save_log", "load_log"]


def save_log(
    log: WebLog,
    path: Union[str, Path],
    combined: bool = True,
) -> int:
    """Write ``log`` to ``path`` in NCSA (combined) format.

    Entries are written in their current order (call
    :meth:`WebLog.sort_by_time` first for a chronological file).
    Returns the number of lines written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "w") as handle:
        for entry in log.entries:
            handle.write(entry.to_clf(combined=combined) + "\n")
            count += 1
    return count


def load_log(
    path: Union[str, Path],
    name: Optional[str] = None,
    report: Optional[ParseReport] = None,
) -> WebLog:
    """Parse the CLF file at ``path`` into a :class:`WebLog`.

    Malformed lines and 0.0.0.0 clients are dropped, with counts in
    ``report`` when provided (the paper's footnote-6 hygiene).
    """
    path = Path(path)
    with open(path) as handle:
        return parse_clf_lines(name or path.stem, handle, report)
