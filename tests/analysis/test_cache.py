"""LintCache: key derivation, round-trips, pruning, and CLI wiring."""

from __future__ import annotations

import json

import pytest

import repro.analysis.flow as flow_mod
from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache, source_hash
from repro.analysis.cli import main
from repro.analysis.core import Finding

LEAKY = (
    "from multiprocessing.shared_memory import SharedMemory\n"
    "\n"
    "\n"
    "def build(size, flag):\n"
    "    seg = SharedMemory(create=True, size=size)\n"
    "    if flag:\n"
    "        return None\n"
    "    seg.close()\n"
    "    seg.unlink()\n"
    "    return None\n"
)


def a_finding(path="pkg/mod.py", line=3):
    return Finding(
        path=path, line=line, col=0, rule_id="resource-leak", message="leaked"
    )


# -- key derivation ---------------------------------------------------------


def test_flow_key_tracks_source_and_fingerprint():
    base = LintCache.flow_key(source_hash("x = 1\n"), "fp-a")
    assert LintCache.flow_key(source_hash("x = 2\n"), "fp-a") != base
    assert LintCache.flow_key(source_hash("x = 1\n"), "fp-b") != base
    assert LintCache.flow_key(source_hash("x = 1\n"), "fp-a") == base


def test_project_key_tracks_sources_docs_and_rules():
    base = LintCache.project_key(["s1", "s2"], ["d1"], ["rule-a"])
    assert LintCache.project_key(["s1", "s3"], ["d1"], ["rule-a"]) != base
    assert LintCache.project_key(["s1", "s2"], ["d2"], ["rule-a"]) != base
    assert LintCache.project_key(["s1", "s2"], ["d1"], ["rule-b"]) != base
    # order-insensitive: hashing sorts the inputs
    assert LintCache.project_key(["s2", "s1"], ["d1"], ["rule-a"]) == base


# -- persistence ------------------------------------------------------------


def test_save_load_round_trip(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache = LintCache(cache_file)
    assert cache.get("k1") is None
    cache.put("k1", [a_finding()])
    cache.save()

    reloaded = LintCache(cache_file)
    findings = reloaded.get("k1")
    assert findings == [a_finding()]
    assert reloaded.hits == 1


def test_corrupt_cache_file_means_cold_run(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json", encoding="utf-8")
    cache = LintCache(cache_file)
    assert cache.get("k1") is None
    # and saving over the corrupt file works
    cache.put("k1", [])
    cache.save()
    assert LintCache(cache_file).get("k1") == []


def test_unknown_schema_version_is_ignored(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text(
        json.dumps({"schema": 999, "entries": {"k1": []}}), encoding="utf-8"
    )
    assert LintCache(cache_file).get("k1") is None


def test_untouched_keys_are_pruned_on_save(tmp_path):
    cache_file = tmp_path / "cache.json"
    first = LintCache(cache_file)
    first.put("stale", [a_finding()])
    first.put("kept", [])
    first.save()

    second = LintCache(cache_file)
    assert second.get("kept") == []  # touched
    second.save()  # "stale" was never touched this run

    third = LintCache(cache_file)
    assert third.get("kept") == []
    assert third.get("stale") is None


def test_default_cache_path_is_the_documented_name():
    assert DEFAULT_CACHE_PATH == ".repro-lint-cache.json"
    assert LintCache().path.name == ".repro-lint-cache.json"


# -- CLI wiring -------------------------------------------------------------


@pytest.fixture()
def leaky_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "mod.py").write_text(LEAKY, encoding="utf-8")
    return pkg


def flow_argv(leaky_tree, cache_file):
    return [
        "--flow",
        "--select",
        "resource-leak",
        "--cache",
        str(cache_file),
        "--format=json",
        str(leaky_tree),
    ]


def test_cli_flow_cache_skips_reanalysis_of_unchanged_modules(
    leaky_tree, tmp_path, capsys, monkeypatch
):
    cache_file = tmp_path / "cache.json"
    calls = []
    real = flow_mod.flow_findings_for_module

    def counting(module, specs, rules):
        calls.append(module.module)
        return real(module, specs, rules)

    monkeypatch.setattr(flow_mod, "flow_findings_for_module", counting)

    argv = flow_argv(leaky_tree, cache_file)
    assert main(argv) == 1
    first = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in first] == ["resource-leak"]
    assert calls  # cold run analyzed the modules

    calls.clear()
    assert main(argv) == 1
    second = json.loads(capsys.readouterr().out)
    assert calls == []  # warm run served every module from the cache
    assert second == first


FIXED = (
    "from multiprocessing.shared_memory import SharedMemory\n"
    "\n"
    "\n"
    "def build(size, flag):\n"
    "    seg = SharedMemory(create=True, size=size)\n"
    "    try:\n"
    "        if flag:\n"
    "            return None\n"
    "        return None\n"
    "    finally:\n"
    "        seg.close()\n"
    "        seg.unlink()\n"
)


def test_cli_flow_cache_invalidates_on_edit(leaky_tree, tmp_path, capsys):
    cache_file = tmp_path / "cache.json"
    argv = flow_argv(leaky_tree, cache_file)
    assert main(argv) == 1
    capsys.readouterr()

    (leaky_tree / "mod.py").write_text(FIXED, encoding="utf-8")
    # a warm cache must not mask the edit: the fixed module lints clean
    assert main(argv) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_inter_key_tracks_all_three_components():
    base = LintCache.inter_key(source_hash("x = 1\n"), "fp-a", "dep-a")
    assert LintCache.inter_key(source_hash("x = 2\n"), "fp-a", "dep-a") != base
    assert LintCache.inter_key(source_hash("x = 1\n"), "fp-b", "dep-a") != base
    assert LintCache.inter_key(source_hash("x = 1\n"), "fp-a", "dep-b") != base
    assert LintCache.inter_key(source_hash("x = 1\n"), "fp-a", "dep-a") == base


HELPER_RELEASES = (
    "def teardown(segment):\n"
    "    segment.close()\n"
    "    segment.unlink()\n"
)

HELPER_FORGETS = (
    "def teardown(segment):\n"
    "    segment.flush()\n"
)

CALLER = (
    "from multiprocessing.shared_memory import SharedMemory\n"
    "\n"
    "from helper import teardown\n"
    "\n"
    "\n"
    "def publish(size, queue):\n"
    "    segment = SharedMemory(name='seg', create=True, size=size)\n"
    "    try:\n"
    "        queue.put(size)\n"
    "    finally:\n"
    "        teardown(segment)\n"
)


@pytest.fixture()
def helper_tree(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "helper.py").write_text(HELPER_RELEASES, encoding="utf-8")
    (pkg / "caller.py").write_text(CALLER, encoding="utf-8")
    return pkg


def inter_argv(tree, cache_file):
    return [
        "--flow",
        "--inter",
        "--cache",
        str(cache_file),
        "--format=json",
        str(tree),
    ]


def test_cli_inter_cache_busts_caller_on_callee_behaviour_edit(
    helper_tree, tmp_path, capsys
):
    # The caller's own source never changes; only the helper it calls
    # does.  A content-hash-only cache would wrongly reuse the caller's
    # clean verdict — the dependency-aware key must not.
    cache_file = tmp_path / "cache.json"
    argv = inter_argv(helper_tree, cache_file)
    assert main(argv) == 0
    assert json.loads(capsys.readouterr().out) == []

    (helper_tree / "helper.py").write_text(HELPER_FORGETS, encoding="utf-8")
    assert main(argv) == 1
    findings = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in findings] == ["inter-resource-leak"]
    assert findings[0]["path"].endswith("caller.py")


def test_cli_inter_cache_keeps_caller_on_docstring_only_callee_edit(
    helper_tree, tmp_path, capsys, monkeypatch
):
    import repro.analysis.inter as inter_mod

    cache_file = tmp_path / "cache.json"
    calls = []
    real = inter_mod.inter_findings_for_module

    def counting(module, context, rules):
        calls.append(module.module)
        return real(module, context, rules)

    monkeypatch.setattr(inter_mod, "inter_findings_for_module", counting)

    argv = inter_argv(helper_tree, cache_file)
    assert main(argv) == 0
    capsys.readouterr()
    assert sorted(calls) == ["caller", "helper"]  # cold run

    calls.clear()
    assert main(argv) == 0
    capsys.readouterr()
    assert calls == []  # warm run: every module served from cache

    # A docstring-only edit changes the helper's hash but not its
    # effect summary: the helper re-analyzes, the caller stays cached.
    (helper_tree / "helper.py").write_text(
        HELPER_RELEASES.replace(
            "def teardown(segment):\n",
            'def teardown(segment):\n    """Release both handles."""\n',
        ),
        encoding="utf-8",
    )
    calls.clear()
    assert main(argv) == 0
    capsys.readouterr()
    assert calls == ["helper"]


def test_cli_project_cache_round_trip(leaky_tree, tmp_path, capsys):
    cache_file = tmp_path / "cache.json"
    argv = ["--project", "--cache", str(cache_file), "--format=json", str(leaky_tree)]
    first_code = main(argv)
    first = json.loads(capsys.readouterr().out)
    second_code = main(argv)
    second = json.loads(capsys.readouterr().out)
    assert second_code == first_code
    assert second == first
    assert cache_file.is_file()
