"""repro-lint CLI behaviour: exit codes, formats, selection."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.cli import main

BAD_SNIPPET = textwrap.dedent(
    """
    def collect(into=[]):
        return into
    """
)

CLEAN_SNIPPET = textwrap.dedent(
    """
    def collect(into=None):
        return into if into is not None else []
    """
)


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
    assert main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_findings_exit_one_with_human_lines(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SNIPPET)
    assert main([str(target)]) == 1
    captured = capsys.readouterr()
    assert "[mutable-default]" in captured.out
    assert str(target) in captured.out
    assert "1 finding(s)" in captured.err


def test_json_format_is_machine_readable(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SNIPPET)
    assert main(["--format=json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "mutable-default"
    assert payload[0]["path"] == str(target)
    assert payload[0]["line"] == 2


def test_select_and_ignore_scope_the_run(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SNIPPET)
    assert main(["--select=broad-except", str(target)]) == 0
    assert main(["--ignore=mutable-default", str(target)]) == 0
    assert main(["--select=mutable-default", str(target)]) == 1


def test_unknown_rule_id_is_usage_error(tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
    with pytest.raises(SystemExit) as excinfo:
        main(["--select=no-such-rule", str(tmp_path)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["definitely/not/a/path"])
    assert excinfo.value.code == 2


def test_unparsable_file_reports_syntax_error_finding(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    assert main(["--format=json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "syntax-error"


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    assert "unseeded-random" in output
    assert "broad-except (suppression requires a reason)" in output
