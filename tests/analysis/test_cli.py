"""repro-lint CLI behaviour: exit codes, formats, selection."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.cli import main

BAD_SNIPPET = textwrap.dedent(
    """
    def collect(into=[]):
        return into
    """
)

CLEAN_SNIPPET = textwrap.dedent(
    """
    def collect(into=None):
        return into if into is not None else []
    """
)


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
    assert main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_findings_exit_one_with_human_lines(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SNIPPET)
    assert main([str(target)]) == 1
    captured = capsys.readouterr()
    assert "[mutable-default]" in captured.out
    assert str(target) in captured.out
    assert "1 finding(s)" in captured.err


def test_json_format_is_machine_readable(tmp_path, capsys):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SNIPPET)
    assert main(["--format=json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "mutable-default"
    assert payload[0]["path"] == str(target)
    assert payload[0]["line"] == 2


def test_select_and_ignore_scope_the_run(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text(BAD_SNIPPET)
    assert main(["--select=broad-except", str(target)]) == 0
    assert main(["--ignore=mutable-default", str(target)]) == 0
    assert main(["--select=mutable-default", str(target)]) == 1


def test_unknown_rule_id_is_usage_error(tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
    with pytest.raises(SystemExit) as excinfo:
        main(["--select=no-such-rule", str(tmp_path)])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["definitely/not/a/path"])
    assert excinfo.value.code == 2


def test_unparsable_file_reports_syntax_error_finding(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    assert main(["--format=json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "syntax-error"


def test_list_rules_prints_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    assert "unseeded-random" in output
    assert "broad-except (suppression requires a reason)" in output
    assert "cross-module rules (--project):" in output
    assert "fork-safety" in output


RACY_SNIPPET = textwrap.dedent(
    """
    def _work(job):
        return job


    def dispatch(pool, jobs):
        pool.map_async(_work, jobs)
        jobs.append("sentinel")
    """
)


class TestProjectMode:
    def test_project_finding_exits_one(self, tmp_path, capsys):
        (tmp_path / "driver.py").write_text(RACY_SNIPPET)
        assert main(["--project", str(tmp_path)]) == 1
        assert "[fork-safety]" in capsys.readouterr().out

    def test_project_clean_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert main(["--project", str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_select_accepts_project_rule_ids(self, tmp_path):
        (tmp_path / "driver.py").write_text(RACY_SNIPPET)
        assert main(["--project", "--select=fork-safety", str(tmp_path)]) == 1
        assert main(["--project", "--select=metrics-drift",
                     str(tmp_path)]) == 0
        assert main(["--project", "--ignore=fork-safety", str(tmp_path)]) == 0

    def test_project_unknown_rule_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        with pytest.raises(SystemExit) as excinfo:
            main(["--project", "--select=no-such-rule", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_doc_flag_feeds_cli_doc_drift(self, tmp_path, capsys):
        (tmp_path / "cli.py").write_text(textwrap.dedent(
            """
            import argparse

            def build():
                parser = argparse.ArgumentParser()
                parser.add_argument("--mystery-flag")
                return parser
            """
        ))
        doc = tmp_path / "MANUAL.md"
        doc.write_text("No flags documented here.\n")
        assert main(["--project", "--select=cli-doc-drift",
                     "--doc", str(doc), str(tmp_path)]) == 1
        assert "--mystery-flag" in capsys.readouterr().out

    def test_missing_doc_file_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        with pytest.raises(SystemExit) as excinfo:
            main(["--project", "--doc", str(tmp_path / "nope.md"),
                  str(tmp_path)])
        assert excinfo.value.code == 2


class TestBaseline:
    def test_baseline_round_trip_suppresses(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        assert main(["--format=json", str(target)]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        assert main(["--baseline", str(baseline), str(target)]) == 0
        assert capsys.readouterr().out == ""

    def test_baseline_survives_line_shifts(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        assert main(["--format=json", str(target)]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        target.write_text("# a new comment shifts everything down\n"
                          + BAD_SNIPPET)
        assert main(["--baseline", str(baseline), str(target)]) == 0

    def test_new_findings_still_reported(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD_SNIPPET)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]")
        assert main(["--baseline", str(baseline), str(target)]) == 1
        assert "[mutable-default]" in capsys.readouterr().out

    def test_baseline_applies_to_project_findings(self, tmp_path, capsys):
        (tmp_path / "driver.py").write_text(RACY_SNIPPET)
        assert main(["--project", "--format=json", str(tmp_path)]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        assert main(["--project", "--baseline", str(baseline),
                     str(tmp_path)]) == 0

    def test_unreadable_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        with pytest.raises(SystemExit) as excinfo:
            main(["--baseline", str(tmp_path / "missing.json"),
                  str(tmp_path)])
        assert excinfo.value.code == 2

    def test_non_array_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"not": "an array"}')
        with pytest.raises(SystemExit) as excinfo:
            main(["--baseline", str(baseline), str(tmp_path)])
        assert excinfo.value.code == 2


LEAKY_FLOW_SNIPPET = textwrap.dedent(
    """
    from multiprocessing.shared_memory import SharedMemory


    def build(size, queue):
        seg = SharedMemory(create=True, size=size)
        queue.put(size)
        seg.close()
        seg.unlink()
    """
)

HELPER_LEAK_TREE = {
    "segments.py": textwrap.dedent(
        """
        from multiprocessing.shared_memory import SharedMemory


        def make_segment(size):
            return SharedMemory(name="seg", create=True, size=size)
        """
    ),
    "driver.py": textwrap.dedent(
        """
        from segments import make_segment


        def publish(size, queue):
            segment = make_segment(size)
            queue.put(size)
            segment.close()
            segment.unlink()
        """
    ),
}


def write_tree(tmp_path, files):
    for name, source in files.items():
        (tmp_path / name).write_text(source, encoding="utf-8")


class TestInterMode:
    def test_inter_requires_flow(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        with pytest.raises(SystemExit) as excinfo:
            main(["--inter", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_inter_reports_cross_function_leak(self, tmp_path, capsys):
        write_tree(tmp_path, HELPER_LEAK_TREE)
        assert main(["--flow", "--inter", "--format=json", str(tmp_path)]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in findings] == ["inter-resource-leak"]

    def test_flow_alone_misses_the_cross_function_leak(self, tmp_path, capsys):
        write_tree(tmp_path, HELPER_LEAK_TREE)
        assert main(["--flow", "--format=json", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_inter_rule_ids_are_selectable(self, tmp_path, capsys):
        write_tree(tmp_path, HELPER_LEAK_TREE)
        code = main([
            "--flow", "--inter", "--select", "inter-wal-order",
            "--format=json", str(tmp_path),
        ])
        assert code == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_timings_table_goes_to_stderr(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert main(["--flow", "--inter", "--timings", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "repro-lint timings:" in err
        assert "inter:summaries" in err
        assert "inter:total" in err

    def test_generous_budget_passes(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert main(["--flow", "--inter", "--budget", "600",
                     str(tmp_path)]) == 0

    def test_blown_budget_fails_even_when_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert main(["--flow", "--inter", "--budget", "0",
                     str(tmp_path)]) == 1
        assert "budget" in capsys.readouterr().err


class TestSarif:
    def test_sarif_output_shape(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_SNIPPET)
        assert main(["--format=sarif", str(tmp_path)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "mutable-default" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "mutable-default"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_clean_tree_emits_empty_sarif_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN_SNIPPET)
        assert main(["--format=sarif", str(tmp_path)]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []

    def test_sarif_covers_flow_and_inter_findings(self, tmp_path, capsys):
        write_tree(tmp_path, HELPER_LEAK_TREE)
        assert main(["--flow", "--inter", "--format=sarif",
                     str(tmp_path)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert [r["ruleId"] for r in log["runs"][0]["results"]] == [
            "inter-resource-leak"
        ]


class TestFlowBaseline:
    def test_baseline_covers_flow_findings(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(LEAKY_FLOW_SNIPPET)
        assert main(["--flow", "--format=json", str(target)]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        assert main(["--flow", "--baseline", str(baseline),
                     str(target)]) == 0

    def test_flow_baseline_survives_witness_line_drift(
        self, tmp_path, capsys
    ):
        # Unrelated edits shift the path witness's line numbers inside
        # the message; normalization must keep the finding suppressed.
        target = tmp_path / "bad.py"
        target.write_text(LEAKY_FLOW_SNIPPET)
        assert main(["--flow", "--format=json", str(target)]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        target.write_text(
            "# a banner comment\n# shifts every line\n" + LEAKY_FLOW_SNIPPET
        )
        assert main(["--flow", "--baseline", str(baseline),
                     str(target)]) == 0

    def test_baseline_covers_inter_findings(self, tmp_path, capsys):
        write_tree(tmp_path, HELPER_LEAK_TREE)
        assert main(["--flow", "--inter", "--format=json",
                     str(tmp_path)]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        assert main(["--flow", "--inter", "--baseline", str(baseline),
                     str(tmp_path)]) == 0
