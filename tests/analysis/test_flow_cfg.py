"""CFG builder unit tests: the edges the typestate rules live on.

Each test parses a small function, builds its CFG, and asserts the
*shape* — exception edges with mid-block origins, ``with`` unwinding on
both the normal and exceptional exits, loop back edges, ``finally``
duplication for the return continuation — plus the worklist engine's
reaching-definitions client.
"""

from __future__ import annotations

import ast
import textwrap
from typing import List

from repro.analysis.flow import (
    CFG,
    WithExit,
    build_cfg,
    entry_line,
    reach_without,
    reaching_definitions,
)


def cfg_of(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def edge_kinds(cfg: CFG) -> List[str]:
    return [edge.kind for edge in cfg.edges]


def blocks_with_exit_names(cfg: CFG, name: str) -> List[int]:
    found = []
    for block in cfg.blocks:
        for entry in block.entries:
            if isinstance(entry, WithExit) and name in entry.names:
                found.append(block.index)
    return found


# -- exception edges --------------------------------------------------------


def test_raising_call_gets_except_edge_to_raise_exit():
    cfg = cfg_of(
        """
        def f(x):
            y = g(x)
            return y
        """
    )
    excepts = [e for e in cfg.edges if e.kind == "except"]
    assert [e.dst for e in excepts] == [cfg.raise_exit]
    # the edge originates at the call's index inside its block
    assert excepts[0].origin is not None


def test_plain_assignment_has_no_except_edge():
    cfg = cfg_of(
        """
        def f(x):
            y = x
            return y
        """
    )
    # only the Return's implicit path; a bare name copy cannot raise
    assert all(e.kind != "except" for e in cfg.edges if e.origin is not None)


def test_mid_block_origins_are_ordered():
    cfg = cfg_of(
        """
        def f(x):
            a = g(x)
            b = h(a)
            c = i(b)
            return c
        """
    )
    origins = sorted(
        e.origin for e in cfg.edges if e.kind == "except" and e.origin is not None
    )
    assert origins == [0, 1, 2]


def test_try_routes_except_edges_to_handler_dispatch():
    cfg = cfg_of(
        """
        def f(x):
            try:
                y = g(x)
            except ValueError:
                y = 0
            return y
        """
    )
    dispatch = cfg.blocks_labeled("except-dispatch")
    assert len(dispatch) == 1
    handler = cfg.blocks_labeled("except-ValueError")
    assert len(handler) == 1
    # body raise -> dispatch -> handler, and dispatch also escapes to
    # raise_exit because ValueError is not exhaustive
    dispatch_succs = {e.dst for e in cfg.succs(dispatch[0].index)}
    assert handler[0].index in dispatch_succs
    assert cfg.raise_exit in dispatch_succs


def test_bare_except_seals_propagation():
    cfg = cfg_of(
        """
        def f(x):
            try:
                y = g(x)
            except:
                y = 0
            return y
        """
    )
    dispatch = cfg.blocks_labeled("except-dispatch")[0]
    assert cfg.raise_exit not in {e.dst for e in cfg.succs(dispatch.index)}


def test_except_exception_does_not_seal_propagation():
    cfg = cfg_of(
        """
        def f(x):
            try:
                y = g(x)
            except Exception:
                y = 0
            return y
        """
    )
    dispatch = cfg.blocks_labeled("except-dispatch")[0]
    assert cfg.raise_exit in {e.dst for e in cfg.succs(dispatch.index)}


def test_handler_body_raise_escapes_to_raise_exit():
    cfg = cfg_of(
        """
        def f(x):
            try:
                y = g(x)
            except ValueError:
                cleanup(x)
            return y
        """
    )
    handler = cfg.blocks_labeled("except-ValueError")[0]
    excepts = [e for e in cfg.succs(handler.index) if e.kind == "except"]
    assert [e.dst for e in excepts] == [cfg.raise_exit]


# -- with unwinding ---------------------------------------------------------


def test_with_releases_on_both_exits():
    cfg = cfg_of(
        """
        def f(path):
            with open(path) as fh:
                process(fh)
            return 1
        """
    )
    release_blocks = blocks_with_exit_names(cfg, "fh")
    # one WithExit on the normal exit, one on the unwind path
    assert len(release_blocks) == 2
    labels = {cfg.blocks[i].label for i in release_blocks}
    assert labels == {"with-exit", "with-unwind"}
    unwind = next(i for i in release_blocks if cfg.blocks[i].label == "with-unwind")
    assert {e.dst for e in cfg.succs(unwind)} == {cfg.raise_exit}


def test_with_bare_name_context_releases_that_name():
    cfg = cfg_of(
        """
        def f(handle):
            with handle:
                process(handle)
            return 1
        """
    )
    assert len(blocks_with_exit_names(cfg, "handle")) == 2


def test_return_inside_with_unwinds_first():
    cfg = cfg_of(
        """
        def f(path):
            with open(path) as fh:
                return read(fh)
        """
    )
    # the return jump routes through a WithExit copy before cfg.exit
    return_edges = [e for e in cfg.edges if e.kind == "return"]
    assert return_edges
    into_exit = [e for e in return_edges if e.dst == cfg.exit]
    assert into_exit
    for edge in into_exit:
        block = cfg.blocks[edge.src]
        assert any(isinstance(entry, WithExit) for entry in block.entries)


# -- loops ------------------------------------------------------------------


def test_while_loop_has_back_edge():
    cfg = cfg_of(
        """
        def f(n):
            while n > 0:
                n -= 1
            return n
        """
    )
    back = [e for e in cfg.edges if e.kind == "back"]
    assert len(back) == 1
    head = cfg.blocks_labeled("while-head")[0]
    assert back[0].dst == head.index


def test_for_loop_has_back_edge_and_exit_edge():
    cfg = cfg_of(
        """
        def f(items):
            total = 0
            for item in items:
                total += item
            return total
        """
    )
    kinds = edge_kinds(cfg)
    assert "back" in kinds
    head = cfg.blocks_labeled("for-head")[0]
    succ_kinds = {e.kind for e in cfg.succs(head.index)}
    assert {"true", "false"} <= succ_kinds


def test_while_true_has_no_false_edge():
    cfg = cfg_of(
        """
        def f(q):
            while True:
                item = q.get()
                if item is None:
                    break
            return 1
        """
    )
    head = cfg.blocks_labeled("while-head")[0]
    assert all(e.kind != "false" for e in cfg.succs(head.index))
    assert any(e.kind == "break" for e in cfg.edges)


def test_continue_targets_loop_head():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                if item is None:
                    continue
                use(item)
            return 1
        """
    )
    head = cfg.blocks_labeled("for-head")[0]
    continues = [e for e in cfg.edges if e.kind == "continue"]
    assert continues and all(e.dst == head.index for e in continues)


# -- finally duplication ----------------------------------------------------


def test_finally_duplicated_for_return_and_exception():
    cfg = cfg_of(
        """
        def f(x):
            try:
                return g(x)
            finally:
                cleanup(x)
        """
    )
    labels = [b.label for b in cfg.blocks if b.label.startswith("finally")]
    # one copy on the return continuation, one on the exception path
    assert len(labels) >= 2
    exc_copies = cfg.blocks_labeled("finally-exc")
    assert exc_copies
    for copy in exc_copies:
        kinds = {(e.kind, e.dst) for e in cfg.succs(copy.index)}
        assert ("except", cfg.raise_exit) in kinds


def test_finally_runs_on_fallthrough():
    cfg = cfg_of(
        """
        def f(x):
            try:
                g(x)
            finally:
                cleanup(x)
            return 1
        """
    )
    normal = cfg.blocks_labeled("finally")
    assert len(normal) == 1
    lines = [entry_line(e) for e in normal[0].entries]
    # the cleanup runs first on the fallthrough continuation (the
    # return after the try lands in the same block)
    assert lines[0] == 6


def test_break_through_finally_copies_cleanup():
    cfg = cfg_of(
        """
        def f(items):
            for item in items:
                try:
                    if bad(item):
                        break
                finally:
                    log(item)
            return 1
        """
    )
    jump_copies = cfg.blocks_labeled("finally-jump")
    assert jump_copies
    break_edges = [e for e in cfg.edges if e.kind == "break"]
    assert any(e.dst in {b.index for b in jump_copies} for e in break_edges)


# -- reachability sanity ----------------------------------------------------


def test_reach_without_respects_stops_on_all_paths():
    cfg = cfg_of(
        """
        def f(x):
            r = acquire(x)
            try:
                use(r)
            finally:
                r.close()
            return 1
        """
    )

    def stops(entry):
        node = entry if not hasattr(entry, "node") else entry.node
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "close"
            ):
                return True
        return False

    # from right after the acquire, every path to either exit crosses
    # the finally's close
    acquire_block = next(
        b for b in cfg.blocks for e in b.entries if entry_line(e) == 3
    )
    witness = reach_without(
        cfg,
        [(acquire_block.index, 1)],
        stops,
        goal_blocks=frozenset({cfg.exit, cfg.raise_exit}),
    )
    assert witness is None


# -- worklist engine --------------------------------------------------------


def test_reaching_definitions_joins_both_branches():
    cfg = cfg_of(
        """
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
        """
    )
    defs = reaching_definitions(cfg)
    exit_defs = {(name, line) for name, line in defs[cfg.exit]}
    assert ("x", 4) in exit_defs
    assert ("x", 6) in exit_defs
    assert ("flag", 0) in exit_defs  # parameters reach from line 0


def test_reaching_definitions_kill_on_redefinition():
    cfg = cfg_of(
        """
        def f(x):
            x = 1
            x = 2
            return x
        """
    )
    defs = reaching_definitions(cfg)
    x_lines = {line for name, line in defs[cfg.exit] if name == "x"}
    assert x_lines == {4}


def test_reaching_definitions_loop_carries_both_defs():
    cfg = cfg_of(
        """
        def f(items):
            total = 0
            for item in items:
                total = step(total, item)
            return total
        """
    )
    defs = reaching_definitions(cfg)
    total_lines = {line for name, line in defs[cfg.exit] if name == "total"}
    assert total_lines == {3, 5}
