"""Property test: every reported leak witness is a real CFG path.

Hypothesis generates random small functions — nested branches, loops,
try/finally, ``with``, raises, returns — around an acquire site with
optional releases sprinkled in.  For every leak the analysis reports,
the witness must be an actual edge sequence through the constructed
CFG: consecutive edges chain (``dst`` meets ``src``), every edge
belongs to the graph, the path starts at the acquire's block, and it
ends at a function exit.  The generator is biased so both leaky and
clean programs appear; the check is about witness *soundness*, not
about which programs leak.
"""

from __future__ import annotations

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.core import LintModule
from repro.analysis.flow import find_resource_leaks

ACQUIRE = "fh = open(path)"
RELEASE = "fh.close()"
USE = "work(token)"
RAISING = "token = step(token)"


def _indent(lines, by):
    pad = " " * by
    return [pad + line for line in lines]


@st.composite
def function_bodies(draw, depth=0):
    """A list of statement lines forming one function body suffix."""
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(
            st.sampled_from(
                ["use", "raising", "release", "if", "loop", "try", "with", "return"]
                if depth < 2
                else ["use", "raising", "release", "return"]
            )
        )
        if kind == "use":
            lines.append(USE)
        elif kind == "raising":
            lines.append(RAISING)
        elif kind == "release":
            lines.append(RELEASE)
        elif kind == "return":
            lines.append("return token")
            break
        elif kind == "if":
            then = draw(function_bodies(depth=depth + 1))
            lines.append("if token:")
            lines.extend(_indent(then, 4))
            if draw(st.booleans()):
                orelse = draw(function_bodies(depth=depth + 1))
                lines.append("else:")
                lines.extend(_indent(orelse, 4))
        elif kind == "loop":
            body = draw(function_bodies(depth=depth + 1))
            lines.append("while token:")
            lines.extend(_indent(body, 4))
        elif kind == "try":
            body = draw(function_bodies(depth=depth + 1))
            cleanup = draw(st.booleans())
            lines.append("try:")
            lines.extend(_indent(body, 4))
            if cleanup:
                lines.append("finally:")
                lines.extend(_indent([RELEASE], 4))
            else:
                lines.append("except ValueError:")
                lines.extend(_indent([USE], 4))
        elif kind == "with":
            body = draw(function_bodies(depth=depth + 1))
            lines.append("with lock:")
            lines.extend(_indent(body, 4))
    return lines


@st.composite
def programs(draw):
    body = draw(function_bodies())
    lines = ["def f(path, token):", "    " + ACQUIRE]
    lines.extend(_indent(body, 4))
    return "\n".join(lines) + "\n"


@given(programs())
@settings(max_examples=200, deadline=None)
def test_every_reported_leak_path_is_a_real_cfg_path(source):
    module = LintModule(source, path="gen.py", module="gen")
    for leak in find_resource_leaks(module):
        cfg = leak.cfg
        witness = leak.witness
        edge_set = set(cfg.edges)
        # every edge is a real edge of the constructed CFG
        for edge in witness.edges:
            assert edge in edge_set
        # consecutive edges chain
        for prev, nxt in zip(witness.edges, witness.edges[1:]):
            assert prev.dst == nxt.src
        # the path starts at the acquire's block
        start_block, start_pos = witness.start
        if witness.edges:
            assert witness.edges[0].src == start_block
        block = cfg.blocks[start_block]
        assert 0 <= start_pos <= len(block.entries)
        acquire_entry = block.entries[start_pos - 1]
        assert "open" in ast.dump(
            acquire_entry if isinstance(acquire_entry, ast.AST) else acquire_entry.node
        )
        # and ends at a function exit
        assert witness.end_kind in ("exit", "raise-exit")
        assert witness.blocks[-1] in (cfg.exit, cfg.raise_exit)


def test_known_leaky_program_reports_with_chained_witness():
    source = textwrap.dedent(
        """
        def f(path, token):
            fh = open(path)
            if token:
                return token
            fh.close()
            return token
        """
    )
    leaks = find_resource_leaks(LintModule(source, path="k.py", module="k"))
    assert leaks
    witness = leaks[0].witness
    assert witness.edges
    for prev, nxt in zip(witness.edges, witness.edges[1:]):
        assert prev.dst == nxt.src
    assert witness.blocks[-1] == leaks[0].cfg.exit
