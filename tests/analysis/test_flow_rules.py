"""Good/bad fixture pairs for every path-sensitive rule.

The load-bearing case is the exception-edge-only leak: the syntactic
`shm-lifecycle` rule is provably blind to it (create and unlink both
present in the module), while `resource-leak` sees the `except` edge
between them.
"""

from __future__ import annotations

import textwrap
from typing import List, Optional

from repro.analysis.core import Finding, LintModule, active_rules, lint_source
from repro.analysis.flow import (
    active_flow_rules,
    analyze_flow,
    collect_specs,
    flow_findings_for_module,
)


def run_flow(
    source: str,
    module: str = "repro.simnet.snippet",
    rule_id: Optional[str] = None,
    path: str = "snippet.py",
) -> List[Finding]:
    mod = LintModule(textwrap.dedent(source), path=path, module=module)
    rules = active_flow_rules(select=[rule_id]) if rule_id else None
    specs, spec_findings = collect_specs([mod])
    findings = list(spec_findings)
    findings.extend(flow_findings_for_module(mod, specs, rules))
    if rule_id:
        findings = [f for f in findings if f.rule_id == rule_id]
    return findings


def ids(findings: List[Finding]) -> List[str]:
    return [finding.rule_id for finding in findings]


# -- resource-leak ----------------------------------------------------------

EXCEPTION_EDGE_LEAK = """
    from multiprocessing.shared_memory import SharedMemory

    def publish(size, queue):
        segment = SharedMemory(name="seg", create=True, size=size)
        queue.put(segment.name)
        segment.close()
        segment.unlink()
    """


def test_resource_leak_fires_on_exception_edge_only_leak():
    findings = run_flow(EXCEPTION_EDGE_LEAK, rule_id="resource-leak")
    assert ids(findings) == ["resource-leak"]
    assert "exception" in findings[0].message


def test_syntactic_shm_rule_provably_cannot_catch_exception_edge_leak():
    # Same fixture through the old AST rule: create and unlink are both
    # present, so the per-module census is satisfied and it stays
    # silent — the case that motivated the flow pass.
    findings = lint_source(
        textwrap.dedent(EXCEPTION_EDGE_LEAK),
        path="snippet.py",
        module="repro.simnet.snippet",
        rules=active_rules(select=["shm-lifecycle"]),
    )
    assert findings == []


def test_resource_leak_quiet_with_try_finally():
    findings = run_flow(
        """
        from multiprocessing.shared_memory import SharedMemory

        def publish(size, queue):
            segment = SharedMemory(name="seg", create=True, size=size)
            try:
                queue.put(segment.name)
            finally:
                segment.close()
                segment.unlink()
        """,
        rule_id="resource-leak",
    )
    assert findings == []


def test_resource_leak_fires_on_early_return_path():
    findings = run_flow(
        """
        def load(path, flag):
            fh = open(path)
            if flag:
                return None
            data = fh.read()
            fh.close()
            return data
        """,
        rule_id="resource-leak",
    )
    assert ids(findings) == ["resource-leak"]


def test_resource_leak_quiet_when_with_manages_the_handle():
    findings = run_flow(
        """
        def load(path):
            with open(path) as fh:
                return fh.read()
        """,
        rule_id="resource-leak",
    )
    assert findings == []


def test_resource_leak_quiet_when_resource_escapes():
    # returned/stored resources transfer ownership: not ours to track
    findings = run_flow(
        """
        def acquire(path):
            fh = open(path)
            return fh
        """,
        rule_id="resource-leak",
    )
    assert findings == []


def test_resource_leak_tracks_init_attribute_on_exception_path():
    findings = run_flow(
        """
        class Handle:
            def __init__(self, path):
                self._file = open(path, "wb")
                self._file.write(header())
        """,
        rule_id="resource-leak",
    )
    assert ids(findings) == ["resource-leak"]
    assert "__init__" in findings[0].message


def test_resource_leak_quiet_when_init_guards_with_cleanup():
    findings = run_flow(
        """
        class Handle:
            def __init__(self, path):
                self._file = open(path, "wb")
                try:
                    self._file.write(header())
                except BaseException:
                    self._file.close()
                    raise
        """,
        rule_id="resource-leak",
    )
    assert findings == []


def test_resource_leak_honours_release_funcs_from_spec():
    findings = run_flow(
        """
        FLOW_SPECS = (
            {
                "rule": "resource-leak",
                "resource": "segment",
                "acquire": ("_create_segment",),
                "release_funcs": ("_release_segment",),
                "tuple_result": True,
            },
        )

        def bad(size):
            seg, leaked = _create_segment("t", size)
            seg.buf[:4] = payload()

        def good(size):
            seg, leaked = _create_segment("t", size)
            try:
                seg.buf[:4] = payload()
            finally:
                _release_segment(seg, True)
        """,
        rule_id="resource-leak",
    )
    assert len(findings) == 1
    assert "bad" in findings[0].message


# -- wal-order --------------------------------------------------------------

WAL_ORDER_SPEC = """
        FLOW_SPECS = (
            {
                "rule": "wal-order",
                "functions": ("feed",),
                "append": ("_wal_append",),
            },
        )
        """


def test_wal_order_fires_on_mutation_before_append():
    findings = run_flow(
        WAL_ORDER_SPEC
        + """
        class Daemon:
            def feed(self, event):
                self.events_consumed += 1
                self._wal_append(event)
        """,
        rule_id="wal-order",
    )
    assert ids(findings) == ["wal-order"]
    assert "events_consumed" in findings[0].message


def test_wal_order_fires_on_branch_skipping_append():
    findings = run_flow(
        WAL_ORDER_SPEC
        + """
        class Daemon:
            def feed(self, event):
                if event.urgent:
                    self._pending.append(event)
                    return
                self._wal_append(event)
                self._pending.append(event)
        """,
        rule_id="wal-order",
    )
    assert len(findings) == 1
    assert "_pending" in findings[0].message


def test_wal_order_quiet_when_append_dominates():
    findings = run_flow(
        WAL_ORDER_SPEC
        + """
        class Daemon:
            def feed(self, event):
                self._wal_append(event)
                self.events_consumed += 1
                self._pending.append(event)
        """,
        rule_id="wal-order",
    )
    assert findings == []


def test_wal_order_ignores_functions_outside_spec():
    findings = run_flow(
        WAL_ORDER_SPEC
        + """
        class Daemon:
            def replay(self, event):
                self.events_consumed += 1
        """,
        rule_id="wal-order",
    )
    assert findings == []


# -- stale-epoch-read -------------------------------------------------------

GUARD_SPEC = """
        FLOW_SPECS = (
            {
                "rule": "stale-epoch-read",
                "reads": ("dispatch",),
                "guards": ("is_stale", "_ensure_group"),
                "invalidators": ("apply_delta",),
            },
        )
        """


def test_stale_epoch_read_fires_on_unguarded_dispatch():
    findings = run_flow(
        GUARD_SPEC
        + """
        class Shard:
            def run(self, batches):
                return self.group.dispatch(batches)
        """,
        rule_id="stale-epoch-read",
    )
    assert ids(findings) == ["stale-epoch-read"]


def test_stale_epoch_read_fires_after_republish_point():
    findings = run_flow(
        GUARD_SPEC
        + """
        class Shard:
            def run(self, table, delta, batches):
                group = self._ensure_group(table)
                table.apply_delta(delta)
                return group.dispatch(batches)
        """,
        rule_id="stale-epoch-read",
    )
    assert len(findings) == 1


def test_stale_epoch_read_quiet_when_guard_dominates():
    findings = run_flow(
        GUARD_SPEC
        + """
        class Shard:
            def run(self, table, batches):
                group = self._ensure_group(table)
                return group.dispatch(batches)
        """,
        rule_id="stale-epoch-read",
    )
    assert findings == []


def test_stale_epoch_read_guard_in_branch_test_counts():
    findings = run_flow(
        GUARD_SPEC
        + """
        class Shard:
            def run(self, table, batches):
                if self.group.is_stale(table):
                    self.rebuild(table)
                return self.group.dispatch(batches)
        """,
        rule_id="stale-epoch-read",
    )
    assert findings == []


# -- unchecked-truncation ---------------------------------------------------


def test_unchecked_truncation_fires_on_swallowed_tally():
    findings = run_flow(
        """
        def parse(lines):
            report = ParseReport()
            out = []
            for line in lines:
                try:
                    out.append(decode(line))
                except ValueError:
                    report.skipped += 1
            return out
        """,
        module="repro.weblog.snippet",
        rule_id="unchecked-truncation",
    )
    assert ids(findings) == ["unchecked-truncation"]
    assert "skipped" in findings[0].message


def test_unchecked_truncation_quiet_when_report_returned():
    findings = run_flow(
        """
        def parse(lines):
            report = ParseReport()
            out = []
            for line in lines:
                try:
                    out.append(decode(line))
                except ValueError:
                    report.skipped += 1
            return out, report
        """,
        module="repro.weblog.snippet",
        rule_id="unchecked-truncation",
    )
    assert findings == []


def test_unchecked_truncation_quiet_when_report_is_parameter_alias():
    # the repo's parsers take an optional caller-held report: the caller
    # already owns the sink, so the tally is never droppable
    findings = run_flow(
        """
        def parse(lines, report=None):
            report = report if report is not None else ParseReport()
            out = []
            for line in lines:
                try:
                    out.append(decode(line))
                except ValueError:
                    report.skipped += 1
            return out
        """,
        module="repro.weblog.snippet",
        rule_id="unchecked-truncation",
    )
    assert findings == []


def test_unchecked_truncation_scoped_to_parser_packages():
    findings = run_flow(
        """
        def parse(lines):
            report = ParseReport()
            for line in lines:
                try:
                    decode(line)
                except ValueError:
                    report.skipped += 1
            return None
        """,
        module="repro.engine.snippet",
        rule_id="unchecked-truncation",
    )
    assert findings == []


# -- spec plumbing ----------------------------------------------------------


def test_malformed_spec_is_a_finding():
    findings = run_flow(
        """
        FLOW_SPECS = (
            {"rule": "resource-leak", "acquire": ("open",)},
        )
        """,
    )
    assert ids(findings) == ["flow-spec"]
    assert "resource" in findings[0].message


def test_non_literal_spec_is_a_finding():
    findings = run_flow(
        """
        NAME = "open"
        FLOW_SPECS = ({"rule": "resource-leak", "resource": "fh", "acquire": (NAME,)},)
        """,
    )
    assert ids(findings) == ["flow-spec"]


def test_unknown_spec_rule_is_a_finding():
    findings = run_flow(
        """
        FLOW_SPECS = ({"rule": "no-such-rule"},)
        """,
    )
    assert ids(findings) == ["flow-spec"]


def test_spec_scopes_to_declaring_module_by_default():
    spec_module = LintModule(
        textwrap.dedent(
            """
            FLOW_SPECS = (
                {
                    "rule": "resource-leak",
                    "resource": "widget",
                    "acquire": ("make_widget",),
                    "release_methods": ("destroy",),
                },
            )
            """
        ),
        path="a.py",
        module="repro.pkg_a.specs",
    )
    other = LintModule(
        textwrap.dedent(
            """
            def use():
                w = make_widget()
                w.frob()
            """
        ),
        path="b.py",
        module="repro.pkg_b.user",
    )
    findings = analyze_flow([spec_module, other])
    assert findings == []  # spec does not reach repro.pkg_b


def test_spec_modules_key_extends_scope():
    spec_module = LintModule(
        textwrap.dedent(
            """
            FLOW_SPECS = (
                {
                    "rule": "resource-leak",
                    "resource": "widget",
                    "acquire": ("make_widget",),
                    "release_methods": ("destroy",),
                    "modules": ("repro.pkg_b",),
                },
            )
            """
        ),
        path="a.py",
        module="repro.pkg_a.specs",
    )
    other = LintModule(
        textwrap.dedent(
            """
            def use():
                w = make_widget()
                w.frob()
            """
        ),
        path="b.py",
        module="repro.pkg_b.user",
    )
    findings = analyze_flow([spec_module, other])
    assert ids(findings) == ["resource-leak"]
    assert findings[0].path == "b.py"


# -- suppressions across passes ---------------------------------------------


def test_flow_finding_suppressed_by_lint_ignore_comment():
    findings = run_flow(
        """
        def load(path, flag):
            fh = open(path)  # lint: ignore[resource-leak] -- short probe
            if flag:
                return None
            data = fh.read()
            fh.close()
            return data
        """,
        rule_id="resource-leak",
    )
    assert findings == []


def test_flow_suppression_is_rule_specific():
    findings = run_flow(
        """
        def load(path, flag):
            fh = open(path)  # lint: ignore[some-other-rule]
            if flag:
                return None
            data = fh.read()
            fh.close()
            return data
        """,
        rule_id="resource-leak",
    )
    assert ids(findings) == ["resource-leak"]


def test_project_findings_honour_suppressions():
    # --project rules share the same suppression channel (the satellite
    # this PR closes): the identical stale export with an ignore
    # comment on its line stays out of the report
    from repro.analysis.xmodule import PROJECT_RULES, Project, analyze_project

    def project_with(class_line: str) -> Project:
        module = LintModule(
            textwrap.dedent(
                f"""
                __all__ = []

                {class_line}
                    pass
                """
            ),
            path="src/repro/errors.py",
            module="repro.errors",
        )
        return Project({"repro.errors": module})

    rule = [PROJECT_RULES["error-taxonomy-reachability"]]
    loud = analyze_project(project_with("class RealError(Exception):"), rule)
    assert any("RealError" in f.message for f in loud)
    quiet = analyze_project(
        project_with(
            "class RealError(Exception):"
            "  # lint: ignore[error-taxonomy-reachability]"
        ),
        rule,
    )
    assert all("RealError" not in f.message for f in quiet)
