"""Good/bad fixture pairs for the interprocedural (``--inter``) rules.

Every bad fixture here is *interprocedural-only*: the defect is split
across a caller and a helper so the intraprocedural ``--flow`` pass is
provably blind to it (asserted alongside each family), while the
summary-based pass sees through the call.
"""

from __future__ import annotations

import textwrap
from typing import List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, LintModule
from repro.analysis.flow import analyze_flow, collect_specs
from repro.analysis.inter import (
    active_inter_rules,
    analyze_inter,
    build_inter_context,
    compute_summaries,
    dep_fingerprint,
)


def make_modules(
    *sources: Tuple[str, str],
) -> List[LintModule]:
    return [
        LintModule(
            textwrap.dedent(source),
            path=f"{module.rsplit('.', 1)[-1]}.py",
            module=module,
        )
        for module, source in sources
    ]


def run_inter(
    *sources: Tuple[str, str], rule_id: Optional[str] = None
) -> List[Finding]:
    modules = make_modules(*sources)
    rules = active_inter_rules(select=[rule_id]) if rule_id else None
    return analyze_inter(modules, rules)


def run_intra(*sources: Tuple[str, str]) -> List[Finding]:
    return analyze_flow(make_modules(*sources))


def ids(findings: Sequence[Finding]) -> List[str]:
    return [finding.rule_id for finding in findings]


# -- inter-resource-leak -----------------------------------------------------

HELPER_ACQUIRE_LEAK = """
    from multiprocessing.shared_memory import SharedMemory

    def make_segment(size):
        return SharedMemory(name="seg", create=True, size=size)

    def teardown(segment):
        segment.close()
        segment.unlink()

    def publish(size, queue, payload):
        segment = make_segment(size)
        queue.put(len(payload))
        teardown(segment)
    """


def test_inter_resource_leak_sees_through_helper_acquire_and_release():
    # The acquire is hidden in make_segment() and the release in
    # teardown(); queue.put() between them can raise, leaking the
    # segment on the exception edge.
    findings = run_inter(
        ("repro.simnet.snippet", HELPER_ACQUIRE_LEAK),
        rule_id="inter-resource-leak",
    )
    assert ids(findings) == ["inter-resource-leak"]
    assert "segment" in findings[0].message
    assert "publish" in findings[0].message


def test_intraprocedural_pass_misses_the_helper_hidden_leak():
    # The old --flow pass never sees an acquire: make_segment() is not a
    # SharedMemory(...) call, and teardown(segment) reads as an escape.
    assert run_intra(("repro.simnet.snippet", HELPER_ACQUIRE_LEAK)) == []


def test_inter_resource_leak_quiet_with_try_finally_helper_release():
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            from multiprocessing.shared_memory import SharedMemory

            def make_segment(size):
                return SharedMemory(name="seg", create=True, size=size)

            def teardown(segment):
                segment.close()
                segment.unlink()

            def publish(size, queue, payload):
                segment = make_segment(size)
                try:
                    queue.put(len(payload))
                finally:
                    teardown(segment)
            """,
        ),
        rule_id="inter-resource-leak",
    )
    assert findings == []


def test_inter_resource_leak_flags_helper_that_raises_before_release():
    # The helper does release — but only after a call that can raise, so
    # the caller's finally is not enough on the helper's exception edge.
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            from multiprocessing.shared_memory import SharedMemory

            def flush_and_close(segment, sink):
                sink.write(segment.name)
                segment.close()
                segment.unlink()

            def publish(size, sink):
                segment = SharedMemory(name="seg", create=True, size=size)
                flush_and_close(segment, sink)
            """,
        ),
        rule_id="inter-resource-leak",
    )
    assert ids(findings) == ["inter-resource-leak"]


def test_inter_resource_leak_respects_ownership_transfer_clause():
    # FLOW_SPECS "transfers" marks hand-off points: the registry now
    # owns the segment, so the caller is clean without a release.
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            FLOW_SPECS = (
                {
                    "rule": "resource-leak",
                    "resource": "tracked segment",
                    "acquire": ("SharedMemory",),
                    "require_kwarg": "create",
                    "release_methods": ("close",),
                    "transfers": ("adopt_segment",),
                },
            )

            from multiprocessing.shared_memory import SharedMemory

            def publish(size, registry):
                segment = SharedMemory(name="seg", create=True, size=size)
                registry.adopt_segment(segment)
            """,
        ),
        rule_id="inter-resource-leak",
    )
    assert findings == []


def test_inter_resource_leak_crosses_module_boundaries():
    findings = run_inter(
        (
            "repro.simnet.segments",
            """
            from multiprocessing.shared_memory import SharedMemory

            def make_segment(size):
                return SharedMemory(name="seg", create=True, size=size)
            """,
        ),
        (
            "repro.simnet.driver",
            """
            from repro.simnet.segments import make_segment

            def publish(size, queue):
                segment = make_segment(size)
                queue.put(size)
                segment.close()
                segment.unlink()
            """,
        ),
        rule_id="inter-resource-leak",
    )
    assert ids(findings) == ["inter-resource-leak"]
    assert findings[0].path == "driver.py"


# -- inter-wal-order ---------------------------------------------------------

HELPER_MUTATION_BEFORE_APPEND = """
    FLOW_SPECS = (
        {
            "rule": "wal-order",
            "functions": ("feed",),
            "append": ("_wal_append",),
        },
    )

    class Daemon:
        def _index(self, event):
            self._events.append(event)

        def _wal_append(self, event):
            self._wal.write(event)

        def feed(self, event):
            self._index(event)
            self._wal_append(event)
    """


def test_inter_wal_order_flags_helper_hidden_mutation_before_append():
    findings = run_inter(
        ("repro.simnet.snippet", HELPER_MUTATION_BEFORE_APPEND),
        rule_id="inter-wal-order",
    )
    assert ids(findings) == ["inter-wal-order"]
    assert "_index" in findings[0].message
    assert "_events" in findings[0].message


def test_intraprocedural_pass_misses_the_helper_hidden_mutation():
    # The old wal-order rule only sees direct self-attribute writes in
    # feed(); the mutation lives inside _index().
    assert (
        run_intra(("repro.simnet.snippet", HELPER_MUTATION_BEFORE_APPEND))
        == []
    )


def test_inter_wal_order_quiet_when_append_precedes_helper_mutation():
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            FLOW_SPECS = (
                {
                    "rule": "wal-order",
                    "functions": ("feed",),
                    "append": ("_wal_append",),
                },
            )

            class Daemon:
                def _index(self, event):
                    self._events.append(event)

                def _wal_append(self, event):
                    self._wal.write(event)

                def feed(self, event):
                    self._wal_append(event)
                    self._index(event)
            """,
        ),
        rule_id="inter-wal-order",
    )
    assert findings == []


# -- epoch-protocol ----------------------------------------------------------

DISPATCH_AFTER_HELPER_UNLINK = """
    FLOW_SPECS = (
        {
            "rule": "epoch-protocol",
            "unlink": ("shutdown",),
            "dispatch": ("dispatch",),
            "republish": ("republish",),
        },
    )

    class Driver:
        def teardown(self):
            self.group.shutdown()

        def retry(self, batch):
            self.teardown()
            self.group.dispatch(batch)
    """


def test_epoch_protocol_flags_dispatch_after_helper_hidden_unlink():
    findings = run_inter(
        ("repro.simnet.snippet", DISPATCH_AFTER_HELPER_UNLINK),
        rule_id="epoch-protocol",
    )
    assert ids(findings) == ["epoch-protocol"]
    assert "retry" in findings[0].message


def test_intraprocedural_pass_has_no_epoch_protocol_rule():
    assert run_intra(("repro.simnet.snippet", DISPATCH_AFTER_HELPER_UNLINK)) == []


def test_epoch_protocol_flags_double_fold_through_helper():
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            FLOW_SPECS = (
                {
                    "rule": "epoch-protocol",
                    "folds": ("_drain",),
                    "refresh": ("_await_acks",),
                },
            )

            class Group:
                def _drain(self):
                    return self.counters.snapshot()

                def totals(self):
                    return self._drain()

                def dispatch_and_report(self, batch):
                    self.send(batch)
                    self._await_acks(1)
                    first = self._drain()
                    second = self.totals()
                    return first + second
            """,
        ),
        rule_id="epoch-protocol",
    )
    assert ids(findings) == ["epoch-protocol"]
    assert "dispatch_and_report" in findings[0].message


def test_epoch_protocol_flags_unguarded_read_after_helper_invalidation():
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            FLOW_SPECS = (
                {
                    "rule": "epoch-protocol",
                    "reads": ("dispatch",),
                    "guards": ("is_stale",),
                    "invalidators": ("apply_delta",),
                },
            )

            class Driver:
                def patch(self, announce):
                    self.table.apply_delta(announce)

                def ingest(self, announce, batch):
                    if self.group.is_stale(self.table):
                        self.group = self.republish()
                    self.patch(announce)
                    self.group.dispatch(batch)
            """,
        ),
        rule_id="epoch-protocol",
    )
    # The guard runs before the helper-hidden invalidation; the dispatch
    # after patch() needs a fresh guard.
    assert ids(findings) == ["epoch-protocol"]
    assert "ingest" in findings[0].message


GOOD_PROTOCOL = """
    FLOW_SPECS = (
        {
            "rule": "epoch-protocol",
            "reads": ("dispatch",),
            "guards": ("is_stale", "_ensure_group"),
            "invalidators": ("apply_delta",),
            "folds": ("_drain",),
            "refresh": ("_await_acks",),
            "unlink": ("shutdown",),
            "dispatch": ("dispatch",),
            "republish": ("WorkerGroup", "_ensure_group"),
        },
    )

    class WorkerGroup:
        def __init__(self, table):
            self.table = table
            self.generation = table.epoch

        def is_stale(self, table):
            return self.generation != table.epoch

        def _await_acks(self, seq):
            return [conn.recv() for conn in self.conns]

        def _drain(self):
            return self.counters.snapshot()

        def dispatch(self, batch):
            seq = self.send(batch)
            self._await_acks(seq)
            return self._drain()

        def sync(self):
            seq = self.send(None)
            payloads = self._await_acks(seq)
            return payloads, self._drain()

        def shutdown(self):
            for conn in self.conns:
                conn.close()

    class Engine:
        def _ensure_group(self):
            group = self.group
            if group is not None and group.is_stale(self.table):
                group.shutdown()
                group = None
            if group is None:
                group = WorkerGroup(self.table)
                self.group = group
            return group

        def apply(self, announce):
            self.table.apply_delta(announce)

        def dispatch_chunk(self, batch):
            group = self._ensure_group()
            return group.dispatch(batch)
    """


def test_epoch_protocol_quiet_on_the_real_dispatch_ack_republish_shape():
    # Mirrors the ShmWorkerGroup flow: every dispatch re-establishes
    # freshness through _ensure_group (which may tear down and
    # republish), every fold sits behind an ack round, and the teardown
    # helper republishes before any further dispatch.
    findings = run_inter(
        ("repro.simnet.snippet", GOOD_PROTOCOL), rule_id="epoch-protocol"
    )
    assert findings == []


# -- summaries and fingerprints ----------------------------------------------


def _context(*sources: Tuple[str, str]):
    modules = make_modules(*sources)
    specs, _ = collect_specs(modules)
    return modules, build_inter_context(modules, specs)


def test_summaries_record_helper_release_and_ownership_return():
    modules, context = _context(
        ("repro.simnet.snippet", HELPER_ACQUIRE_LEAK)
    )
    teardown = context.summaries["repro.simnet.snippet:teardown"]
    assert teardown.releases_on_return
    maker = context.summaries["repro.simnet.snippet:make_segment"]
    assert maker.returns_owned


def test_dep_fingerprint_tracks_out_of_module_callee_summaries():
    helper_v1 = (
        "repro.simnet.segments",
        """
        def teardown(segment):
            segment.close()
            segment.unlink()
        """,
    )
    helper_v2 = (
        "repro.simnet.segments",
        """
        def teardown(segment):
            segment.flush()
        """,
    )
    caller = (
        "repro.simnet.driver",
        """
        from repro.simnet.segments import teardown

        def publish(segment, queue):
            queue.put(segment.name)
            teardown(segment)
        """,
    )
    modules_v1, context_v1 = _context(helper_v1, caller)
    modules_v2, context_v2 = _context(helper_v2, caller)
    driver_v1 = next(m for m in modules_v1 if m.module.endswith("driver"))
    driver_v2 = next(m for m in modules_v2 if m.module.endswith("driver"))
    assert dep_fingerprint(driver_v1, context_v1) != dep_fingerprint(
        driver_v2, context_v2
    )
    # The helper's own docstring/comment churn keeps the fingerprint.
    helper_v1_commented = (
        helper_v1[0],
        helper_v1[1].replace(
            "def teardown(segment):",
            'def teardown(segment):\n            """Release both handles."""',
        ),
    )
    modules_v3, context_v3 = _context(helper_v1_commented, caller)
    driver_v3 = next(m for m in modules_v3 if m.module.endswith("driver"))
    assert dep_fingerprint(driver_v1, context_v1) == dep_fingerprint(
        driver_v3, context_v3
    )


def test_recursive_helpers_reach_a_fixpoint():
    # Mutually recursive release helpers still converge and the caller
    # is credited with the release.
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            from multiprocessing.shared_memory import SharedMemory

            def release_even(segment, depth):
                if depth > 0:
                    release_odd(segment, depth - 1)
                else:
                    segment.close()
                    segment.unlink()

            def release_odd(segment, depth):
                release_even(segment, depth)

            def publish(size):
                segment = SharedMemory(name="seg", create=True, size=size)
                release_even(segment, 2)
            """,
        ),
        rule_id="inter-resource-leak",
    )
    assert findings == []


def test_unknown_callees_are_havocked_not_trusted():
    # A call the project cannot resolve must not be credited with the
    # release — the leak is still reported.
    findings = run_inter(
        (
            "repro.simnet.snippet",
            """
            from multiprocessing.shared_memory import SharedMemory
            from somewhere.external import mystery_cleanup

            def make_segment(size):
                return SharedMemory(name="seg", create=True, size=size)

            def publish(size):
                segment = make_segment(size)
                mystery_cleanup()
            """,
        ),
        rule_id="inter-resource-leak",
    )
    assert ids(findings) == ["inter-resource-leak"]


def test_compute_summaries_is_deterministic():
    modules = make_modules(("repro.simnet.snippet", GOOD_PROTOCOL))
    specs, _ = collect_specs(modules)
    from repro.analysis.xmodule import Project

    def build():
        project = Project({m.module: m for m in modules})
        resource = [s for s in specs if type(s).__name__ == "ResourceSpec"]
        order = [s for s in specs if type(s).__name__ == "OrderSpec"]
        epoch = [s for s in specs if type(s).__name__ == "EpochSpec"]
        summaries = compute_summaries(project, resource, order, epoch)
        return {key: value.stable_repr() for key, value in summaries.items()}

    assert build() == build()
