"""Property test: summary-based analysis agrees with inlining.

Hypothesis generates small two-function programs — a caller that
acquires a shared-memory segment and a helper the segment is handed to,
with a raising step and a release sprinkled in various positions.  For
each program, the interprocedural verdict on the two-function version
(combined with the intraprocedural pass, which owns the directly
visible cases) must equal the intraprocedural verdict on the manually
*inlined* single-function version.  Summaries are an abstraction of
inlining; this pins down that the abstraction loses no verdicts on the
programs it claims to cover.
"""

from __future__ import annotations

import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.core import LintModule
from repro.analysis.flow import analyze_flow
from repro.analysis.inter import analyze_inter

RELEASE_LINES = ["segment.close()", "segment.unlink()"]
RAISING_LINE = "danger()"


def _helper_body(helper_raises: bool, helper_releases: bool) -> list:
    lines = []
    if helper_raises:
        lines.append(RAISING_LINE)
    if helper_releases:
        lines.extend(RELEASE_LINES)
    if not lines:
        lines.append("pass")
    return lines


def _two_function_program(
    helper_raises: bool,
    helper_releases: bool,
    risky_between: bool,
    caller_shape: str,
) -> str:
    helper = ["def helper(segment):"] + [
        "    " + line for line in _helper_body(helper_raises, helper_releases)
    ]
    caller = [
        "def caller(size):",
        '    segment = SharedMemory(name="seg", create=True, size=size)',
    ]
    if caller_shape == "linear":
        if risky_between:
            caller.append("    " + RAISING_LINE)
        caller.append("    helper(segment)")
    else:  # try/finally
        caller.append("    try:")
        caller.append(
            "        " + (RAISING_LINE if risky_between else "record(size)")
        )
        caller.append("    finally:")
        caller.append("        helper(segment)")
    return "\n".join(
        ["from multiprocessing.shared_memory import SharedMemory", ""]
        + helper
        + [""]
        + caller
        + [""]
    )


def _inlined_program(
    helper_raises: bool,
    helper_releases: bool,
    risky_between: bool,
    caller_shape: str,
) -> str:
    body = _helper_body(helper_raises, helper_releases)
    caller = [
        "def caller(size):",
        '    segment = SharedMemory(name="seg", create=True, size=size)',
    ]
    if caller_shape == "linear":
        if risky_between:
            caller.append("    " + RAISING_LINE)
        caller.extend("    " + line for line in body)
    else:
        caller.append("    try:")
        caller.append(
            "        " + (RAISING_LINE if risky_between else "record(size)")
        )
        caller.append("    finally:")
        caller.extend("        " + line for line in body)
    return "\n".join(
        ["from multiprocessing.shared_memory import SharedMemory", ""]
        + caller
        + [""]
    )


def _leaks(findings) -> bool:
    return any(
        f.rule_id in ("resource-leak", "inter-resource-leak") for f in findings
    )


@given(
    helper_raises=st.booleans(),
    helper_releases=st.booleans(),
    risky_between=st.booleans(),
    caller_shape=st.sampled_from(["linear", "try_finally"]),
)
@settings(max_examples=60, deadline=None)
def test_summary_based_verdict_agrees_with_inlining(
    helper_raises, helper_releases, risky_between, caller_shape
):
    two_fn = _two_function_program(
        helper_raises, helper_releases, risky_between, caller_shape
    )
    inlined = _inlined_program(
        helper_raises, helper_releases, risky_between, caller_shape
    )
    two_fn_module = LintModule(
        textwrap.dedent(two_fn), path="two_fn.py", module="repro.simnet.two_fn"
    )
    inlined_module = LintModule(
        textwrap.dedent(inlined),
        path="inlined.py",
        module="repro.simnet.inlined",
    )
    combined = analyze_flow([two_fn_module]) + analyze_inter([two_fn_module])
    oracle = analyze_flow([inlined_module])
    assert _leaks(combined) == _leaks(oracle), (
        f"summary verdict diverged from inlining:\n{two_fn}\n--- inlined "
        f"---\n{inlined}\ncombined={combined}\noracle={oracle}"
    )
