"""Fixture-snippet suite: every rule fires on a bad snippet and stays
quiet on a good one.

``lint_source(..., module=...)`` opts the snippet into package-scoped
rules (hot-path, parser) without touching real files.
"""

from __future__ import annotations

import textwrap
from typing import List, Optional

from repro.analysis import RULES, Finding, active_rules, lint_source

HOT = "repro.engine.snippet"
COLD = "repro.simnet.snippet"
PARSER = "repro.weblog.snippet"


def run(source: str, module: str = COLD, rule_id: Optional[str] = None) -> List[Finding]:
    rules = active_rules(select=[rule_id]) if rule_id else None
    return lint_source(textwrap.dedent(source), path="snippet.py", module=module, rules=rules)


def ids(findings: List[Finding]) -> List[str]:
    return [finding.rule_id for finding in findings]


# -- unseeded-random -------------------------------------------------------


def test_unseeded_random_fires_on_hot_path_call():
    findings = run(
        """
        import random

        def jitter():
            return random.random()
        """,
        module=HOT,
        rule_id="unseeded-random",
    )
    assert ids(findings) == ["unseeded-random"]


def test_unseeded_random_fires_on_module_level_call_anywhere():
    findings = run(
        """
        import random

        SHUFFLE_KEY = random.random()
        """,
        module=COLD,
        rule_id="unseeded-random",
    )
    assert ids(findings) == ["unseeded-random"]


def test_unseeded_random_fires_on_from_import_in_hot_module():
    findings = run(
        "from random import choice\n", module=HOT, rule_id="unseeded-random"
    )
    assert ids(findings) == ["unseeded-random"]


def test_unseeded_random_quiet_on_blessed_plumbing():
    findings = run(
        """
        from repro.util.rng import make_rng

        def sample(seed):
            return make_rng(seed).random()
        """,
        module=HOT,
        rule_id="unseeded-random",
    )
    assert findings == []


def test_unseeded_random_quiet_on_annotation_only_use():
    # Optional[random.Random] in a signature is not a call.
    findings = run(
        """
        import random
        from typing import Optional

        def sample(rng: Optional[random.Random] = None):
            return rng
        """,
        module=HOT,
        rule_id="unseeded-random",
    )
    assert findings == []


def test_unseeded_random_exempts_rng_module_itself():
    findings = run(
        """
        import random

        def make_rng(seed):
            return random.Random(seed)
        """,
        module="repro.util.rng",
        rule_id="unseeded-random",
    )
    assert findings == []


def test_unseeded_random_quiet_on_function_scoped_call_in_cold_module():
    findings = run(
        """
        import random

        def noise():
            return random.random()
        """,
        module=COLD,
        rule_id="unseeded-random",
    )
    assert findings == []


# -- wall-clock ------------------------------------------------------------


def test_wall_clock_fires_in_hot_module():
    findings = run(
        """
        import time

        def stamp():
            return time.time()
        """,
        module=HOT,
        rule_id="wall-clock",
    )
    assert ids(findings) == ["wall-clock"]


def test_wall_clock_allows_perf_counter_and_cold_modules():
    good_hot = run(
        """
        import time

        def elapsed(start):
            return time.perf_counter() - start
        """,
        module=HOT,
        rule_id="wall-clock",
    )
    cold = run(
        """
        import time

        def stamp():
            return time.time()
        """,
        module=COLD,
        rule_id="wall-clock",
    )
    assert good_hot == []
    assert cold == []


# -- pickle-boundary -------------------------------------------------------


def test_pickle_boundary_fires_on_lambda_to_pool():
    findings = run(
        """
        def fan_out(pool, jobs):
            return pool.map(lambda job: job + 1, jobs)
        """,
        rule_id="pickle-boundary",
    )
    assert ids(findings) == ["pickle-boundary"]


def test_pickle_boundary_fires_on_closure_to_pool():
    findings = run(
        """
        def fan_out(pool, jobs, offset):
            def shift(job):
                return job + offset
            return pool.map(shift, jobs)
        """,
        rule_id="pickle-boundary",
    )
    assert ids(findings) == ["pickle-boundary"]


def test_pickle_boundary_fires_on_asymmetric_state_pair():
    findings = run(
        """
        class Table:
            def __getstate__(self):
                return {}
        """,
        rule_id="pickle-boundary",
    )
    assert ids(findings) == ["pickle-boundary"]


def test_pickle_boundary_quiet_on_module_level_function_and_full_pair():
    findings = run(
        """
        def work(job):
            return job + 1

        class Table:
            def __getstate__(self):
                return {}

            def __setstate__(self, state):
                pass

        def fan_out(pool, jobs):
            return pool.map(work, jobs)
        """,
        rule_id="pickle-boundary",
    )
    assert findings == []


def test_pickle_boundary_checks_shard_worker_aliases():
    findings = run(
        """
        from typing import Optional, Tuple

        _WorkerJob = Tuple[SneakyUnpicklable, Optional[int]]
        _WorkerResult = Tuple[ClusterStore, Tuple[int, int, int]]
        """,
        module="repro.engine.shard",
        rule_id="pickle-boundary",
    )
    assert ids(findings) == ["pickle-boundary"]
    assert "SneakyUnpicklable" in findings[0].message


def test_pickle_boundary_requires_shard_aliases_to_exist():
    findings = run(
        "x = 1\n", module="repro.engine.shard", rule_id="pickle-boundary"
    )
    assert ids(findings) == ["pickle-boundary", "pickle-boundary"]


# -- broad-except ----------------------------------------------------------


def test_broad_except_fires_on_swallowing_handler():
    findings = run(
        """
        def load(path):
            try:
                return open(path).read()
            except Exception:
                return None
        """,
        rule_id="broad-except",
    )
    assert ids(findings) == ["broad-except"]


def test_broad_except_fires_on_bare_except():
    findings = run(
        """
        def load(path):
            try:
                return open(path).read()
            except:
                return None
        """,
        rule_id="broad-except",
    )
    assert ids(findings) == ["broad-except"]


def test_broad_except_allows_reraise_and_taxonomy_wrap():
    findings = run(
        """
        from repro.errors import CheckpointCorruptError

        def load(path):
            try:
                return open(path).read()
            except Exception:
                raise

        def decode(raw):
            try:
                return raw.decode()
            except Exception as exc:
                raise CheckpointCorruptError(str(exc)) from exc
        """,
        rule_id="broad-except",
    )
    assert findings == []


def test_broad_except_quiet_on_concrete_exceptions():
    findings = run(
        """
        def load(path):
            try:
                return open(path).read()
            except (OSError, ValueError):
                return None
        """,
        rule_id="broad-except",
    )
    assert findings == []


# -- bare-raise-exception --------------------------------------------------


def test_bare_raise_exception_fires():
    findings = run(
        """
        def fail():
            raise Exception("boom")
        """,
        rule_id="bare-raise-exception",
    )
    assert ids(findings) == ["bare-raise-exception"]


def test_bare_raise_exception_quiet_on_specific_types():
    findings = run(
        """
        def fail():
            raise RuntimeError("boom")
        """,
        rule_id="bare-raise-exception",
    )
    assert findings == []


# -- silent-skip -----------------------------------------------------------


def test_silent_skip_fires_on_uncounted_continue_in_parser():
    findings = run(
        """
        def parse(lines):
            out = []
            for line in lines:
                try:
                    out.append(int(line))
                except ValueError:
                    continue
            return out
        """,
        module=PARSER,
        rule_id="silent-skip",
    )
    assert ids(findings) == ["silent-skip"]


def test_silent_skip_quiet_on_count_and_skip():
    findings = run(
        """
        def parse(lines, report):
            out = []
            for line in lines:
                try:
                    out.append(int(line))
                except ValueError:
                    report.malformed += 1
                    continue
            return out
        """,
        module=PARSER,
        rule_id="silent-skip",
    )
    assert findings == []


def test_silent_skip_scoped_to_parser_packages():
    findings = run(
        """
        def parse(lines):
            for line in lines:
                try:
                    int(line)
                except ValueError:
                    continue
        """,
        module=COLD,
        rule_id="silent-skip",
    )
    assert findings == []


# -- mutable-default -------------------------------------------------------


def test_mutable_default_fires_on_literal_and_constructor():
    findings = run(
        """
        def collect(into=[]):
            return into

        def index(table=dict()):
            return table
        """,
        rule_id="mutable-default",
    )
    assert ids(findings) == ["mutable-default", "mutable-default"]


def test_mutable_default_quiet_on_none_pattern():
    findings = run(
        """
        def collect(into=None):
            into = into if into is not None else []
            return into
        """,
        rule_id="mutable-default",
    )
    assert findings == []


# -- assert-validation -----------------------------------------------------


def test_assert_validation_fires_on_parameter_assert():
    findings = run(
        """
        def lookup(address):
            assert address >= 0, "negative address"
            return address
        """,
        rule_id="assert-validation",
    )
    assert ids(findings) == ["assert-validation"]


def test_assert_validation_allows_internal_invariants():
    findings = run(
        """
        _TABLE = None

        def lookup(address):
            assert _TABLE is not None, "not initialised"
            return _TABLE
        """,
        rule_id="assert-validation",
    )
    assert findings == []


# -- checkpoint-version ----------------------------------------------------


def test_checkpoint_version_fires_on_hardcoded_envelope():
    findings = run(
        """
        def envelope(payload):
            return {"magic": "repro.engine.checkpoint", "version": 2,
                    "payload": payload}
        """,
        rule_id="checkpoint-version",
    )
    assert ids(findings) == ["checkpoint-version"]


def test_checkpoint_version_fires_on_literal_comparison():
    findings = run(
        """
        def check(envelope):
            if envelope.get("version") != 2:
                raise ValueError("bad version")
        """,
        rule_id="checkpoint-version",
    )
    assert ids(findings) == ["checkpoint-version"]


def test_checkpoint_version_quiet_on_constant_discipline():
    findings = run(
        """
        CHECKPOINT_VERSION = 2

        def envelope(payload):
            return {"magic": "repro.engine.checkpoint",
                    "version": CHECKPOINT_VERSION, "payload": payload}

        def check(env):
            if env.get("version") != CHECKPOINT_VERSION:
                raise ValueError("bad version")
        """,
        rule_id="checkpoint-version",
    )
    assert findings == []


# -- shm-lifecycle ---------------------------------------------------------


def test_shm_lifecycle_no_longer_reports_missing_unlink():
    # The per-module create/unlink census moved to the path-sensitive
    # resource-leak rule under --flow; the syntactic rule must stay
    # silent so the same line is never double-reported.
    findings = run(
        """
        from multiprocessing.shared_memory import SharedMemory

        def publish(size):
            segment = SharedMemory(name="seg", create=True, size=size)
            return segment.name
        """,
        rule_id="shm-lifecycle",
    )
    assert findings == []


def test_shm_lifecycle_quiet_when_module_unlinks():
    findings = run(
        """
        from multiprocessing.shared_memory import SharedMemory

        def publish(size):
            return SharedMemory(name="seg", create=True, size=size)

        def release(segment):
            segment.close()
            segment.unlink()
        """,
        rule_id="shm-lifecycle",
    )
    assert findings == []


def test_shm_lifecycle_quiet_on_plain_attach():
    findings = run(
        """
        from multiprocessing.shared_memory import SharedMemory

        def attach(name):
            return SharedMemory(name=name)
        """,
        rule_id="shm-lifecycle",
    )
    assert findings == []


def test_shm_lifecycle_fires_on_buf_across_queue():
    findings = run(
        """
        def ship(segment, queue):
            buf = segment.buf
            queue.put(buf)
        """,
        rule_id="shm-lifecycle",
    )
    assert ids(findings) == ["shm-lifecycle"]
    assert "process boundary" in findings[0].message


def test_shm_lifecycle_fires_on_view_inside_shipped_tuple():
    findings = run(
        """
        def ship(segment, queue, seq):
            counters = segment.buf.cast("q")
            queue.put(("batch", seq, counters))
        """,
        rule_id="shm-lifecycle",
    )
    assert ids(findings) == ["shm-lifecycle"]


def test_shm_lifecycle_fires_on_memoryview_to_pool():
    findings = run(
        """
        def dispatch(pool, table, worker):
            view = memoryview(table)
            return pool.submit(worker, view)
        """,
        rule_id="shm-lifecycle",
    )
    assert ids(findings) == ["shm-lifecycle"]


def test_shm_lifecycle_quiet_on_names_and_handles():
    findings = run(
        """
        def dispatch(queue, handle, batch):
            queue.put(("batch", handle, batch))

        def report(conn, status, seq):
            conn.send((status, seq, None, None))
        """,
        rule_id="shm-lifecycle",
    )
    assert findings == []


def test_shm_lifecycle_tracking_is_scoped_per_function():
    # ``view`` is a buffer only inside ``local``; the unrelated ``view``
    # parameter of ``other`` must not inherit the taint.
    findings = run(
        """
        def local(segment):
            view = segment.buf
            return view.nbytes

        def other(queue, view):
            queue.put(view)
        """,
        rule_id="shm-lifecycle",
    )
    assert findings == []


# -- pickle-boundary: shm wire aliases -------------------------------------


def test_pickle_boundary_requires_shm_aliases():
    findings = run(
        """
        def dispatch(queue, job):
            queue.put(job)
        """,
        module="repro.engine.shm",
        rule_id="pickle-boundary",
    )
    assert ids(findings) == ["pickle-boundary", "pickle-boundary"]
    assert any("_ShmJob" in f.message for f in findings)
    assert any("_ShmAck" in f.message for f in findings)


def test_pickle_boundary_flags_unsafe_name_in_shm_alias():
    findings = run(
        """
        from typing import Optional, Tuple

        _ShmJob = Tuple[str, int, Optional[SharedMemory]]
        _ShmAck = Tuple[str, int]
        """,
        module="repro.engine.shm",
        rule_id="pickle-boundary",
    )
    assert ids(findings) == ["pickle-boundary"]
    assert "SharedMemory" in findings[0].message


def test_pickle_boundary_quiet_on_safe_shm_aliases():
    findings = run(
        """
        from typing import Optional, Tuple

        _ShmJob = Tuple[str, int, Optional[SharedLpmHandle], Optional[PackedBatch]]
        _ShmAck = Tuple[str, int, Optional[str], Optional[ClusterStore]]
        """,
        module="repro.engine.shm",
        rule_id="pickle-boundary",
    )
    assert findings == []


# -- registry --------------------------------------------------------------


def test_catalogue_has_at_least_eight_rules():
    active_rules()  # force import
    assert len(RULES) >= 8


def test_every_rule_documents_itself():
    active_rules()
    for rule in RULES.values():
        assert rule.rule_id
        assert rule.summary
        assert rule.rationale
