"""The gate the CI job enforces: the tree lints clean at head."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULES, active_rules, lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.mark.skipif(not SRC.is_dir(), reason="src/ layout not present")
def test_src_tree_lints_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_at_least_eight_rules_are_active():
    rules = active_rules()
    assert len(rules) >= 8
    assert len(rules) == len(RULES)


@pytest.mark.skipif(not SRC.is_dir(), reason="src/ layout not present")
def test_src_tree_is_clean_under_project_analysis():
    """The --project acceptance gate: zero cross-module findings at head."""
    from repro.analysis.xmodule import Project, analyze_project

    docs = [
        doc
        for doc in (SRC.parent / "README.md", SRC.parent / "DESIGN.md")
        if doc.is_file()
    ]
    project = Project.load([SRC], docs=docs)
    findings = analyze_project(project)
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_at_least_five_project_rules_are_active():
    from repro.analysis.xmodule import PROJECT_RULES, active_project_rules

    rules = active_project_rules()
    assert len(rules) >= 5
    assert len(rules) == len(PROJECT_RULES)


@pytest.mark.skipif(not SRC.is_dir(), reason="src/ layout not present")
def test_src_tree_is_clean_under_flow_analysis():
    """The --flow acceptance gate: zero path-sensitive findings at head."""
    from repro.analysis.flow import analyze_flow, load_flow_modules

    modules, errors = load_flow_modules([SRC])
    assert errors == []
    findings = analyze_flow(modules)
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_at_least_four_flow_rules_are_active():
    from repro.analysis.flow import FLOW_RULES, active_flow_rules

    rules = active_flow_rules()
    # flow-spec (malformed declarations) plus the four path-sensitive
    # lifecycle rules.
    assert len(rules) >= 5
    assert len(rules) == len(FLOW_RULES)


@pytest.mark.skipif(not SRC.is_dir(), reason="src/ layout not present")
def test_src_tree_is_clean_under_interprocedural_analysis():
    """The --inter acceptance gate: zero summary-based findings at head."""
    from repro.analysis.flow import load_flow_modules
    from repro.analysis.inter import analyze_inter

    modules, errors = load_flow_modules([SRC])
    assert errors == []
    findings = analyze_inter(modules)
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_at_least_three_inter_rules_are_active():
    from repro.analysis.inter import INTER_RULES, active_inter_rules

    rules = active_inter_rules()
    # inter-resource-leak, inter-wal-order, epoch-protocol
    assert len(rules) >= 3
    assert len(rules) == len(INTER_RULES)
