"""The gate the CI job enforces: the tree lints clean at head."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULES, active_rules, lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.mark.skipif(not SRC.is_dir(), reason="src/ layout not present")
def test_src_tree_lints_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_at_least_eight_rules_are_active():
    rules = active_rules()
    assert len(rules) >= 8
    assert len(rules) == len(RULES)
