"""Suppression-comment handling: coverage, reasons, and string safety."""

from __future__ import annotations

import textwrap
from typing import List

from repro.analysis import Finding, active_rules, lint_source

HOT = "repro.engine.snippet"


def run(source: str, module: str = HOT, rule_id: str = "") -> List[Finding]:
    rules = active_rules(select=[rule_id]) if rule_id else None
    return lint_source(
        textwrap.dedent(source), path="snippet.py", module=module, rules=rules
    )


def test_suppression_silences_matching_rule_on_its_line():
    findings = run(
        """
        import random

        def jitter():
            return random.random()  # lint: ignore[unseeded-random]
        """,
        rule_id="unseeded-random",
    )
    assert findings == []


def test_suppression_does_not_cover_other_rules():
    findings = run(
        """
        import time

        def stamp():
            return time.time()  # lint: ignore[unseeded-random]
        """,
        rule_id="wall-clock",
    )
    assert [finding.rule_id for finding in findings] == ["wall-clock"]


def test_suppression_does_not_leak_to_other_lines():
    findings = run(
        """
        import random

        def jitter():
            a = random.random()  # lint: ignore[unseeded-random]
            b = random.random()
            return a + b
        """,
        rule_id="unseeded-random",
    )
    assert len(findings) == 1
    assert findings[0].line == 6


def test_multiple_ids_in_one_comment():
    findings = run(
        """
        import random
        import time

        def jitter():
            return random.random() + time.time()  # lint: ignore[unseeded-random, wall-clock]
        """,
    )
    assert findings == []


def test_require_reason_rule_rejects_bare_suppression():
    findings = run(
        """
        def load(path):
            try:
                return open(path).read()
            except Exception:  # lint: ignore[broad-except]
                return None
        """,
        rule_id="broad-except",
    )
    assert len(findings) == 1
    assert "requires a reason" in findings[0].message


def test_require_reason_rule_accepts_reasoned_suppression():
    findings = run(
        """
        def load(path):
            try:
                return open(path).read()
            except Exception:  # lint: ignore[broad-except] -- last-ditch CLI guard, reported to stderr
                return None
        """,
        rule_id="broad-except",
    )
    assert findings == []


def test_lint_comment_inside_string_is_not_a_suppression():
    findings = run(
        """
        import random

        DOC = "# lint: ignore[unseeded-random]"

        def jitter():
            return random.random()
        """,
        rule_id="unseeded-random",
    )
    assert [finding.rule_id for finding in findings] == ["unseeded-random"]
