"""Cross-module rules: a good/bad fixture pair per rule.

Each fixture is a tiny in-memory project — sources keyed by dotted
module name — so every rule is exercised against exactly the drift it
exists to catch, plus the clean twin that must stay silent.
"""

import textwrap
from typing import Dict, Optional

import pytest

from repro.analysis.core import LintModule
from repro.analysis.xmodule import (
    PROJECT_RULES,
    Project,
    active_project_rules,
    analyze_project,
)


def project_from(
    sources: Dict[str, str], docs: Optional[Dict[str, str]] = None
) -> Project:
    modules = {
        name: LintModule(
            textwrap.dedent(source),
            path=f"src/{name.replace('.', '/')}.py",
            module=name,
        )
        for name, source in sources.items()
    }
    return Project(modules, docs=docs)


def run_rule(rule_id, sources, docs=None):
    project = project_from(sources, docs=docs)
    return analyze_project(project, [PROJECT_RULES[rule_id]])


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert set(PROJECT_RULES) >= {
            "metrics-drift",
            "cli-doc-drift",
            "fork-safety",
            "error-taxonomy-reachability",
            "checkpoint-schema-drift",
        }

    def test_select_and_ignore(self):
        only = active_project_rules(select=["fork-safety"])
        assert [rule.rule_id for rule in only] == ["fork-safety"]
        rest = active_project_rules(ignore=["fork-safety"])
        assert "fork-safety" not in {rule.rule_id for rule in rest}

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            active_project_rules(select=["no-such-rule"])


GOOD_METRICS = {
    "eng.metrics": """
        class EngineMetrics:
            def __init__(self):
                self.hits = 0

            def record_hit(self):
                self.hits += 1

            def snapshot(self):
                return {"hits": self.hits}

            def render(self):
                return "hits" + " = " + str(self.hits)
    """,
    "eng.driver": """
        def run(metrics):
            metrics.record_hit()
    """,
}


class TestMetricsDrift:
    def test_good_project_is_clean(self):
        assert run_rule("metrics-drift", GOOD_METRICS) == []

    def test_counter_never_incremented(self):
        sources = dict(GOOD_METRICS)
        sources["eng.metrics"] = GOOD_METRICS["eng.metrics"].replace(
            "self.hits = 0", "self.hits = 0\n                self.lost = 0"
        )
        findings = run_rule("metrics-drift", sources)
        assert any("'lost'" in f.message and "never" in f.message
                   for f in findings)

    def test_counter_missing_from_snapshot_and_render(self):
        sources = {
            "eng.metrics": """
                class EngineMetrics:
                    def __init__(self):
                        self.hits = 0

                    def record_hit(self):
                        self.hits += 1

                    def snapshot(self):
                        return {}

                    def render(self):
                        return "metrics"
            """,
            "eng.driver": GOOD_METRICS["eng.driver"],
        }
        messages = [f.message for f in run_rule("metrics-drift", sources)]
        assert any("snapshot()" in m for m in messages)
        assert any("render()" in m for m in messages)

    def test_stale_snapshot_key(self):
        sources = dict(GOOD_METRICS)
        sources["eng.metrics"] = GOOD_METRICS["eng.metrics"].replace(
            '{"hits": self.hits}', '{"hits": self.hits, "ghost": 0}'
        )
        findings = run_rule("metrics-drift", sources)
        assert any("'ghost'" in f.message and "stale" in f.message
                   for f in findings)

    def test_uncalled_record_method(self):
        sources = dict(GOOD_METRICS)
        sources["eng.driver"] = "def run(metrics):\n    pass\n"
        findings = run_rule("metrics-drift", sources)
        assert any("record_hit" in f.message and "never called" in f.message
                   for f in findings)


CLI_SOURCE = {
    "tool.cli": """
        import argparse

        def build():
            parser = argparse.ArgumentParser()
            parser.add_argument("--scale", type=float)
            return parser
    """,
}


class TestCliDocDrift:
    def test_documented_flag_is_clean(self):
        docs = {"README.md": "Run with --scale 2.0 to double the load."}
        assert run_rule("cli-doc-drift", CLI_SOURCE, docs=docs) == []

    def test_undocumented_flag_flagged(self):
        docs = {"README.md": "Nothing to see here."}
        findings = run_rule("cli-doc-drift", CLI_SOURCE, docs=docs)
        assert any("'--scale'" in f.message and "not documented" in f.message
                   for f in findings)

    def test_stale_doc_flag_flagged_at_doc_line(self):
        docs = {"README.md": "Use --scale freely.\nAlso try --warp today."}
        findings = run_rule("cli-doc-drift", CLI_SOURCE, docs=docs)
        stale = [f for f in findings if "'--warp'" in f.message]
        assert stale and stale[0].path == "README.md"
        assert stale[0].line == 2

    def test_external_flags_allowlisted(self):
        docs = {"README.md": "Mentions --scale and pytest's --benchmark-only."}
        assert run_rule("cli-doc-drift", CLI_SOURCE, docs=docs) == []

    def test_no_docs_means_silent(self):
        assert run_rule("cli-doc-drift", CLI_SOURCE) == []

    def test_prefix_match_does_not_count_as_documented(self):
        docs = {"README.md": "There is a --scale-factor flag."}
        findings = run_rule("cli-doc-drift", CLI_SOURCE, docs=docs)
        assert any("'--scale'" in f.message and "not documented" in f.message
                   for f in findings)


GOOD_WORKER = {
    "pool.worker": """
        _LIMITS = {"max": 100}

        def _work(job):
            seen = {}
            seen[job] = job * 2
            return seen[job] + _LIMITS["max"]

        def run(pool, jobs):
            return pool.map(_work, jobs)
    """,
}


class TestForkSafety:
    def test_clean_worker_passes(self):
        # _LIMITS is a module-level dict, but nothing mutates it: a
        # frozen constant in all but type, so it must not be flagged.
        assert run_rule("fork-safety", GOOD_WORKER) == []

    def test_worker_mutating_module_cache(self):
        sources = {
            "pool.worker": """
                _CACHE = {}

                def _work(job):
                    if job in _CACHE:
                        return _CACHE[job]
                    _CACHE[job] = job * 2
                    return _CACHE[job]

                def run(pool, jobs):
                    return pool.map(_work, jobs)
            """,
        }
        findings = run_rule("fork-safety", sources)
        assert any("_CACHE" in f.message for f in findings)
        assert any("assigns into" in f.message for f in findings)

    def test_worker_global_rebind(self):
        sources = {
            "pool.worker": """
                _COUNT = 0

                def _work(job):
                    global _COUNT
                    _COUNT = _COUNT + 1
                    return job

                def run(pool, jobs):
                    return pool.map(_work, jobs)
            """,
        }
        findings = run_rule("fork-safety", sources)
        assert any("rebinds module global '_COUNT'" in f.message
                   for f in findings)

    def test_reachability_through_helper(self):
        sources = {
            "pool.worker": """
                _STATE = []

                def _helper(job):
                    _STATE.append(job)
                    return job

                def _work(job):
                    return _helper(job)

                def run(pool, jobs):
                    return pool.map(_work, jobs)
            """,
        }
        findings = run_rule("fork-safety", sources)
        assert any("_STATE" in f.message and "in place" in f.message
                   for f in findings)

    def test_mutation_after_ship(self):
        sources = {
            "pool.driver": """
                def _work(job):
                    return job

                def dispatch(pool, jobs):
                    pool.map_async(_work, jobs)
                    jobs.append("sentinel")
            """,
        }
        findings = run_rule("fork-safety", sources)
        assert any("dispatched to the worker pool" in f.message
                   and "'jobs'" in f.message for f in findings)

    def test_mutation_before_ship_is_fine(self):
        sources = {
            "pool.driver": """
                def _work(job):
                    return job

                def dispatch(pool, jobs):
                    jobs.append("sentinel")
                    return pool.map_async(_work, jobs)
            """,
        }
        assert run_rule("fork-safety", sources) == []

    def test_mutation_after_transitive_ship(self):
        # jobs flows through _send before reaching the pool; the
        # fixpoint must still see the later append as post-dispatch.
        sources = {
            "pool.driver": """
                def _work(job):
                    return job

                def _send(pool, items):
                    return pool.map(_work, items)

                def dispatch(pool, jobs):
                    handle = _send(pool, jobs)
                    jobs.append("sentinel")
                    return handle
            """,
        }
        findings = run_rule("fork-safety", sources)
        assert any("dispatched to the worker pool" in f.message
                   for f in findings)

    def test_allowlisted_worker_table_global(self):
        sources = {
            "repro.engine.shard": """
                _WORKER_TABLE = None

                def _pool_init(table):
                    global _WORKER_TABLE
                    _WORKER_TABLE = table

                def _work(job):
                    return _WORKER_TABLE, job

                def run(pool, jobs):
                    import multiprocessing
                    pool = multiprocessing.Pool(initializer=_pool_init)
                    return pool.map(_work, jobs)
            """,
        }
        assert run_rule("fork-safety", sources) == []


GOOD_ERRORS = {
    "pkg.errors": """
        __all__ = ["Base", "Boom", "DriftWarning"]


        class Base(Exception):
            pass


        class Boom(Base):
            pass


        class DriftWarning(UserWarning):
            pass
    """,
    "pkg.user": """
        import warnings

        from pkg.errors import Boom, DriftWarning

        def fail():
            raise Boom("no")

        def nag():
            warnings.warn("drifting", DriftWarning)
    """,
}


class TestErrorTaxonomy:
    def test_good_taxonomy_is_clean(self):
        assert run_rule("error-taxonomy-reachability", GOOD_ERRORS) == []

    def test_unreachable_class(self):
        sources = dict(GOOD_ERRORS)
        sources["pkg.errors"] = GOOD_ERRORS["pkg.errors"].replace(
            '__all__ = ["Base", "Boom", "DriftWarning"]',
            '__all__ = ["Base", "Boom", "DriftWarning", "Silent"]\n\n\n'
            "        class Silent(Exception):\n            pass",
        )
        findings = run_rule("error-taxonomy-reachability", sources)
        assert any("'Silent'" in f.message and "never raised" in f.message
                   for f in findings)

    def test_missing_from_all(self):
        sources = dict(GOOD_ERRORS)
        sources["pkg.errors"] = GOOD_ERRORS["pkg.errors"] + (
            "\n\n        class Hidden(Base):\n            pass\n"
        )
        sources["pkg.user"] = GOOD_ERRORS["pkg.user"] + (
            "\n\n        def hide():\n            raise Hidden()\n"
        )
        findings = run_rule("error-taxonomy-reachability", sources)
        assert any("'Hidden'" in f.message and "__all__" in f.message
                   for f in findings)

    def test_stale_export(self):
        sources = dict(GOOD_ERRORS)
        sources["pkg.errors"] = GOOD_ERRORS["pkg.errors"].replace(
            '"DriftWarning"]', '"DriftWarning", "Ghost"]'
        )
        findings = run_rule("error-taxonomy-reachability", sources)
        stale = [f for f in findings if "'Ghost'" in f.message]
        assert stale and "stale export" in stale[0].message
        assert stale[0].line == 1

    def test_non_errors_modules_ignored(self):
        sources = {
            "pkg.shapes": """
                class Circle:
                    pass
            """,
        }
        assert run_rule("error-taxonomy-reachability", sources) == []


class TestCheckpointSchema:
    def test_matching_state_pair_is_clean(self):
        sources = {
            "ck.store": """
                class Box:
                    def __getstate__(self):
                        return (self.a, self.b)

                    def __setstate__(self, state):
                        self.a, self.b = state
            """,
        }
        assert run_rule("checkpoint-schema-drift", sources) == []

    def test_state_arity_mismatch(self):
        sources = {
            "ck.store": """
                class Box:
                    def __getstate__(self):
                        return (self.a, self.b, self.c)

                    def __setstate__(self, state):
                        self.a, self.b = state
            """,
        }
        findings = run_rule("checkpoint-schema-drift", sources)
        assert any("pickle round-trip breaks" in f.message for f in findings)

    def test_matching_payload_pair_is_clean(self):
        sources = {
            "ck.store": """
                class Store:
                    def _payload(self):
                        return {"clusters": 1, "entries": 2}

                    @classmethod
                    def _from_payload(cls, payload):
                        obj = cls()
                        obj.clusters = payload["clusters"]
                        obj.entries = payload.get("entries", 0)
                        return obj
            """,
        }
        assert run_rule("checkpoint-schema-drift", sources) == []

    def test_payload_key_drift_both_directions(self):
        sources = {
            "ck.store": """
                class Store:
                    def _payload(self):
                        return {"clusters": 1, "orphan": 2}

                    @classmethod
                    def _from_payload(cls, payload):
                        obj = cls()
                        obj.clusters = payload["clusters"]
                        obj.entries = payload["entries"]
                        return obj
            """,
        }
        messages = [f.message for f in run_rule("checkpoint-schema-drift",
                                                sources)]
        assert any("reads key 'entries'" in m for m in messages)
        assert any("writes key 'orphan'" in m for m in messages)

    def test_matching_envelope_is_clean(self):
        sources = {
            "ck.disk": """
                import pickle

                CHECKPOINT_VERSION = 2

                def write(path, payload):
                    envelope = {"magic": "ck", "version": CHECKPOINT_VERSION,
                                "payload": payload}
                    blob = pickle.dumps(envelope)
                    return blob

                def read(blob):
                    envelope = pickle.loads(blob)
                    assert envelope["magic"] == "ck"
                    assert envelope["version"] == CHECKPOINT_VERSION
                    return envelope["payload"]
            """,
        }
        assert run_rule("checkpoint-schema-drift", sources) == []

    def test_envelope_reader_key_missing_from_writer(self):
        sources = {
            "ck.disk": """
                import pickle

                CHECKPOINT_VERSION = 2

                def write(path, payload):
                    envelope = {"magic": "ck", "payload": payload}
                    return pickle.dumps(envelope)

                def read(blob):
                    envelope = pickle.loads(blob)
                    assert envelope["magic"] == "ck"
                    assert envelope["version"] == CHECKPOINT_VERSION
                    return envelope["payload"]
            """,
        }
        findings = run_rule("checkpoint-schema-drift", sources)
        assert any("consumes key(s) ['version']" in f.message
                   for f in findings)

    def test_envelope_rule_needs_checkpoint_version(self):
        # Without the CHECKPOINT_VERSION marker the same drift is not a
        # checkpoint envelope and must not be flagged.
        sources = {
            "ck.disk": """
                import pickle

                def write(path, payload):
                    envelope = {"magic": "ck", "payload": payload}
                    return pickle.dumps(envelope)

                def read(blob):
                    envelope = pickle.loads(blob)
                    return envelope["payload"], envelope["version"]
            """,
        }
        assert run_rule("checkpoint-schema-drift", sources) == []


class TestSuppressions:
    def test_inline_ignore_covers_project_findings(self):
        sources = {
            "pool.driver": """
                def _work(job):
                    return job

                def dispatch(pool, jobs):
                    pool.map_async(_work, jobs)
                    jobs.append("x")  # lint: ignore[fork-safety] -- test rig
            """,
        }
        assert run_rule("fork-safety", sources) == []

    def test_findings_sorted_and_deduped(self):
        sources = {
            "pool.driver": """
                def _work(job):
                    return job

                def dispatch(pool, jobs):
                    pool.map_async(_work, jobs)
                    jobs.append("x")
            """,
        }
        project = project_from(sources)
        rule = PROJECT_RULES["fork-safety"]
        findings = analyze_project(project, [rule, rule])
        keys = [(f.path, f.line, f.rule_id, f.message) for f in findings]
        assert len(keys) == len(set(keys))
