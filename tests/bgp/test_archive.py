"""Unit/integration tests for on-disk snapshot archives."""

import pytest

from repro.bgp.archive import SnapshotArchive, load_snapshot, save_snapshot
from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotTime
from repro.bgp.table import KIND_REGISTRY, RoutingTable
from repro.net.prefix import Prefix


class TestSaveLoadRoundTrip:
    def test_bgp_dump_round_trip(self, factory, tmp_path):
        source = source_by_name("MAE-WEST")
        table = factory.snapshot(source)
        path = tmp_path / "mae-west.dump"
        written = save_snapshot(table, path)
        assert written == len(table)
        loaded = load_snapshot(path)
        assert loaded.name == "MAE-WEST"
        assert loaded.kind == table.kind
        assert loaded.prefix_set() == table.prefix_set()

    def test_attributes_survive(self, factory, tmp_path):
        table = factory.snapshot(source_by_name("OREGON"))
        path = tmp_path / "oregon.dump"
        save_snapshot(table, path)
        loaded = load_snapshot(path)
        prefix = table.prefixes()[0]
        assert loaded.get(prefix).as_path == table.get(prefix).as_path
        assert loaded.get(prefix).next_hop == table.get(prefix).next_hop

    def test_registry_dump_round_trip(self, factory, tmp_path):
        table = factory.snapshot(source_by_name("ARIN"))
        path = tmp_path / "arin.dump"
        save_snapshot(table, path)
        loaded = load_snapshot(path)
        assert loaded.kind == KIND_REGISTRY
        assert loaded.prefix_set() == table.prefix_set()

    def test_explicit_overrides(self, tmp_path):
        table = RoutingTable("X")
        table.add_prefix(Prefix.from_cidr("10.0.0.0/8"))
        path = tmp_path / "x.dump"
        save_snapshot(table, path)
        loaded = load_snapshot(path, name="Y", kind="forwarding")
        assert loaded.name == "Y"
        assert loaded.kind == "forwarding"

    def test_raw_headerless_dump(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("10.0.0.0/8\n192.0.2.0/24\n")
        loaded = load_snapshot(path)
        assert len(loaded) == 2
        assert loaded.name == "raw"


class TestArchive:
    def test_collect_and_list(self, factory, tmp_path):
        archive = SnapshotArchive(tmp_path / "dumps")
        entries = archive.collect(factory, SnapshotTime(0))
        assert len(entries) == 14
        on_disk = archive.entries()
        assert len(on_disk) == 14
        assert all(entry.size_bytes > 0 for entry in on_disk)
        assert archive.dates() == ["d0s0"]

    def test_multiple_dates(self, factory, tmp_path):
        archive = SnapshotArchive(tmp_path / "dumps")
        sources = [source_by_name("MAE-WEST"), source_by_name("VBNS")]
        archive.collect(factory, SnapshotTime(0), sources)
        archive.collect(factory, SnapshotTime(1), sources)
        assert archive.dates() == ["d0s0", "d1s0"]
        assert len(archive.entries()) == 4

    def test_load_specific_dump(self, factory, tmp_path):
        archive = SnapshotArchive(tmp_path / "dumps")
        archive.collect(factory, SnapshotTime(0), [source_by_name("VBNS")])
        table = archive.load("VBNS", "d0s0")
        assert len(table) > 0

    def test_merged_table_from_disk_matches_in_memory(self, factory, tmp_path):
        """The offline pipeline (archive -> merge) must agree with the
        in-memory pipeline on lookups."""
        import random

        archive = SnapshotArchive(tmp_path / "dumps")
        archive.collect(factory, SnapshotTime(0))
        from_disk = archive.merged_table("d0s0")
        in_memory = factory.merged(SnapshotTime(0))
        assert len(from_disk) == len(in_memory)
        rng = random.Random(1)
        for _ in range(100):
            address = rng.getrandbits(32)
            a = from_disk.lookup(address)
            b = in_memory.lookup(address)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.prefix == b.prefix

    def test_merged_table_missing_date(self, tmp_path):
        archive = SnapshotArchive(tmp_path / "dumps")
        with pytest.raises(FileNotFoundError):
            archive.merged_table("d9s9")

    def test_awkward_source_names_safe_on_disk(self, factory, tmp_path):
        archive = SnapshotArchive(tmp_path / "dumps")
        entries = archive.collect(
            factory, SnapshotTime(0), [source_by_name("AT&T-BGP")]
        )
        assert entries[0].path.exists()
        assert "&" not in str(entries[0].path.name)
