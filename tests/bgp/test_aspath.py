"""Unit/integration tests for AS-path graph analysis."""

from repro.bgp.aspath import AsGraph, build_as_graph, path_length_histogram
from repro.bgp.sources import source_by_name
from repro.bgp.table import RoutingTable
from repro.net.prefix import Prefix


def table_with_paths(*paths):
    table = RoutingTable("T")
    for index, path in enumerate(paths):
        table.add_prefix(
            Prefix.from_cidr(f"10.{index}.0.0/16"), as_path=tuple(path)
        )
    return table


class TestAsGraph:
    def test_edges_from_path(self):
        graph = AsGraph()
        graph.add_path((1, 2, 3))
        assert graph.neighbors(2) == {1, 3}
        assert graph.degree(1) == 1
        assert len(graph) == 3

    def test_prepending_not_an_edge(self):
        graph = AsGraph()
        graph.add_path((1, 2, 2, 2, 3))
        assert graph.neighbors(2) == {1, 3}
        assert 2 not in graph.neighbors(2)

    def test_edge_observations_counted(self):
        graph = AsGraph()
        graph.add_path((1, 2))
        graph.add_path((2, 1))
        assert graph.edge_observations[(1, 2)] == 2

    def test_bfs_distances(self):
        graph = AsGraph()
        graph.add_path((1, 2, 3))
        graph.add_path((3, 4))
        assert graph.distance(1, 4) == 3
        assert graph.distance(1, 1) == 0
        assert graph.distances_from(1) == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_disconnected(self):
        graph = AsGraph()
        graph.add_path((1, 2))
        graph.add_path((8, 9))
        assert graph.distance(1, 9) is None
        assert graph.distance(77, 78) is None

    def test_hubs(self):
        graph = AsGraph()
        graph.add_path((1, 5, 2))
        graph.add_path((3, 5, 4))
        hubs = graph.hubs(1)
        assert hubs[0][0] == 5
        assert hubs[0][1] == 4

    def test_single_as_path(self):
        graph = AsGraph()
        graph.add_path((7,))
        assert 7 in graph
        assert graph.degree(7) == 0


class TestBuildFromTables:
    def test_build_from_synthetic_snapshots(self, factory):
        tables = [
            factory.snapshot(source_by_name(name))
            for name in ("OREGON", "MAE-WEST")
        ]
        graph = build_as_graph(tables)
        assert len(graph) > 0
        # Backbone transit ASes should be the hubs.
        hub_asn, hub_degree = graph.hubs(1)[0]
        assert hub_degree >= 2

    def test_origin_ases_reachable_from_hub(self, factory, topology):
        tables = [factory.snapshot(source_by_name("OREGON"))]
        graph = build_as_graph(tables)
        hub_asn, _ = graph.hubs(1)[0]
        distances = graph.distances_from(hub_asn)
        # Most of the graph hangs off the backbone.
        assert len(distances) > 0.5 * len(graph)

    def test_path_length_histogram(self):
        tables = [table_with_paths((1, 2, 3), (1, 2), (5, 5, 6))]
        histogram = path_length_histogram(tables)
        assert histogram == {3: 1, 2: 2}  # prepends deduped

    def test_empty_paths_ignored(self):
        table = RoutingTable("T")
        table.add_prefix(Prefix.from_cidr("10.0.0.0/8"))
        assert path_length_histogram([table]) == {}
        assert len(build_as_graph([table])) == 0
