"""Unit/integration tests for address-space coverage analysis."""

from repro.bgp.coverage import coverage_of, marginal_coverage
from repro.bgp.sources import source_by_name
from repro.bgp.table import KIND_REGISTRY
from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


class TestCoverageOf:
    def test_full_coverage(self):
        reference = PrefixSet([p("10.0.0.0/8")])
        report = coverage_of([p("10.0.0.0/9"), p("10.128.0.0/9")], reference)
        assert report.fraction == 1.0
        assert not report.uncovered

    def test_partial_coverage(self):
        reference = PrefixSet([p("10.0.0.0/8")])
        report = coverage_of([p("10.0.0.0/9")], reference)
        assert report.fraction == 0.5
        assert report.uncovered == PrefixSet([p("10.128.0.0/9")])

    def test_coverage_outside_reference_ignored(self):
        reference = PrefixSet([p("10.0.0.0/8")])
        report = coverage_of([p("192.0.0.0/8")], reference)
        assert report.fraction == 0.0

    def test_empty_reference(self):
        report = coverage_of([p("10.0.0.0/8")], PrefixSet.empty())
        assert report.fraction == 1.0

    def test_describe(self):
        reference = PrefixSet([p("10.0.0.0/8")])
        assert "covered" in coverage_of([p("10.0.0.0/9")], reference).describe()


class TestOnSyntheticWorld:
    def _reference(self, topology):
        return PrefixSet(a.prefix for a in topology.allocations)

    def test_no_single_bgp_source_covers_everything(self, topology, factory):
        reference = self._reference(topology)
        for name in ("MAE-WEST", "PAIX", "VBNS"):
            snapshot = factory.snapshot(source_by_name(name))
            report = coverage_of(snapshot.prefixes(), reference)
            assert report.fraction < 1.0

    def test_bigger_sources_cover_more(self, topology, factory):
        reference = self._reference(topology)
        oregon = coverage_of(
            factory.snapshot(source_by_name("OREGON")).prefixes(), reference
        )
        vbns = coverage_of(
            factory.snapshot(source_by_name("VBNS")).prefixes(), reference
        )
        assert oregon.fraction > vbns.fraction

    def test_marginal_coverage_monotone(self, topology, factory):
        reference = self._reference(topology)
        tables = [
            factory.snapshot(source)
            for source in factory.sources
            if source.kind != KIND_REGISTRY
        ]
        rows = marginal_coverage(tables, reference)
        assert len(rows) == len(tables)
        cumulative = [cum for _, _, cum in rows]
        assert cumulative == sorted(cumulative)  # union only grows
        assert all(own <= cum for _, own, cum in rows)

    def test_registry_dumps_complete_the_picture(self, topology, factory):
        """§3.1.1: registry blocks are the allocations themselves, so
        adding them closes (almost) all remaining gaps."""
        reference = self._reference(topology)
        bgp_tables = [
            factory.snapshot(source)
            for source in factory.sources
            if source.kind != KIND_REGISTRY
        ]
        union = PrefixSet(
            prefix for table in bgp_tables for prefix in table.prefixes()
        )
        without_registry = coverage_of(union, reference)
        arin = factory.snapshot(source_by_name("ARIN"))
        with_registry = coverage_of(
            list(union) + arin.prefixes(), reference
        )
        assert with_registry.fraction >= without_registry.fraction
        assert with_registry.fraction > 0.95
