"""Unit tests for the seeded routing delta stream (serve feeder).

The :class:`DeltaGenerator` replays §3.4's intra-day churn as an online
announce/withdraw stream: its base churn is calibrated against the
period-0 dynamic prefix set from :func:`study_dynamics`, with seeded
flap / deaggregation / aggregation events layered on top.
"""

from collections import Counter

import pytest

from repro.bgp.dynamics import study_dynamics
from repro.bgp.sources import source_by_name
from repro.bgp.synth import DeltaGenerator, RouteDelta

AADS = source_by_name("AADS")


class TestRouteDelta:
    def test_json_round_trip(self):
        from repro.net.prefix import Prefix

        delta = RouteDelta(
            op=RouteDelta.OP_ANNOUNCE,
            prefix=Prefix.from_cidr("192.0.2.0/24"),
            origin_asn=64500,
            source="AADS",
            reason="flap",
        )
        assert RouteDelta.from_json(delta.to_json()) == delta

    def test_wire_format_uses_type_key(self):
        import json

        from repro.net.prefix import Prefix

        delta = RouteDelta(
            op=RouteDelta.OP_WITHDRAW,
            prefix=Prefix.from_cidr("192.0.2.0/24"),
        )
        document = json.loads(delta.to_json())
        assert document["type"] == "withdraw"

    def test_invalid_op_rejected(self):
        from repro.net.prefix import Prefix

        with pytest.raises(ValueError):
            RouteDelta(op="update", prefix=Prefix.from_cidr("10.0.0.0/8"))


class TestDeltaGenerator:
    def test_deterministic_across_instances(self, factory):
        first = DeltaGenerator(factory, source=AADS, seed=77).events(200)
        second = DeltaGenerator(factory, source=AADS, seed=77).events(200)
        assert [d.to_json() for d in first] == [d.to_json() for d in second]

    def test_chunked_calls_concatenate(self, factory):
        """events() resumes: two 100-event calls equal one 200-event
        call, so a feeder can drain the stream at any granularity."""
        chunked = DeltaGenerator(factory, source=AADS, seed=77)
        stream = chunked.events(100) + chunked.events(100)
        whole = DeltaGenerator(factory, source=AADS, seed=77).events(200)
        assert [d.to_json() for d in stream] == [d.to_json() for d in whole]

    def test_seed_changes_stream(self, factory):
        first = DeltaGenerator(factory, source=AADS, seed=77).events(100)
        second = DeltaGenerator(factory, source=AADS, seed=78).events(100)
        assert [d.to_json() for d in first] != [d.to_json() for d in second]

    def test_withdraws_only_name_live_prefixes(self, factory):
        """The serve invariant: a withdraw always targets a prefix the
        stream has announced (or the day-0 snapshot contains), so the
        daemon never sees a structurally impossible delta."""
        generator = DeltaGenerator(factory, source=AADS, seed=5)
        live = set(factory.snapshot(AADS).prefix_set())
        for delta in generator.events(400):
            if delta.op == RouteDelta.OP_WITHDRAW:
                assert delta.prefix in live
                live.discard(delta.prefix)
            else:
                live.add(delta.prefix)

    def test_live_prefixes_tracks_stream(self, factory):
        generator = DeltaGenerator(factory, source=AADS, seed=5)
        live = set(factory.snapshot(AADS).prefix_set())
        for delta in generator.events(250):
            if delta.op == RouteDelta.OP_WITHDRAW:
                live.discard(delta.prefix)
            else:
                live.add(delta.prefix)
        assert set(generator.live_prefixes) == live

    def test_churn_calibrated_to_period_zero_dynamics(self, factory):
        """Base churn replays exactly the §3.4 period-0 dynamic set:
        every churn-reason delta names a prefix study_dynamics marks
        dynamic for the same source and seed."""
        report = study_dynamics(factory, AADS, periods=(0,))
        dynamic = report.periods[0].dynamic_prefixes
        generator = DeltaGenerator(factory, source=AADS, seed=factory.seed)
        churned = {
            delta.prefix
            for delta in generator.events(300)
            if delta.reason == "churn" and delta.prefix in
            report.periods[0].union_prefixes
        }
        day_zero = {
            delta.prefix
            for delta in DeltaGenerator(
                factory, source=AADS, seed=factory.seed
            ).events(60)
            if delta.reason == "churn"
        }
        assert day_zero <= dynamic
        assert churned  # the stream does carry calibrated churn

    def test_reason_mix_includes_synthetic_events(self, factory):
        generator = DeltaGenerator(factory, source=AADS, seed=9)
        reasons = Counter(d.reason for d in generator.events(400))
        assert reasons["churn"] > 0
        assert reasons["flap"] > 0
        assert set(reasons) <= {
            "churn", "flap", "deaggregation", "aggregation"
        }
