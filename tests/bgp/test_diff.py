"""Unit tests for routing-table diffing."""

from repro.bgp.diff import churn_series, diff_tables
from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotTime
from repro.bgp.table import RoutingTable
from repro.net.prefix import Prefix


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


class TestDiffTables:
    def _pair(self):
        old = RoutingTable("T", date="d0")
        old.add_prefix(p("10.0.0.0/8"), next_hop="a", as_path=(1,))
        old.add_prefix(p("172.16.0.0/12"), next_hop="a", as_path=(2,))
        old.add_prefix(p("192.0.2.0/24"), next_hop="a", as_path=(3,))
        new = RoutingTable("T", date="d1")
        new.add_prefix(p("10.0.0.0/8"), next_hop="a", as_path=(1,))       # same
        new.add_prefix(p("172.16.0.0/12"), next_hop="b", as_path=(2,))   # rehomed
        new.add_prefix(p("198.51.100.0/24"), next_hop="a", as_path=(4,))  # new
        return old, new

    def test_categories(self):
        old, new = self._pair()
        diff = diff_tables(old, new)
        assert diff.announced == (p("198.51.100.0/24"),)
        assert diff.withdrawn == (p("192.0.2.0/24"),)
        assert diff.changed == (p("172.16.0.0/12"),)
        assert diff.unchanged_count == 1
        assert diff.churned == 2
        assert diff.total_touched == 3

    def test_identical_tables(self):
        old, _ = self._pair()
        diff = diff_tables(old, old)
        assert diff.churned == 0
        assert diff.changed == ()
        assert diff.unchanged_count == 3

    def test_describe(self):
        old, new = self._pair()
        text = diff_tables(old, new).describe()
        assert "+1" in text and "-1" in text and "~1" in text


class TestChurnSeries:
    def test_pairwise_count(self, factory):
        source = source_by_name("AADS")
        snapshots = [
            factory.snapshot(source, SnapshotTime(day)) for day in range(4)
        ]
        series = churn_series(snapshots)
        assert len(series) == 3

    def test_day_to_day_churn_small(self, factory):
        """Consecutive snapshots flip only a small prefix fraction —
        §3.4's stability finding at diff granularity."""
        source = source_by_name("OREGON")
        snapshots = [
            factory.snapshot(source, SnapshotTime(day)) for day in range(3)
        ]
        for diff in churn_series(snapshots):
            total = diff.unchanged_count + diff.total_touched
            assert diff.churned / total < 0.1

    def test_union_of_flips_is_dynamic_set(self, factory):
        """The diffs decompose the dynamics study: flipped prefixes
        across the series equal union - intersection of the tables."""
        source = source_by_name("AADS")
        snapshots = [
            factory.snapshot(source, SnapshotTime(day)) for day in range(3)
        ]
        flipped = set()
        for diff in churn_series(snapshots):
            flipped.update(diff.announced)
            flipped.update(diff.withdrawn)
        sets = [s.prefix_set() for s in snapshots]
        union = set().union(*sets)
        intersection = sets[0] & sets[1] & sets[2]
        # Every flipped prefix is dynamic; a prefix absent from the
        # middle snapshot only (present at both ends) is also caught.
        assert flipped <= union - intersection or flipped == set()
        dynamic = union - intersection
        # Anything dynamic must have flipped in some interval unless it
        # changed only between non-adjacent snapshots we did not diff.
        assert dynamic <= flipped
