"""Unit tests for the BGP dynamics study (§3.4)."""

from repro.bgp.dynamics import snapshot_times, study_dynamics
from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotTime


class TestSnapshotTimes:
    def test_subdaily_source_gets_intraday_slots(self):
        times = snapshot_times(0, update_hours=2.0)
        assert len(times) > 1
        assert all(t.day == 0 for t in times)

    def test_daily_source_gets_single_slot(self):
        times = snapshot_times(0, update_hours=24.0)
        assert times == [SnapshotTime(0, 0)]

    def test_period_extends_days(self):
        times = snapshot_times(3, update_hours=24.0)
        assert [t.day for t in times] == [0, 1, 2, 3]


class TestStudyDynamics:
    def test_period_zero_has_nonzero_effect_for_subdaily_source(self, factory):
        """Table 4's first column: intra-day churn alone produces a
        dynamic prefix set."""
        report = study_dynamics(factory, source_by_name("AADS"), periods=(0,))
        assert report.periods[0].maximum_effect > 0

    def test_maximum_effect_monotone_in_period(self, factory):
        report = study_dynamics(
            factory, source_by_name("AADS"), periods=(0, 1, 4, 7, 14)
        )
        effects = [e.maximum_effect for e in report.periods]
        assert effects == sorted(effects)

    def test_dynamic_fraction_stays_small(self, factory):
        """The paper's conclusion: clustering is immune to BGP dynamics
        because the dynamic set stays a small fraction of the table."""
        report = study_dynamics(factory, source_by_name("AADS"), periods=(14,))
        assert report.periods[0].dynamic_fraction < 0.15

    def test_dynamic_set_is_subset_of_union(self, factory):
        report = study_dynamics(factory, source_by_name("AADS"), periods=(4,))
        effect = report.periods[0]
        assert effect.dynamic_prefixes <= effect.union_prefixes

    def test_effect_on_prefixes_projection(self, factory):
        report = study_dynamics(factory, source_by_name("AADS"), periods=(0, 7))
        union = list(report.periods[0].union_prefixes)
        used = union[:50]
        rows = report.effect_on_prefixes(used)
        assert len(rows) == 2
        for period_days, used_count, dynamic_count in rows:
            assert 0 <= dynamic_count <= used_count <= len(used)

    def test_effect_on_disjoint_prefixes_is_zero(self, factory):
        from repro.net.prefix import Prefix

        report = study_dynamics(factory, source_by_name("AADS"), periods=(1,))
        foreign = [Prefix.from_cidr("203.0.113.0/24")]
        ((_, used, dynamic),) = report.effect_on_prefixes(foreign)
        assert used == 0 and dynamic == 0
