"""Failure-injection tests: the pipeline must survive dirty inputs.

Real dump files and logs contain truncation, binary noise, duplicate
and conflicting entries; §3.1's collection scripts tolerated them and
so must we — by skipping bad records loudly-countably, never by
crashing or silently mis-parsing.
"""


from repro.bgp.archive import load_snapshot, save_snapshot
from repro.bgp.table import MergedPrefixTable, RoutingTable
from repro.net.prefix import Prefix
from repro.weblog.parser import ParseReport, parse_clf_lines


class TestDirtyDumps:
    def test_binary_noise_skipped(self):
        lines = [
            "10.0.0.0/8\thop\t1",
            "\x00\x01\x02 binary garbage \xff",
            "192.0.2.0/24\thop\t2",
        ]
        table = RoutingTable.from_lines("T", lines)
        assert len(table) == 2

    def test_truncated_line_skipped(self):
        table = RoutingTable.from_lines("T", ["10.0.0.0/"])
        assert len(table) == 0

    def test_empty_dump(self):
        table = RoutingTable.from_lines("T", [])
        assert len(table) == 0
        assert table.prefixes() == []

    def test_all_comments_dump(self):
        table = RoutingTable.from_lines("T", ["# a", "# b", ""])
        assert len(table) == 0

    def test_duplicate_prefix_last_wins(self):
        lines = ["10.0.0.0/8\tfirst\t1", "10.0.0.0/8\tsecond\t2"]
        table = RoutingTable.from_lines("T", lines)
        assert len(table) == 1
        assert table.get(Prefix.from_cidr("10.0.0.0/8")).next_hop == "second"

    def test_whitespace_variants(self):
        lines = ["  10.0.0.0/8  ", "\t192.0.2.0/24\thop\t5\t"]
        table = RoutingTable.from_lines("T", lines)
        assert len(table) == 2

    def test_merge_of_empty_tables(self):
        merged = MergedPrefixTable.from_tables(
            [RoutingTable("A"), RoutingTable("B")]
        )
        assert len(merged) == 0
        assert merged.lookup(12345) is None


class TestDirtyArchives:
    def test_corrupted_archive_file_partially_loads(self, tmp_path):
        table = RoutingTable("T")
        table.add_prefix(Prefix.from_cidr("10.0.0.0/8"))
        table.add_prefix(Prefix.from_cidr("192.0.2.0/24"))
        path = tmp_path / "t.dump"
        save_snapshot(table, path)
        # Corrupt the middle of the file.
        content = path.read_text().splitlines()
        content.insert(4, "!!corrupted record!!")
        path.write_text("\n".join(content) + "\n")
        loaded = load_snapshot(path)
        assert len(loaded) == 2  # both good records survive

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "h.dump"
        path.write_text("# source: X\n# kind: bgp\n# date: d0\n")
        loaded = load_snapshot(path)
        assert loaded.name == "X"
        assert len(loaded) == 0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.dump"
        path.write_text("")
        loaded = load_snapshot(path)
        assert len(loaded) == 0


class TestDirtyLogs:
    def test_log_with_every_failure_mode(self):
        lines = [
            "",                                    # blank
            "\x00binary\x01",                      # binary noise
            "not a log line at all",               # garbage
            '1.2.3.4 - - [not a date] "GET /x HTTP/1.0" 200 1',   # bad time
            '1.2.3.999 - - [13/Feb/1998:00:00:00 +0000] "GET /x HTTP/1.0" 200 1',
            '0.0.0.0 - - [13/Feb/1998:00:00:00 +0000] "GET /x HTTP/1.0" 200 1',
            '1.2.3.4 - - [13/Feb/1998:00:00:00 +0000] "GET /ok HTTP/1.0" 200 1',
        ]
        report = ParseReport()
        log = parse_clf_lines("dirty", lines, report)
        assert len(log) == 1
        assert log.entries[0].url == "/ok"
        assert report.malformed == 4
        assert report.null_client == 1

    def test_clustering_empty_log(self, merged_table):
        from repro.core.clustering import cluster_log
        from repro.weblog.parser import WebLog

        result = cluster_log(WebLog("empty"), merged_table)
        assert len(result) == 0
        assert result.clustered_fraction == 1.0
