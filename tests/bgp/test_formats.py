"""Unit tests for the three prefix dump formats and unification."""

import pytest

from repro.bgp.formats import (
    FORMAT_CLASSFUL,
    FORMAT_DOTTED_NETMASK,
    FORMAT_MASK_LENGTH,
    DumpLimitError,
    DumpReport,
    detect_format,
    iter_dump_routes,
    pad_dropped_zeroes,
    parse_entry,
    render_entry,
    unify,
)
from repro.net.ipv4 import AddressError
from repro.net.prefix import Prefix


class TestPadDroppedZeroes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("151.198", "151.198.0.0"),
            ("151", "151.0.0.0"),
            ("151.198.194", "151.198.194.0"),
            ("151.198.194.16", "151.198.194.16"),
            ("255.255.224", "255.255.224.0"),
        ],
    )
    def test_pads(self, text, expected):
        assert pad_dropped_zeroes(text) == expected

    def test_rejects_empty(self):
        with pytest.raises(AddressError):
            pad_dropped_zeroes("")

    def test_rejects_too_many_octets(self):
        with pytest.raises(AddressError):
            pad_dropped_zeroes("1.2.3.4.5")


class TestDetectFormat:
    @pytest.mark.parametrize(
        "entry,fmt",
        [
            ("12.65.128.0/255.255.224.0", FORMAT_DOTTED_NETMASK),
            ("151.198/255.255", FORMAT_DOTTED_NETMASK),
            ("12.65.128.0/19", FORMAT_MASK_LENGTH),
            ("151.198.194.0", FORMAT_CLASSFUL),
            ("18.0.0.0", FORMAT_CLASSFUL),
        ],
    )
    def test_detects(self, entry, fmt):
        assert detect_format(entry) == fmt


class TestParseEntry:
    def test_dotted_netmask_full(self):
        assert parse_entry("12.65.128.0/255.255.224.0") == Prefix.from_cidr(
            "12.65.128.0/19"
        )

    def test_dotted_netmask_with_dropped_zeroes(self):
        # Format (i) drops trailing zero octets from both halves.
        assert parse_entry("151.198/255.255") == Prefix.from_cidr("151.198.0.0/16")

    def test_mask_length(self):
        assert parse_entry("24.48.2.0/23") == Prefix.from_cidr("24.48.2.0/23")

    def test_classful_class_a(self):
        assert parse_entry("18.0.0.0") == Prefix.from_cidr("18.0.0.0/8")

    def test_classful_class_b(self):
        assert parse_entry("151.198.0.0") == Prefix.from_cidr("151.198.0.0/16")

    def test_classful_class_c(self):
        assert parse_entry("192.4.5.0") == Prefix.from_cidr("192.4.5.0/24")

    def test_forced_format_overrides_detection(self):
        # "18.0.0.0/8" forced to dotted-netmask must fail (8 is not a
        # dotted quad), proving fmt is honoured.
        with pytest.raises(AddressError):
            parse_entry("18.0.0.0/8", fmt=FORMAT_DOTTED_NETMASK)

    def test_strips_whitespace(self):
        assert parse_entry("  10.0.0.0/8 ") == Prefix.from_cidr("10.0.0.0/8")

    @pytest.mark.parametrize("entry", ["", "/", "a.b.c.d/8", "10.0.0.0/ab",
                                       "10.0.0.0/255.0.255.0"])
    def test_rejects_garbage(self, entry):
        with pytest.raises(AddressError):
            parse_entry(entry)

    def test_unknown_format_rejected(self):
        with pytest.raises(AddressError):
            parse_entry("10.0.0.0/8", fmt="sixteen-segment")


class TestRenderEntry:
    def test_standard_format_is_dotted_netmask(self):
        prefix = Prefix.from_cidr("12.65.128.0/19")
        assert render_entry(prefix) == "12.65.128.0/255.255.224.0"

    def test_mask_length(self):
        prefix = Prefix.from_cidr("12.65.128.0/19")
        assert render_entry(prefix, FORMAT_MASK_LENGTH) == "12.65.128.0/19"

    def test_classful_only_for_classful_lengths(self):
        assert render_entry(
            Prefix.from_cidr("18.0.0.0/8"), FORMAT_CLASSFUL
        ) == "18.0.0.0"
        with pytest.raises(AddressError):
            render_entry(Prefix.from_cidr("18.0.0.0/9"), FORMAT_CLASSFUL)

    def test_unknown_format(self):
        with pytest.raises(AddressError):
            render_entry(Prefix.from_cidr("10.0.0.0/8"), "hex")


class TestUnify:
    @pytest.mark.parametrize(
        "entry,expected",
        [
            ("12.65.128.0/19", "12.65.128.0/255.255.224.0"),
            ("151.198/255.255", "151.198.0.0/255.255.0.0"),
            ("18.0.0.0", "18.0.0.0/255.0.0.0"),
            ("192.4.5.0", "192.4.5.0/255.255.255.0"),
        ],
    )
    def test_unifies_all_formats_to_standard(self, entry, expected):
        assert unify(entry) == expected

    def test_round_trip_through_all_formats(self):
        prefix = Prefix.from_cidr("24.48.2.0/23")
        for fmt in (FORMAT_DOTTED_NETMASK, FORMAT_MASK_LENGTH):
            assert parse_entry(render_entry(prefix, fmt)) == prefix


class TestIterDumpRoutes:
    """Count-and-skip hygiene for dirty snapshots (§3.1.1 tolerance)."""

    DIRTY = [
        "# router dump header\n",
        "\n",
        "12.65.128.0/19\thop1\t7018\n",
        "show ip bgp: connection refused\n",
        "24.48.2.0/255.255.254.0 hop2 64500\n",
        "   \n",
        "999.999.999.999/8\n",
        "151.198.194.0\n",
    ]

    def test_skips_and_counts_malformed_lines(self):
        report = DumpReport()
        routes = list(iter_dump_routes(self.DIRTY, report=report))
        assert [str(prefix.cidr) for prefix, _ in routes] == [
            "12.65.128.0/19", "24.48.2.0/23", "151.198.0.0/16",
        ]
        assert report.total_lines == len(self.DIRTY)
        assert report.parsed == 3
        assert report.malformed == 2
        assert report.skipped == 3  # comment + two blank-ish lines

    def test_fields_carry_next_hop_and_path(self):
        (_, fields), = iter_dump_routes(["12.65.128.0/19\thop1\t7018\n"])
        assert fields == ["12.65.128.0/19", "hop1", "7018"]

    def test_max_errors_budget_trips(self):
        with pytest.raises(DumpLimitError, match="max_errors=1"):
            list(iter_dump_routes(self.DIRTY, max_errors=1))

    def test_max_errors_zero_means_one_bad_line_is_fatal(self):
        with pytest.raises(DumpLimitError):
            list(iter_dump_routes(["garbage here\n"], max_errors=0))

    def test_strict_reraises_first_error(self):
        with pytest.raises((AddressError, ValueError)):
            list(iter_dump_routes(self.DIRTY, strict=True))

    def test_clean_dump_reports_no_damage(self):
        report = DumpReport()
        routes = list(iter_dump_routes(
            ["10.0.0.0/8\n", "11.0.0.0/8\n"], report=report, max_errors=0
        ))
        assert len(routes) == 2
        assert report.malformed == 0


class TestRoutingTableFromDirtyLines:
    def test_from_lines_tolerates_garbage_by_default(self):
        from repro.bgp.table import RoutingTable

        report = DumpReport()
        table = RoutingTable.from_lines(
            "dirty", TestIterDumpRoutes.DIRTY, report=report
        )
        assert len(table) == 3
        assert report.malformed == 2

    def test_from_lines_strict_still_raises(self):
        from repro.bgp.table import RoutingTable

        with pytest.raises((AddressError, ValueError)):
            RoutingTable.from_lines(
                "dirty", TestIterDumpRoutes.DIRTY, strict=True
            )
