"""Unit tests for the Table 1 source collection."""

import pytest

from repro.bgp.sources import DEFAULT_SOURCES, SourceSpec, source_by_name
from repro.bgp.table import KIND_BGP, KIND_FORWARDING, KIND_REGISTRY


def test_fourteen_sources_like_table1():
    assert len(DEFAULT_SOURCES) == 14
    names = {spec.name for spec in DEFAULT_SOURCES}
    assert names == {
        "AADS", "ARIN", "AT&T-BGP", "AT&T-Forw", "CANET", "CERFNET",
        "MAE-EAST", "MAE-WEST", "NLANR", "OREGON", "PACBELL", "PAIX",
        "SINGAREN", "VBNS",
    }


def test_registry_sources_are_arin_and_nlanr():
    registries = {s.name for s in DEFAULT_SOURCES if s.kind == KIND_REGISTRY}
    assert registries == {"ARIN", "NLANR"}


def test_forwarding_source_is_att():
    forwarding = [s for s in DEFAULT_SOURCES if s.kind == KIND_FORWARDING]
    assert [s.name for s in forwarding] == ["AT&T-Forw"]
    # Forwarding tables carry customer specifics (> /24) — that is what
    # puts the long prefixes of Table 3 into the merged table.
    assert forwarding[0].keeps_specifics


def test_registry_dumps_carry_filler_blocks():
    for name in ("ARIN", "NLANR"):
        assert source_by_name(name).filler_blocks > 0
    for spec in DEFAULT_SOURCES:
        if spec.kind == KIND_BGP:
            assert spec.filler_blocks == 0


def test_relative_visibility_ordering_matches_table1():
    """Size ordering from the paper: OREGON is the biggest BGP view,
    CANET/VBNS tiny, ARIN the biggest registry."""
    vis = {s.name: s.visibility for s in DEFAULT_SOURCES}
    assert vis["OREGON"] > vis["MAE-EAST"] > vis["MAE-WEST"] > vis["PAIX"]
    assert vis["CANET"] < 0.1 and vis["VBNS"] < 0.1
    assert vis["ARIN"] > vis["NLANR"]


def test_source_by_name_unknown_raises():
    with pytest.raises(KeyError):
        source_by_name("ROUTEVIEWS-2026")


def test_spec_validates_visibility():
    with pytest.raises(ValueError):
        SourceSpec("X", KIND_BGP, "mask_length", 1.5)
