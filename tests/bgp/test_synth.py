"""Unit/integration tests for snapshot synthesis."""

from repro.bgp.sources import source_by_name
from repro.bgp.synth import SnapshotFactory, SnapshotTime
from repro.bgp.table import KIND_REGISTRY


class TestDeterminism:
    def test_same_time_same_snapshot(self, topology):
        factory = SnapshotFactory(topology)
        a = factory.snapshot(source_by_name("OREGON"), SnapshotTime(3, 0))
        b = factory.snapshot(source_by_name("OREGON"), SnapshotTime(3, 0))
        assert a.prefix_set() == b.prefix_set()

    def test_two_factories_agree(self, topology):
        a = SnapshotFactory(topology).snapshot(source_by_name("AADS"))
        b = SnapshotFactory(topology).snapshot(source_by_name("AADS"))
        assert a.prefix_set() == b.prefix_set()


class TestVisibilityModel:
    def test_relative_sizes_follow_visibility(self, factory):
        oregon = factory.snapshot(source_by_name("OREGON"))
        paix = factory.snapshot(source_by_name("PAIX"))
        vbns = factory.snapshot(source_by_name("VBNS"))
        assert len(oregon) > len(paix) > len(vbns)

    def test_no_source_sees_everything(self, topology, factory):
        announcements = {prefix for prefix, _ in topology.announced_routes()}
        for source in factory.sources:
            if source.kind == KIND_REGISTRY:
                continue
            snapshot = factory.snapshot(source)
            assert snapshot.prefix_set() <= announcements | set()
            assert len(snapshot) < len(announcements)

    def test_merged_covers_more_than_any_single_source(self, factory):
        merged = factory.merged()
        for source in factory.sources:
            assert len(merged) >= len(factory.snapshot(source))

    def test_nap_sources_filter_long_prefixes(self, factory):
        """NAP route servers carry almost no > /24 prefixes; the AT&T
        forwarding table carries many (§ sources docstring)."""
        mae = factory.snapshot(source_by_name("MAE-WEST"))
        forwarding = factory.snapshot(source_by_name("AT&T-Forw"))

        def long_fraction(table):
            histogram = table.prefix_length_histogram()
            total = sum(histogram.values())
            longer = sum(c for length, c in histogram.items() if length > 24)
            return longer / total if total else 0.0

        assert long_fraction(mae) < 0.02
        assert long_fraction(forwarding) > 0.05

    def test_snapshot_next_hops_and_paths_populated(self, factory):
        snapshot = factory.snapshot(source_by_name("OREGON"))
        entry = next(iter(snapshot))
        assert entry.next_hop
        assert entry.as_path


class TestRegistryDumps:
    def test_registry_contains_filler(self, factory):
        arin = factory.snapshot(source_by_name("ARIN"))
        assert len(arin) > source_by_name("ARIN").filler_blocks

    def test_filler_blocks_do_not_cover_allocations(self, topology, factory):
        """Filler lives in high address space the allocator never uses,
        so it can never capture a real client."""
        arin = factory.snapshot(source_by_name("ARIN"))
        allocation_prefixes = {a.prefix for a in topology.allocations}
        for prefix in arin.prefixes():
            if prefix in allocation_prefixes:
                continue
            for allocation in topology.allocations:
                assert not prefix.overlaps(allocation.prefix)

    def test_registry_dump_is_time_invariant(self, factory):
        a = factory.snapshot(source_by_name("NLANR"), SnapshotTime(0))
        b = factory.snapshot(source_by_name("NLANR"), SnapshotTime(14))
        assert a.prefix_set() == b.prefix_set()


class TestChurn:
    def test_tables_mostly_stable_day_to_day(self, factory):
        source = source_by_name("OREGON")
        day0 = factory.snapshot(source, SnapshotTime(0)).prefix_set()
        day1 = factory.snapshot(source, SnapshotTime(1)).prefix_set()
        overlap = len(day0 & day1) / max(1, len(day0 | day1))
        assert overlap > 0.9

    def test_intraday_slots_differ_slightly(self, factory):
        source = source_by_name("AADS")
        slot0 = factory.snapshot(source, SnapshotTime(0, 0)).prefix_set()
        slot1 = factory.snapshot(source, SnapshotTime(0, 1)).prefix_set()
        assert slot0 != slot1
        overlap = len(slot0 & slot1) / max(1, len(slot0 | slot1))
        assert overlap > 0.9

    def test_late_arrivals_grow_tables(self, factory):
        source = source_by_name("OREGON")
        early = len(factory.snapshot(source, SnapshotTime(0)))
        late = len(factory.snapshot(source, SnapshotTime(14)))
        assert late > early


class TestMergedCoverage:
    def test_registry_extends_bgp_coverage(self, factory):
        with_registry = factory.merged()
        without = factory.merged_without_registry()
        assert len(with_registry) > len(without)

    def test_merged_lookup_matches_some_client(self, topology, factory):
        import random

        merged = factory.merged()
        rng = random.Random(5)
        hits = 0
        samples = 200
        for leaf in rng.sample(topology.leaf_networks, samples):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            if merged.lookup(host) is not None:
                hits += 1
        assert hits / samples > 0.99
