"""Unit tests for routing tables and the merged prefix table."""

import pytest

from repro.bgp.table import (
    KIND_BGP,
    KIND_FORWARDING,
    KIND_REGISTRY,
    MergedPrefixTable,
    RouteEntry,
    RoutingTable,
)
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


class TestRoutingTable:
    def test_add_and_lookup(self):
        table = RoutingTable("T")
        table.add_prefix(p("10.0.0.0/8"), next_hop="hop1", as_path=(1, 2))
        assert len(table) == 1
        assert p("10.0.0.0/8") in table
        entry = table.get(p("10.0.0.0/8"))
        assert entry.next_hop == "hop1"
        assert entry.origin_as == 2

    def test_replace_same_prefix(self):
        table = RoutingTable("T")
        table.add_prefix(p("10.0.0.0/8"), next_hop="old")
        table.add_prefix(p("10.0.0.0/8"), next_hop="new")
        assert len(table) == 1
        assert table.get(p("10.0.0.0/8")).next_hop == "new"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            RoutingTable("T", kind="telepathy")

    def test_prefixes_sorted(self):
        table = RoutingTable("T")
        for cidr in ("192.0.2.0/24", "10.0.0.0/8", "10.0.0.0/16"):
            table.add_prefix(p(cidr))
        assert [x.cidr for x in table.prefixes()] == [
            "10.0.0.0/8", "10.0.0.0/16", "192.0.2.0/24"
        ]

    def test_prefix_length_histogram(self):
        table = RoutingTable("T")
        for cidr in ("10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16"):
            table.add_prefix(p(cidr))
        assert table.prefix_length_histogram() == {8: 1, 16: 2}

    def test_origin_as_empty_path(self):
        assert RouteEntry(p("10.0.0.0/8")).origin_as is None


class TestDumpRoundTrip:
    def test_bgp_lines_round_trip(self):
        table = RoutingTable("T", kind=KIND_BGP)
        table.add_prefix(p("10.0.0.0/8"), next_hop="peer1.t.net", as_path=(7, 9))
        table.add_prefix(p("192.0.2.0/24"), next_hop="peer2.t.net", as_path=(7,))
        lines = list(table.to_lines())
        parsed = RoutingTable.from_lines("T2", lines)
        assert parsed.prefix_set() == table.prefix_set()
        assert parsed.get(p("10.0.0.0/8")).as_path == (7, 9)
        assert parsed.get(p("192.0.2.0/24")).next_hop == "peer2.t.net"

    def test_registry_lines_have_prefix_only(self):
        table = RoutingTable("R", kind=KIND_REGISTRY)
        table.add_prefix(p("151.198.0.0/16"))
        (line,) = list(table.to_lines())
        assert "\t" not in line

    def test_from_lines_skips_garbage_by_default(self):
        lines = [
            "# comment",
            "",
            "not a prefix at all",
            "10.0.0.0/8\thop\t5",
        ]
        table = RoutingTable.from_lines("T", lines)
        assert len(table) == 1

    def test_from_lines_strict_raises(self):
        with pytest.raises(Exception):
            RoutingTable.from_lines("T", ["999.0.0.0/8"], strict=True)

    def test_from_lines_bad_as_path_tolerated(self):
        table = RoutingTable.from_lines("T", ["10.0.0.0/8\thop\tnot numbers"])
        assert table.get(p("10.0.0.0/8")).as_path == ()

    def test_from_lines_mixed_formats(self):
        lines = ["18.0.0.0", "10.0.0.0/8", "151.198/255.255"]
        table = RoutingTable.from_lines("T", lines)
        assert table.prefix_set() == {
            p("18.0.0.0/8"), p("10.0.0.0/8"), p("151.198.0.0/16")
        }


class TestMergedPrefixTable:
    def _tables(self):
        bgp = RoutingTable("B", kind=KIND_BGP)
        bgp.add_prefix(p("10.0.0.0/8"), next_hop="bgp-hop")
        forwarding = RoutingTable("F", kind=KIND_FORWARDING)
        forwarding.add_prefix(p("10.0.0.0/8"), next_hop="fwd-hop")
        forwarding.add_prefix(p("10.1.0.0/16"), next_hop="fwd-hop")
        registry = RoutingTable("R", kind=KIND_REGISTRY)
        registry.add_prefix(p("10.0.0.0/8"))
        registry.add_prefix(p("172.16.0.0/12"))
        return bgp, forwarding, registry

    def test_union_size(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        assert len(merged) == 3
        assert merged.tables_merged == 3

    def test_lookup_longest_match(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        result = merged.lookup(parse_ipv4("10.1.2.3"))
        assert result.prefix == p("10.1.0.0/16")
        result = merged.lookup(parse_ipv4("10.200.0.1"))
        assert result.prefix == p("10.0.0.0/8")
        assert merged.lookup(parse_ipv4("8.8.8.8")) is None

    def test_provenance_priority_bgp_over_registry(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        shared = merged.lookup(parse_ipv4("10.200.0.1"))
        assert shared.source_kind == KIND_BGP
        assert not shared.from_registry

    def test_registry_only_prefix_labelled(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        registry_hit = merged.lookup(parse_ipv4("172.16.5.5"))
        assert registry_hit.source_kind == KIND_REGISTRY
        assert registry_hit.from_registry

    def test_priority_independent_of_merge_order(self):
        bgp, forwarding, registry = self._tables()
        merged = MergedPrefixTable.from_tables([registry, forwarding, bgp])
        shared = merged.lookup(parse_ipv4("10.200.0.1"))
        assert shared.source_kind == KIND_BGP

    def test_kind_counts(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        counts = merged.kind_counts()
        assert counts[KIND_BGP] == 1            # 10/8 won by BGP
        assert counts[KIND_FORWARDING] == 1     # 10.1/16
        assert counts[KIND_REGISTRY] == 1       # 172.16/12

    def test_contains(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        assert p("10.1.0.0/16") in merged
        assert p("10.2.0.0/16") not in merged

    def test_histogram(self):
        merged = MergedPrefixTable.from_tables(self._tables())
        assert merged.prefix_length_histogram() == {8: 1, 16: 1, 12: 1}
