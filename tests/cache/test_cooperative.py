"""Unit/integration tests for co-operative proxy clusters (§4.1.4)."""

import pytest

from repro.bgp.table import MergedPrefixTable, RoutingTable
from repro.cache.cooperative import CooperativeSimulator
from repro.core.clustering import cluster_log
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix
from repro.weblog.catalog import UrlCatalog
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog


def two_cluster_world():
    """Two clusters whose clients request the same URL in sequence."""
    catalog = UrlCatalog(4, seed=1, start_time=0.0, duration_seconds=86400.0,
                         immutable_fraction=1.0)
    url = catalog.url(0)
    entries = [
        LogEntry(parse_ipv4("10.0.0.1"), 10.0, url, size=catalog.size_of(url)),
        LogEntry(parse_ipv4("10.0.1.1"), 20.0, url, size=catalog.size_of(url)),
    ]
    log = WebLog("tiny", entries)
    table = RoutingTable("T")
    table.add_prefix(Prefix.from_cidr("10.0.0.0/24"))
    table.add_prefix(Prefix.from_cidr("10.0.1.0/24"))
    merged = MergedPrefixTable()
    merged.add_table(table)
    clusters = cluster_log(log, merged)
    return log, catalog, clusters


class TestSiblingHits:
    def test_shared_site_turns_miss_into_sibling_hit(self):
        log, catalog, clusters = two_cluster_world()
        same_site = {c.identifier: 0 for c in clusters.clusters}
        simulator = CooperativeSimulator(log, catalog, clusters, same_site)
        result = simulator.run(cache_bytes=None, cooperate=True)
        assert result.sibling_hits == 1
        assert result.misses == 1  # only the cold fetch
        assert result.hit_ratio == 0.5

    def test_without_cooperation_both_miss(self):
        log, catalog, clusters = two_cluster_world()
        same_site = {c.identifier: 0 for c in clusters.clusters}
        simulator = CooperativeSimulator(log, catalog, clusters, same_site)
        result = simulator.run(cache_bytes=None, cooperate=False)
        assert result.sibling_hits == 0
        assert result.misses == 2

    def test_different_sites_never_cooperate(self):
        log, catalog, clusters = two_cluster_world()
        separate = {
            c.identifier: i for i, c in enumerate(clusters.clusters)
        }
        simulator = CooperativeSimulator(log, catalog, clusters, separate)
        result = simulator.run(cache_bytes=None, cooperate=True)
        assert result.sibling_hits == 0

    def test_requester_caches_transferred_copy(self):
        """After a sibling hit, the requesting proxy serves its next
        access locally."""
        catalog = UrlCatalog(4, seed=1, start_time=0.0,
                             duration_seconds=86400.0, immutable_fraction=1.0)
        url = catalog.url(0)
        entries = [
            LogEntry(parse_ipv4("10.0.0.1"), 10.0, url,
                     size=catalog.size_of(url)),
            LogEntry(parse_ipv4("10.0.1.1"), 20.0, url,
                     size=catalog.size_of(url)),
            LogEntry(parse_ipv4("10.0.1.2"), 30.0, url,
                     size=catalog.size_of(url)),
        ]
        log = WebLog("t", entries)
        table = RoutingTable("T")
        table.add_prefix(Prefix.from_cidr("10.0.0.0/24"))
        table.add_prefix(Prefix.from_cidr("10.0.1.0/24"))
        merged = MergedPrefixTable()
        merged.add_table(table)
        clusters = cluster_log(log, merged)
        same_site = {c.identifier: 0 for c in clusters.clusters}
        result = CooperativeSimulator(log, catalog, clusters, same_site).run(
            cache_bytes=None
        )
        assert result.misses == 1        # one cold fetch
        assert result.sibling_hits == 1  # second proxy borrows
        assert result.local_hits == 1    # third request: local at proxy 2


class TestOnRealWorkload:
    def test_cooperation_never_hurts(self, nagano_log, merged_table,
                                      topology):
        from repro.core.placement import plan_placement
        from repro.simnet.geo import GeoModel

        clusters = cluster_log(nagano_log.log, merged_table)
        plan = plan_placement(clusters, topology, GeoModel(topology))
        simulator = CooperativeSimulator.from_placement(
            nagano_log.log, nagano_log.catalog, clusters, plan
        )
        with_coop = simulator.run(cache_bytes=2_000_000, cooperate=True)
        without = simulator.run(cache_bytes=2_000_000, cooperate=False)
        assert with_coop.hit_ratio >= without.hit_ratio - 1e-9
        assert with_coop.sibling_hits > 0
        assert with_coop.num_sites <= with_coop.num_proxies
        assert "sites" in with_coop.describe()

    def test_default_sites_match_no_cooperation(self, nagano_log,
                                                merged_table):
        clusters = cluster_log(nagano_log.log, merged_table)
        simulator = CooperativeSimulator(
            nagano_log.log, nagano_log.catalog, clusters
        )
        cooperative = simulator.run(cache_bytes=1_000_000, cooperate=True)
        isolated = simulator.run(cache_bytes=1_000_000, cooperate=False)
        # Singleton sites: co-operation has nobody to talk to.
        assert cooperative.sibling_hits == 0
        assert cooperative.hit_ratio == pytest.approx(isolated.hit_ratio)
