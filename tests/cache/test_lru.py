"""Unit tests for the byte-capacity LRU cache."""

import pytest

from repro.cache.lru import CacheItem, LruCache


def item(url: str, size: int, fetched: float = 0.0, ttl: float = 100.0):
    return CacheItem(url=url, size=size, fetched_at=fetched,
                     expires_at=fetched + ttl)


class TestBasicOps:
    def test_put_get(self):
        cache = LruCache(1000)
        assert cache.put(item("/a", 100))
        got = cache.get("/a")
        assert got is not None and got.size == 100
        assert "/a" in cache
        assert cache.used_bytes == 100
        assert len(cache) == 1

    def test_get_missing(self):
        cache = LruCache(1000)
        assert cache.get("/nope") is None

    def test_replace_updates_bytes(self):
        cache = LruCache(1000)
        cache.put(item("/a", 100))
        cache.put(item("/a", 300))
        assert cache.used_bytes == 300
        assert len(cache) == 1

    def test_remove(self):
        cache = LruCache(1000)
        cache.put(item("/a", 100))
        assert cache.remove("/a")
        assert not cache.remove("/a")
        assert cache.used_bytes == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(-5)


class TestEviction:
    def test_lru_order(self):
        cache = LruCache(300)
        cache.put(item("/a", 100))
        cache.put(item("/b", 100))
        cache.put(item("/c", 100))
        cache.get("/a")          # /a becomes most recently used
        cache.put(item("/d", 100))  # evicts /b (least recently used)
        assert "/a" in cache and "/c" in cache and "/d" in cache
        assert "/b" not in cache
        assert cache.evictions == 1

    def test_peek_does_not_touch_recency(self):
        cache = LruCache(200)
        cache.put(item("/a", 100))
        cache.put(item("/b", 100))
        cache.peek("/a")
        cache.put(item("/c", 100))  # /a still LRU -> evicted
        assert "/a" not in cache and "/b" in cache

    def test_multi_eviction_for_large_item(self):
        cache = LruCache(300)
        for url in ("/a", "/b", "/c"):
            cache.put(item(url, 100))
        cache.put(item("/big", 250))
        assert "/big" in cache
        assert cache.used_bytes <= 300

    def test_item_bigger_than_capacity_rejected(self):
        cache = LruCache(100)
        assert not cache.put(item("/huge", 500))
        assert "/huge" not in cache

    def test_oversize_replacement_removes_old_copy(self):
        cache = LruCache(100)
        cache.put(item("/a", 50))
        assert not cache.put(item("/a", 500))
        assert "/a" not in cache
        assert cache.used_bytes == 0

    def test_infinite_capacity_never_evicts(self):
        cache = LruCache(None)
        for index in range(1000):
            cache.put(item(f"/{index}", 10_000))
        assert len(cache) == 1000
        assert cache.evictions == 0


class TestExpiry:
    def test_fresh_at(self):
        it = item("/a", 10, fetched=0.0, ttl=100.0)
        assert it.fresh_at(50.0)
        assert not it.fresh_at(100.0)

    def test_expired_items_scan(self):
        cache = LruCache(None)
        cache.put(item("/old", 10, fetched=0.0, ttl=10.0))
        cache.put(item("/new", 10, fetched=95.0, ttl=100.0))
        expired = [it.url for it in cache.expired_items(100.0)]
        assert expired == ["/old"]

    def test_items_iterates_lru_first(self):
        cache = LruCache(None)
        cache.put(item("/a", 10))
        cache.put(item("/b", 10))
        cache.get("/a")
        assert [url for url, _ in cache.items()] == ["/b", "/a"]
