"""Unit/integration tests for the multi-server caching simulation."""

import pytest

from repro.cache.multiserver import (
    MultiServerSimulator,
    OriginSpec,
    merge_logs,
)
from repro.core.clustering import cluster_log
from repro.net.ipv4 import parse_ipv4
from repro.weblog.catalog import UrlCatalog
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog
from repro.weblog.presets import make_log


def tiny_origin(name: str, client: str, times, url="/page") -> OriginSpec:
    catalog = UrlCatalog(4, seed=1, start_time=0.0, duration_seconds=86400.0,
                         immutable_fraction=1.0)
    entries = [
        LogEntry(parse_ipv4(client), float(t), url,
                 size=catalog.size_of(url))
        for t in times
    ]
    return OriginSpec(name=name, log=WebLog(name, entries), catalog=catalog)


class TestMergeLogs:
    def test_chronological_interleave(self):
        a = tiny_origin("alpha", "10.0.0.1", [0.0, 100.0])
        b = tiny_origin("beta", "10.0.0.2", [50.0, 150.0])
        merged = merge_logs([a, b])
        times = [e.timestamp for e in merged.entries]
        assert times == sorted(times)
        assert len(merged) == 4

    def test_urls_namespaced_by_origin(self):
        a = tiny_origin("alpha", "10.0.0.1", [0.0])
        b = tiny_origin("beta", "10.0.0.2", [1.0])
        merged = merge_logs([a, b])
        urls = {e.url for e in merged.entries}
        assert urls == {"//alpha/page", "//beta/page"}


class TestSimulation:
    def _cluster_table(self):
        from repro.bgp.table import MergedPrefixTable, RoutingTable
        from repro.net.prefix import Prefix

        table = RoutingTable("T")
        table.add_prefix(Prefix.from_cidr("10.0.0.0/24"))
        merged = MergedPrefixTable()
        merged.add_table(table)
        return merged

    def test_same_url_different_origins_not_shared(self):
        """/page on alpha and /page on beta are distinct resources."""
        a = tiny_origin("alpha", "10.0.0.1", [0.0])
        b = tiny_origin("beta", "10.0.0.1", [10.0])
        merged_log = merge_logs([a, b])
        clusters = cluster_log(merged_log, self._cluster_table())
        simulator = MultiServerSimulator([a, b], clusters)
        result = simulator.run(cache_bytes=None)
        assert result.proxy_hits == 0  # no cross-origin false hits

    def test_cross_client_sharing_per_origin(self):
        a = tiny_origin("alpha", "10.0.0.1", [0.0])
        b = tiny_origin("alpha2", "10.0.0.2", [10.0])
        # Same origin accessed by both clients in one cluster: second
        # access hits.
        shared = OriginSpec(
            name="alpha",
            log=WebLog("alpha", a.log.entries + [
                LogEntry(parse_ipv4("10.0.0.2"), 20.0, "/page",
                         size=a.catalog.size_of("/page"))
            ]),
            catalog=a.catalog,
        )
        del b
        merged_log = merge_logs([shared])
        clusters = cluster_log(merged_log, self._cluster_table())
        result = MultiServerSimulator([shared], clusters).run(cache_bytes=None)
        assert result.proxy_hits == 1
        assert result.per_origin["alpha"].proxy_hits == 1

    def test_per_origin_counters_sum(self, topology, merged_table):
        origins = [
            OriginSpec(
                name=name,
                log=(synthetic := make_log(topology, name, scale=0.04,
                                           seed=5 + i)).log,
                catalog=synthetic.catalog,
            )
            for i, name in enumerate(("nagano", "ew3"))
        ]
        merged_log = merge_logs(origins)
        clusters = cluster_log(merged_log, merged_table)
        result = MultiServerSimulator(origins, clusters).run(
            cache_bytes=5_000_000
        )
        assert result.total_requests == len(merged_log)
        per_origin_requests = sum(
            c.requests for c in result.per_origin.values()
        )
        assert per_origin_requests == result.total_requests
        assert result.proxy_hits == sum(
            c.proxy_hits for c in result.per_origin.values()
        )
        for counters in result.per_origin.values():
            assert 0.0 <= counters.hit_ratio <= 1.0
            assert 0.0 <= counters.byte_hit_ratio <= 1.0

    def test_rejects_empty_origin_list(self):
        from repro.core.clustering import ClusterSet

        with pytest.raises(ValueError):
            MultiServerSimulator([], ClusterSet("t", "m", []))
