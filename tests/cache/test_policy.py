"""Unit tests for the TTL + Piggyback Cache Validation proxy."""

import pytest

from repro.cache.policy import ProxyCache
from repro.cache.server import OriginServer
from repro.weblog.catalog import UrlCatalog

START = 0.0
DAY = 86400.0
TTL = 3600.0


@pytest.fixture()
def server():
    return OriginServer(UrlCatalog(80, seed=4, start_time=START,
                                   duration_seconds=DAY))


def mutable_url(server):
    for url in server.catalog.urls():
        if server.catalog.modified_between(url, START, START + DAY / 4):
            return url
    pytest.skip("no early-mutating URL in catalog")


def immutable_url(server):
    for url in server.catalog.urls():
        if not server.catalog.modified_between(url, START, START + DAY):
            return url
    raise AssertionError("no immutable URL")


class TestRequestPath:
    def test_cold_miss_then_hit(self, server):
        proxy = ProxyCache(server, ttl_seconds=TTL)
        url = immutable_url(server)
        assert not proxy.request(url, 10.0)     # cold miss
        assert proxy.request(url, 20.0)          # fresh hit
        assert proxy.stats.requests == 2
        assert proxy.stats.hits == 1
        assert proxy.stats.misses == 1
        assert server.requests_served == 1

    def test_expired_unmodified_revalidates_as_hit(self, server):
        proxy = ProxyCache(server, ttl_seconds=TTL)
        url = immutable_url(server)
        proxy.request(url, 0.0)
        # Past TTL: GET If-Modified-Since returns 304; counted a hit
        # with no body bytes from the origin.
        assert proxy.request(url, TTL + 10.0)
        assert proxy.stats.validation_hits == 1
        assert server.bytes_served == server.catalog.size_of(url)  # only cold fetch

    def test_expired_modified_is_miss(self, server):
        proxy = ProxyCache(server, ttl_seconds=1.0)
        url = mutable_url(server)
        # Find a window across a modification.
        times = [t for t in range(0, int(DAY), 600)]
        proxy.request(url, 0.0)
        saw_miss = False
        for t in times[1:]:
            hit = proxy.request(url, float(t))
            if not hit:
                saw_miss = True
                break
        assert saw_miss

    def test_byte_hit_accounting(self, server):
        proxy = ProxyCache(server, ttl_seconds=TTL)
        url = immutable_url(server)
        size = server.catalog.size_of(url)
        proxy.request(url, 0.0)
        proxy.request(url, 1.0)
        assert proxy.stats.bytes_requested == 2 * size
        assert proxy.stats.bytes_hit == size
        assert proxy.stats.hit_ratio == 0.5
        assert proxy.stats.byte_hit_ratio == 0.5

    def test_rejects_nonpositive_ttl(self, server):
        with pytest.raises(ValueError):
            ProxyCache(server, ttl_seconds=0.0)

    def test_capacity_limits_cache(self, server):
        urls = list(server.catalog.urls())[:20]
        total = sum(server.catalog.size_of(u) for u in urls)
        proxy = ProxyCache(server, capacity_bytes=total // 4, ttl_seconds=TTL)
        for url in urls:
            proxy.request(url, 1.0)
        assert proxy.cache.used_bytes <= total // 4


class TestPiggyback:
    def test_piggyback_renews_expired_unmodified(self, server):
        proxy = ProxyCache(server, ttl_seconds=TTL)
        stable = immutable_url(server)
        other = [u for u in server.catalog.urls() if u != stable][0]
        proxy.request(stable, 0.0)
        # Later miss on another URL piggybacks validation of `stable`.
        proxy.request(other, TTL + 100.0)
        assert proxy.stats.piggyback_validations >= 1
        assert proxy.stats.piggyback_renewals >= 1
        # `stable` is fresh again: the next access is a plain hit, not
        # an If-Modified-Since round trip.
        validations_before = server.validations_served
        assert proxy.request(stable, TTL + 200.0)
        assert server.validations_served == validations_before

    def test_piggyback_invalidates_modified(self, server):
        proxy = ProxyCache(server, ttl_seconds=1.0)
        url = mutable_url(server)
        other = immutable_url(server)
        proxy.request(url, 0.0)
        # March forward until a piggyback occurs after a modification.
        invalidated = False
        for t in range(600, int(DAY), 600):
            proxy.request(other, float(t))
            if url not in proxy.cache:
                invalidated = True
                break
        assert invalidated

    def test_piggyback_limit_respected(self, server):
        proxy = ProxyCache(server, ttl_seconds=1.0, piggyback_limit=3)
        urls = list(server.catalog.urls())[:30]
        for url in urls:
            proxy.request(url, 0.0)
        before = proxy.stats.piggyback_validations
        proxy.request(urls[0], 5000.0)
        assert proxy.stats.piggyback_validations - before <= 3
