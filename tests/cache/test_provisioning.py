"""Unit/integration tests for demand-proportional cache provisioning."""

import pytest

from repro.cache.simulator import CachingSimulator, provision_caches
from repro.core.clustering import Cluster, ClusterSet, cluster_log
from repro.net.prefix import Prefix


def make_set():
    clusters = [
        Cluster(Prefix.from_cidr("10.0.0.0/24"), clients=[1, 2],
                requests=900, unique_urls=50, total_bytes=9000),
        Cluster(Prefix.from_cidr("10.0.1.0/24"), clients=[3],
                requests=100, unique_urls=10, total_bytes=1000),
    ]
    return ClusterSet("t", "network-aware", clusters)


class TestProvisionCaches:
    def test_proportional_to_requests(self):
        allocation = provision_caches(make_set(), 1_000_000, metric="requests")
        big = allocation[Prefix.from_cidr("10.0.0.0/24")]
        small = allocation[Prefix.from_cidr("10.0.1.0/24")]
        assert big == 900_000
        assert small == 100_000

    def test_metric_selection(self):
        by_clients = provision_caches(make_set(), 300_000, metric="clients")
        assert by_clients[Prefix.from_cidr("10.0.0.0/24")] == 200_000
        by_bytes = provision_caches(make_set(), 1_000_000, metric="bytes")
        assert by_bytes[Prefix.from_cidr("10.0.0.0/24")] == 900_000

    def test_floor_protects_quiet_clusters(self):
        allocation = provision_caches(
            make_set(), 200_000, metric="requests", floor_bytes=50_000
        )
        assert allocation[Prefix.from_cidr("10.0.1.0/24")] == 50_000

    def test_zero_weight_splits_evenly(self):
        clusters = ClusterSet("t", "m", [
            Cluster(Prefix.from_cidr("10.0.0.0/24"), clients=[1], requests=0),
            Cluster(Prefix.from_cidr("10.0.1.0/24"), clients=[2], requests=0),
        ])
        allocation = provision_caches(clusters, 1_000_000)
        assert set(allocation.values()) == {500_000}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            provision_caches(make_set(), 0)
        with pytest.raises(ValueError):
            provision_caches(make_set(), 1000, metric="vibes")


class TestProvisionedSimulation:
    def test_proportional_beats_uniform_at_same_budget(
        self, nagano_log, merged_table
    ):
        """§4.1.4's sizing pays: the same total byte budget spent
        proportionally to demand serves more requests from cache."""
        clusters = cluster_log(nagano_log.log, merged_table)
        simulator = CachingSimulator(
            nagano_log.log, nagano_log.catalog, clusters, min_url_accesses=5
        )
        total_budget = 400_000 * len(clusters)
        uniform = simulator.run(cache_bytes=400_000)
        proportional = simulator.run(
            cache_bytes=400_000,
            per_cluster_bytes=provision_caches(
                clusters, total_budget, metric="requests"
            ),
        )
        assert proportional.server_hit_ratio >= uniform.server_hit_ratio - 0.01

    def test_missing_cluster_falls_back_to_uniform(
        self, nagano_log, merged_table
    ):
        clusters = cluster_log(nagano_log.log, merged_table)
        simulator = CachingSimulator(
            nagano_log.log, nagano_log.catalog, clusters
        )
        # Empty map: everyone falls back to the uniform size.
        result = simulator.run(cache_bytes=100_000, per_cluster_bytes={})
        baseline = simulator.run(cache_bytes=100_000)
        assert result.server_hit_ratio == pytest.approx(
            baseline.server_hit_ratio
        )
