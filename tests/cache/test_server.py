"""Unit tests for the origin-server model."""

from repro.cache.server import OriginServer
from repro.weblog.catalog import UrlCatalog

START = 0.0
DAY = 86400.0


def make_server() -> OriginServer:
    return OriginServer(UrlCatalog(50, seed=3, start_time=START,
                                   duration_seconds=DAY))


class TestGet:
    def test_counts_requests_and_bytes(self):
        server = make_server()
        url = server.catalog.url(0)
        result = server.get(url, 100.0)
        assert result.status == 200
        assert result.size == server.catalog.size_of(url)
        assert server.requests_served == 1
        assert server.bytes_served == result.size

    def test_reset(self):
        server = make_server()
        server.get(server.catalog.url(0), 1.0)
        server.reset_counters()
        assert server.requests_served == 0
        assert server.bytes_served == 0


class TestConditionalGet:
    def _mutable_url(self, server):
        for url in server.catalog.urls():
            if server.catalog.modified_between(url, START, START + DAY):
                return url
        raise AssertionError("no mutable URL in catalog")

    def _immutable_url(self, server):
        for url in server.catalog.urls():
            if not server.catalog.modified_between(url, START, START + DAY):
                return url
        raise AssertionError("no immutable URL in catalog")

    def test_unmodified_returns_304_no_bytes(self):
        server = make_server()
        url = self._immutable_url(server)
        result = server.get_if_modified_since(url, START, START + DAY)
        assert result.status == 304
        assert result.size == 0
        assert server.bytes_served == 0
        assert server.validations_served == 1

    def test_modified_returns_fresh_200(self):
        server = make_server()
        url = self._mutable_url(server)
        result = server.get_if_modified_since(url, START, START + DAY)
        assert result.status == 200
        assert result.size > 0
        assert server.bytes_served == result.size

    def test_validation_just_after_fetch_is_304(self):
        server = make_server()
        url = self._mutable_url(server)
        t = START + DAY / 2
        assert server.get_if_modified_since(url, t, t).status == 304
