"""Unit/integration tests for the trace-driven caching simulation."""

import pytest

from repro.cache.simulator import CachingSimulator, filter_rare_urls
from repro.core.clustering import METHOD_SIMPLE, cluster_log
from repro.net.ipv4 import parse_ipv4
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog


class TestFilterRareUrls:
    def test_drops_below_threshold(self):
        entries = [LogEntry(1, float(i), "/popular") for i in range(10)]
        entries.append(LogEntry(1, 99.0, "/rare"))
        log = WebLog("t", entries)
        filtered = filter_rare_urls(log, min_accesses=10)
        assert all(e.url == "/popular" for e in filtered.entries)
        assert len(filtered) == 10

    def test_zero_threshold_keeps_all(self):
        log = WebLog("t", [LogEntry(1, 0.0, "/x")])
        assert len(filter_rare_urls(log, 1)) == 1


class TestSimulationAccounting:
    @pytest.fixture()
    def setup(self, nagano_log, merged_table):
        clusters = cluster_log(nagano_log.log, merged_table)
        simulator = CachingSimulator(
            nagano_log.log, nagano_log.catalog, clusters, min_url_accesses=5
        )
        return simulator

    def test_requests_conserved(self, setup):
        result = setup.run(cache_bytes=1_000_000)
        proxied = sum(p.stats.requests for p in result.proxies)
        assert proxied + result.unproxied_requests == result.total_requests

    def test_hits_bounded_by_requests(self, setup):
        result = setup.run(cache_bytes=1_000_000)
        assert 0 <= result.proxy_hits <= result.total_requests
        assert 0.0 <= result.server_hit_ratio <= 1.0
        assert 0.0 <= result.server_byte_hit_ratio <= 1.0

    def test_server_sees_what_proxies_miss(self, setup):
        result = setup.run(cache_bytes=1_000_000)
        # Every request the proxies did not absorb reached the origin
        # (refetches after invalidation can add more server requests,
        # never fewer).
        assert result.server_requests >= (
            result.total_requests - result.proxy_hits
        ) * 0.5

    def test_hit_ratio_monotone_in_cache_size(self, setup):
        sweep = setup.sweep_cache_sizes([50_000, 500_000, 5_000_000])
        ratios = [r.server_hit_ratio for r in sweep]
        assert ratios[0] <= ratios[1] + 0.02
        assert ratios[1] <= ratios[2] + 0.02

    def test_infinite_cache_upper_bounds_finite(self, setup):
        finite = setup.run(cache_bytes=200_000)
        infinite = setup.run(cache_bytes=None)
        assert infinite.server_hit_ratio >= finite.server_hit_ratio - 0.02

    def test_top_proxies_ordering(self, setup):
        result = setup.run(cache_bytes=None)
        top = result.top_proxies(10)
        requests = [p.stats.requests for p in top]
        assert requests == sorted(requests, reverse=True)
        assert len(top) <= 10


class TestMethodComparison:
    def test_network_aware_not_worse_than_simple(
        self, nagano_log, merged_table
    ):
        """Figure 11's direction: the simple approach under-estimates
        attainable hit ratios at large cache sizes."""
        aware = cluster_log(nagano_log.log, merged_table)
        simple = cluster_log(nagano_log.log, method=METHOD_SIMPLE)
        sim_aware = CachingSimulator(
            nagano_log.log, nagano_log.catalog, aware, min_url_accesses=5
        )
        sim_simple = CachingSimulator(
            nagano_log.log, nagano_log.catalog, simple, min_url_accesses=5
        )
        big = 50_000_000
        r_aware = sim_aware.run(cache_bytes=big)
        r_simple = sim_simple.run(cache_bytes=big)
        assert r_aware.server_hit_ratio >= r_simple.server_hit_ratio


class TestSmallDeterministicWorld:
    def _tiny(self):
        """Two clients in one cluster sharing one URL: the second
        access must be a hit only when they share a proxy."""
        from repro.bgp.table import MergedPrefixTable, RoutingTable
        from repro.net.prefix import Prefix
        from repro.weblog.catalog import UrlCatalog

        catalog = UrlCatalog(5, seed=1, start_time=0.0,
                             duration_seconds=86400.0,
                             immutable_fraction=1.0)
        url = catalog.url(0)
        entries = [
            LogEntry(parse_ipv4("10.0.0.1"), 10.0, url,
                     size=catalog.size_of(url)),
            LogEntry(parse_ipv4("10.0.0.2"), 20.0, url,
                     size=catalog.size_of(url)),
        ]
        log = WebLog("tiny", entries)
        table = RoutingTable("T")
        table.add_prefix(Prefix.from_cidr("10.0.0.0/24"))
        merged = MergedPrefixTable()
        merged.add_table(table)
        return log, catalog, merged

    def test_shared_proxy_gives_cross_client_hit(self):
        log, catalog, merged = self._tiny()
        clusters = cluster_log(log, merged)
        result = CachingSimulator(log, catalog, clusters).run(cache_bytes=None)
        assert result.proxy_hits == 1
        assert result.server_requests == 1

    def test_split_clusters_lose_sharing(self):
        from repro.bgp.table import MergedPrefixTable, RoutingTable
        from repro.net.prefix import Prefix

        log, catalog, _ = self._tiny()
        # Host routes: each client in its own cluster -> no sharing.
        table = RoutingTable("T")
        table.add_prefix(Prefix.from_cidr("10.0.0.1/32"))
        table.add_prefix(Prefix.from_cidr("10.0.0.2/32"))
        merged = MergedPrefixTable()
        merged.add_table(table)
        clusters = cluster_log(log, merged)
        result = CachingSimulator(log, catalog, clusters).run(cache_bytes=None)
        assert result.proxy_hits == 0
        assert result.server_requests == 2
