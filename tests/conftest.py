"""Shared fixtures: one small-but-real world per test session.

Building the topology/snapshots/logs once keeps the suite fast while
letting integration-style tests exercise the genuine pipeline.  Tests
that need isolation build their own tiny worlds inline.
"""

from __future__ import annotations

import pytest

from repro.bgp.synth import SnapshotFactory
from repro.bgp.table import MergedPrefixTable
from repro.simnet.dns import SimulatedDns
from repro.simnet.topology import Topology, TopologyConfig, generate_topology
from repro.simnet.traceroute import SimulatedTraceroute
from repro.weblog.presets import make_log
from repro.weblog.synth import SyntheticLog

#: Seed for the shared world; chosen once, referenced everywhere.
WORLD_SEED = 424242

#: Scale for shared logs: small enough for speed, large enough that
#: clusters/spiders/proxies are all present.
LOG_SCALE = 0.12


@pytest.fixture(scope="session")
def small_config() -> TopologyConfig:
    return TopologyConfig(
        seed=WORLD_SEED,
        num_backbone=2,
        num_regional_isps=6,
        num_campus=5,
        num_enterprise=5,
        num_gateways=2,
        num_legacy_b=10,
    )


@pytest.fixture(scope="session")
def topology(small_config: TopologyConfig) -> Topology:
    return generate_topology(small_config)


@pytest.fixture(scope="session")
def factory(topology: Topology) -> SnapshotFactory:
    return SnapshotFactory(topology)


@pytest.fixture(scope="session")
def merged_table(factory: SnapshotFactory) -> MergedPrefixTable:
    return factory.merged()


@pytest.fixture(scope="session")
def dns(topology: Topology) -> SimulatedDns:
    return SimulatedDns(topology)


@pytest.fixture(scope="session")
def traceroute(topology: Topology, dns: SimulatedDns) -> SimulatedTraceroute:
    return SimulatedTraceroute(topology, dns)


@pytest.fixture(scope="session")
def nagano_log(topology: Topology) -> SyntheticLog:
    return make_log(topology, "nagano", scale=LOG_SCALE, seed=WORLD_SEED)


@pytest.fixture(scope="session")
def sun_log(topology: Topology) -> SyntheticLog:
    return make_log(topology, "sun", scale=LOG_SCALE, seed=WORLD_SEED)
