"""Unit/integration tests for AS-level cluster grouping."""

from repro.bgp.table import KIND_BGP, MergedPrefixTable, RoutingTable
from repro.core.asclusters import (
    UNKNOWN_AS,
    as_merge_candidates,
    group_clusters_by_as,
)
from repro.core.clustering import cluster_addresses, cluster_log
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix


def make_table(entries) -> MergedPrefixTable:
    table = RoutingTable("T", kind=KIND_BGP)
    for cidr, as_path in entries:
        table.add_prefix(Prefix.from_cidr(cidr), as_path=as_path)
    merged = MergedPrefixTable()
    merged.add_table(table)
    return merged


class TestGrouping:
    def test_groups_by_origin_as(self):
        table = make_table([
            ("10.0.0.0/24", (1, 7)),
            ("10.0.1.0/24", (2, 7)),
            ("10.1.0.0/24", (1, 9)),
        ])
        clusters = cluster_addresses(
            [parse_ipv4(a) for a in ("10.0.0.1", "10.0.1.1", "10.1.0.1")],
            table,
        )
        report = group_clusters_by_as(clusters, table)
        by_asn = {g.asn: g for g in report.groups}
        assert by_asn[7].num_clusters == 2
        assert by_asn[9].num_clusters == 1
        assert report.unattributed_clusters == 0

    def test_pathless_routes_unattributed(self):
        table = make_table([("10.0.0.0/24", ())])
        clusters = cluster_addresses([parse_ipv4("10.0.0.1")], table)
        report = group_clusters_by_as(clusters, table)
        assert report.unattributed_clusters == 1
        assert report.group_for(UNKNOWN_AS) is not None

    def test_group_metrics_roll_up(self, nagano_log, merged_table):
        clusters = cluster_log(nagano_log.log, merged_table)
        report = group_clusters_by_as(clusters, merged_table)
        assert sum(g.num_clusters for g in report.groups) == len(clusters)
        assert sum(g.requests for g in report.groups) == sum(
            c.requests for c in clusters.clusters
        )

    def test_fewer_groups_than_clusters(self, nagano_log, merged_table):
        clusters = cluster_log(nagano_log.log, merged_table)
        report = group_clusters_by_as(clusters, merged_table)
        assert len(report) < len(clusters)

    def test_sorted_by_requests(self, nagano_log, merged_table):
        clusters = cluster_log(nagano_log.log, merged_table)
        ordered = group_clusters_by_as(clusters, merged_table).sorted_by_requests()
        requests = [g.requests for g in ordered]
        assert requests == sorted(requests, reverse=True)


class TestMergeCandidates:
    def test_adjacent_same_as_flagged(self):
        table = make_table([
            ("10.0.0.0/25", (5,)),
            ("10.0.0.128/25", (5,)),
        ])
        clusters = cluster_addresses(
            [parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.129")], table
        )
        candidates = as_merge_candidates(clusters, table)
        assert len(candidates) == 1
        left, right = candidates[0]
        assert {left.identifier.cidr, right.identifier.cidr} == {
            "10.0.0.0/25", "10.0.0.128/25"
        }

    def test_different_as_not_flagged(self):
        table = make_table([
            ("10.0.0.0/25", (5,)),
            ("10.0.0.128/25", (6,)),
        ])
        clusters = cluster_addresses(
            [parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.129")], table
        )
        assert as_merge_candidates(clusters, table) == []

    def test_distant_same_as_not_flagged(self):
        table = make_table([
            ("10.0.0.0/24", (5,)),
            ("10.255.0.0/24", (5,)),
        ])
        clusters = cluster_addresses(
            [parse_ipv4("10.0.0.1"), parse_ipv4("10.255.0.1")], table
        )
        assert as_merge_candidates(clusters, table, max_gap_bits=4) == []

    def test_real_world_produces_some_candidates(
        self, nagano_log, merged_table
    ):
        clusters = cluster_log(nagano_log.log, merged_table)
        candidates = as_merge_candidates(clusters, merged_table)
        # ISP pool chunks in one allocation share the origin AS and sit
        # adjacent: at least some candidates must surface.
        assert len(candidates) > 0
        for left, right in candidates:
            assert left.identifier != right.identifier
