"""Unit tests for cluster identification (all three methods)."""

import pytest

from repro.bgp.table import KIND_BGP, KIND_REGISTRY, MergedPrefixTable, RoutingTable
from repro.core.clustering import (
    METHOD_CLASSFUL,
    METHOD_NETWORK_AWARE,
    METHOD_SIMPLE,
    classful_prefix,
    cluster_addresses,
    cluster_log,
    simple_prefix,
)
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


def make_table(*cidrs, kind=KIND_BGP) -> MergedPrefixTable:
    table = RoutingTable("T", kind=kind)
    for cidr in cidrs:
        table.add_prefix(p(cidr))
    merged = MergedPrefixTable()
    merged.add_table(table)
    return merged


class TestSimplePrefix:
    def test_first_24_bits(self):
        assert simple_prefix(parse_ipv4("151.198.194.17")) == p("151.198.194.0/24")

    def test_groups_paper_example_wrongly(self):
        """§2: the three hosts in different /28s share one simple
        cluster — the motivating mis-grouping."""
        hosts = ["151.198.194.17", "151.198.194.34", "151.198.194.50"]
        groups = {simple_prefix(parse_ipv4(h)) for h in hosts}
        assert groups == {p("151.198.194.0/24")}


class TestClassfulPrefix:
    def test_classes(self):
        assert classful_prefix(parse_ipv4("18.1.2.3")) == p("18.0.0.0/8")
        assert classful_prefix(parse_ipv4("151.198.194.17")) == p("151.198.0.0/16")
        assert classful_prefix(parse_ipv4("200.1.2.3")) == p("200.1.2.0/24")

    def test_multicast_unclusterable(self):
        assert classful_prefix(parse_ipv4("230.0.0.1")) is None


class TestNetworkAwareClustering:
    def test_paper_worked_example(self):
        """§3.2.1: six clients, two clusters."""
        table = make_table("12.65.128.0/19", "24.48.2.0/23")
        clients = [
            "12.65.147.94", "12.65.147.149", "12.65.146.207",
            "12.65.144.247", "24.48.3.87", "24.48.2.166",
        ]
        result = cluster_addresses(
            [parse_ipv4(c) for c in clients], table, METHOD_NETWORK_AWARE
        )
        by_id = result.by_identifier()
        assert set(by_id) == {p("12.65.128.0/19"), p("24.48.2.0/23")}
        assert by_id[p("12.65.128.0/19")].num_clients == 4
        assert by_id[p("24.48.2.0/23")].num_clients == 2
        assert result.unclustered_clients == []

    def test_longest_match_decides_membership(self):
        table = make_table("10.0.0.0/8", "10.1.0.0/16")
        result = cluster_addresses(
            [parse_ipv4("10.1.0.1"), parse_ipv4("10.2.0.1")], table
        )
        assert {c.identifier for c in result} == {p("10.0.0.0/8"), p("10.1.0.0/16")}

    def test_unmatched_clients_unclustered(self):
        table = make_table("10.0.0.0/8")
        result = cluster_addresses([parse_ipv4("11.0.0.1")], table)
        assert len(result) == 0
        assert result.unclustered_clients == [parse_ipv4("11.0.0.1")]
        assert result.clustered_fraction == 0.0

    def test_requires_table(self):
        with pytest.raises(ValueError):
            cluster_addresses([1], None, METHOD_NETWORK_AWARE)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            cluster_addresses([1], None, "psychic")

    def test_source_kind_recorded(self):
        bgp = RoutingTable("B", kind=KIND_BGP)
        bgp.add_prefix(p("10.0.0.0/8"))
        registry = RoutingTable("R", kind=KIND_REGISTRY)
        registry.add_prefix(p("172.16.0.0/12"))
        merged = MergedPrefixTable.from_tables([bgp, registry])
        result = cluster_addresses(
            [parse_ipv4("10.0.0.1"), parse_ipv4("172.16.0.1")], merged
        )
        kinds = {c.identifier: c.source_kind for c in result}
        assert kinds[p("10.0.0.0/8")] == KIND_BGP
        assert kinds[p("172.16.0.0/12")] == KIND_REGISTRY
        assert result.registry_clustered_clients() == 1


class TestClusterLogMetrics:
    def _log(self):
        entries = [
            LogEntry(parse_ipv4("10.1.0.1"), 1.0, "/a", 100),
            LogEntry(parse_ipv4("10.1.0.1"), 2.0, "/b", 200),
            LogEntry(parse_ipv4("10.1.0.2"), 3.0, "/a", 100),
            LogEntry(parse_ipv4("10.2.0.1"), 4.0, "/c", 300),
        ]
        return WebLog("t", entries)

    def test_metrics_rolled_up(self):
        table = make_table("10.1.0.0/16", "10.2.0.0/16")
        result = cluster_log(self._log(), table)
        by_id = result.by_identifier()
        cluster = by_id[p("10.1.0.0/16")]
        assert cluster.num_clients == 2
        assert cluster.requests == 3
        assert cluster.unique_urls == 2  # /a shared between clients
        assert cluster.total_bytes == 400
        other = by_id[p("10.2.0.0/16")]
        assert (other.num_clients, other.requests, other.unique_urls) == (1, 1, 1)
        assert result.total_requests == 4

    def test_simple_method_needs_no_table(self):
        result = cluster_log(self._log(), method=METHOD_SIMPLE)
        assert {c.identifier for c in result} == {
            p("10.1.0.0/24"), p("10.2.0.0/24")
        }

    def test_classful_method(self):
        result = cluster_log(self._log(), method=METHOD_CLASSFUL)
        assert {c.identifier for c in result} == {p("10.0.0.0/8")}
        assert result.clusters[0].num_clients == 3


class TestClusterSetHelpers:
    def test_sorts(self):
        table = make_table("10.1.0.0/16", "10.2.0.0/16")
        result = cluster_log(self._log(), table)
        by_clients = result.sorted_by_clients()
        assert by_clients[0].num_clients >= by_clients[-1].num_clients
        by_requests = result.sorted_by_requests()
        assert by_requests[0].requests >= by_requests[-1].requests

    def test_find(self):
        table = make_table("10.1.0.0/16")
        result = cluster_log(self._log(), table)
        found = result.find(parse_ipv4("10.1.0.1"))
        assert found is not None and found.identifier == p("10.1.0.0/16")
        assert result.find(parse_ipv4("9.9.9.9")) is None

    def test_clustered_fraction_counts_unclustered(self):
        table = make_table("10.1.0.0/16")
        result = cluster_log(self._log(), table)
        assert result.num_clients == 3
        assert result.clustered_fraction == pytest.approx(2 / 3)

    def _log(self):
        entries = [
            LogEntry(parse_ipv4("10.1.0.1"), 1.0, "/a", 100),
            LogEntry(parse_ipv4("10.1.0.1"), 2.0, "/b", 200),
            LogEntry(parse_ipv4("10.1.0.2"), 3.0, "/a", 100),
            LogEntry(parse_ipv4("10.2.0.1"), 4.0, "/c", 300),
        ]
        return WebLog("t", entries)


class TestEndToEndOnSharedWorld:
    def test_vast_majority_clustered(self, nagano_log, merged_table):
        result = cluster_log(nagano_log.log, merged_table)
        assert result.clustered_fraction > 0.99

    def test_bogus_clients_not_clustered(self, nagano_log, merged_table):
        result = cluster_log(nagano_log.log, merged_table)
        for bogus in nagano_log.bogus_clients:
            assert bogus in result.unclustered_clients

    def test_simple_yields_more_clusters(self, nagano_log, merged_table):
        aware = cluster_log(nagano_log.log, merged_table)
        simple = cluster_log(nagano_log.log, method=METHOD_SIMPLE)
        assert len(simple) > len(aware)
