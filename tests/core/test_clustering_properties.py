"""Property-based tests on the clustering invariants themselves.

Whatever the prefix table and client population, a clustering must be
a *partition with provenance*: every client lands in exactly one
cluster (or is unclustered), every cluster's identifier covers all its
members, and the identifier is each member's longest match.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.table import MergedPrefixTable, RoutingTable
from repro.core.clustering import (
    METHOD_CLASSFUL,
    METHOD_SIMPLE,
    cluster_addresses,
)
from repro.net.prefix import Prefix

addresses = st.integers(min_value=1, max_value=(1 << 32) - 1)
lengths = st.integers(min_value=0, max_value=32)
prefixes = st.builds(Prefix, addresses, lengths)
prefix_lists = st.lists(prefixes, min_size=0, max_size=30)
address_lists = st.lists(addresses, min_size=1, max_size=60)


def make_table(prefix_list):
    table = RoutingTable("T")
    for prefix in prefix_list:
        table.add_prefix(prefix)
    merged = MergedPrefixTable()
    merged.add_table(table)
    return merged


@settings(max_examples=60)
@given(prefix_lists, address_lists)
def test_clustering_is_a_partition(prefix_list, client_list):
    table = make_table(prefix_list)
    result = cluster_addresses(client_list, table)
    clustered = [c for cluster in result.clusters for c in cluster.clients]
    everything = sorted(clustered + list(result.unclustered_clients))
    assert everything == sorted(set(client_list)) or (
        # duplicates in the input collapse to one membership each
        sorted(set(everything)) == sorted(set(client_list))
    )
    # No client appears in two clusters.
    assert len(set(clustered)) == len(clustered)


@settings(max_examples=60)
@given(prefix_lists, address_lists)
def test_identifier_covers_all_members(prefix_list, client_list):
    table = make_table(prefix_list)
    result = cluster_addresses(client_list, table)
    for cluster in result.clusters:
        for client in cluster.clients:
            assert cluster.identifier.contains_address(client)


@settings(max_examples=60)
@given(prefix_lists, address_lists)
def test_identifier_is_longest_match_of_every_member(prefix_list, client_list):
    table = make_table(prefix_list)
    result = cluster_addresses(client_list, table)
    for cluster in result.clusters:
        for client in cluster.clients:
            lookup = table.lookup(client)
            assert lookup is not None
            assert lookup.prefix == cluster.identifier


@settings(max_examples=60)
@given(prefix_lists, address_lists)
def test_unclustered_clients_match_nothing(prefix_list, client_list):
    table = make_table(prefix_list)
    result = cluster_addresses(client_list, table)
    for client in result.unclustered_clients:
        assert table.lookup(client) is None


@settings(max_examples=60)
@given(address_lists)
def test_simple_method_groups_by_24(client_list):
    result = cluster_addresses(client_list, method=METHOD_SIMPLE)
    assert result.unclustered_clients == []
    for cluster in result.clusters:
        assert cluster.identifier.length == 24
        first = cluster.clients[0] >> 8
        assert all((c >> 8) == first for c in cluster.clients)


@settings(max_examples=60)
@given(address_lists)
def test_classful_method_partitions_unicast(client_list):
    result = cluster_addresses(client_list, method=METHOD_CLASSFUL)
    for cluster in result.clusters:
        assert cluster.identifier.length in (8, 16, 24)
    for client in result.unclustered_clients:
        assert (client >> 24) >= 224  # class D/E only


@settings(max_examples=40)
@given(prefix_lists, address_lists)
def test_more_specific_table_never_reduces_coverage(prefix_list, client_list):
    """Adding prefixes to the table can only cluster more clients."""
    base = make_table(prefix_list[: len(prefix_list) // 2])
    full = make_table(prefix_list)
    base_result = cluster_addresses(client_list, base)
    full_result = cluster_addresses(client_list, full)
    assert full_result.clustered_fraction >= base_result.clustered_fraction
