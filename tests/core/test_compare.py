"""Unit tests for clustering comparison metrics."""

import pytest

from repro.core.clustering import (
    Cluster,
    ClusterSet,
    METHOD_SIMPLE,
    cluster_log,
)
from repro.core.compare import compare_clusterings
from repro.net.prefix import Prefix


def make(clusters_spec, method="a"):
    clusters = [
        Cluster(Prefix.from_cidr(f"10.0.{i}.0/24"), clients=list(members))
        for i, members in enumerate(clusters_spec)
    ]
    return ClusterSet("t", method, clusters)


class TestRandIndex:
    def test_identical_clusterings(self):
        a = make([[1, 2], [3, 4, 5]])
        b = make([[1, 2], [3, 4, 5]], method="b")
        comparison = compare_clusterings(a, b)
        assert comparison.rand_index == 1.0
        assert comparison.identical
        assert comparison.exact_matches == 2

    def test_completely_split(self):
        a = make([[1, 2, 3, 4]])
        b = make([[1], [2], [3], [4]], method="b")
        comparison = compare_clusterings(a, b)
        # No pair agrees: together in A, apart in B.
        assert comparison.rand_index == 0.0
        assert comparison.splits_a_to_b == 1
        assert comparison.splits_b_to_a == 0

    def test_partial_agreement(self):
        a = make([[1, 2], [3, 4]])
        b = make([[1, 2], [3], [4]], method="b")
        comparison = compare_clusterings(a, b)
        # Pairs: (1,2) together/together ok; (3,4) together/apart bad;
        # cross pairs apart/apart ok (4 of them).  5/6 agree.
        assert comparison.rand_index == pytest.approx(5 / 6)
        assert comparison.exact_matches == 1
        assert comparison.splits_a_to_b == 1

    def test_only_common_clients_considered(self):
        a = make([[1, 2, 99]])
        b = make([[1, 2]], method="b")
        comparison = compare_clusterings(a, b)
        assert comparison.common_clients == 2
        assert comparison.rand_index == 1.0

    def test_tiny_populations(self):
        a = make([[1]])
        b = make([[1]], method="b")
        assert compare_clusterings(a, b).rand_index == 1.0
        assert compare_clusterings(make([]), make([], method="b")).rand_index == 1.0

    def test_symmetry(self):
        a = make([[1, 2, 3], [4, 5]])
        b = make([[1, 2], [3, 4, 5]], method="b")
        ab = compare_clusterings(a, b)
        ba = compare_clusterings(b, a)
        assert ab.rand_index == pytest.approx(ba.rand_index)
        assert ab.splits_a_to_b == ba.splits_b_to_a


class TestOnRealClusterings:
    def test_aware_vs_simple_disagree_materially(
        self, nagano_log, merged_table
    ):
        """Figure 7's point, quantified: the two clusterings are far
        from identical."""
        aware = cluster_log(nagano_log.log, merged_table)
        simple = cluster_log(nagano_log.log, method=METHOD_SIMPLE)
        comparison = compare_clusterings(aware, simple)
        assert not comparison.identical
        assert comparison.splits_a_to_b > 0      # aware clusters shattered
        assert comparison.rand_index < 1.0
        assert "Rand index" in comparison.describe()

    def test_clustering_agrees_with_itself(self, nagano_log, merged_table):
        aware = cluster_log(nagano_log.log, merged_table)
        again = cluster_log(nagano_log.log, merged_table)
        assert compare_clusterings(aware, again).identical

    def test_streamed_equals_batch(self, nagano_log, merged_table):
        from repro.core.realtime import RealTimeClusterer

        batch = cluster_log(nagano_log.log, merged_table)
        clusterer = RealTimeClusterer(
            merged_table,
            window_seconds=nagano_log.log.duration_seconds() + 1.0,
        )
        clusterer.feed_many(nagano_log.log.entries)
        streamed = clusterer.snapshot()
        comparison = compare_clusterings(batch, streamed)
        assert comparison.rand_index == 1.0
        assert comparison.exact_matches == len(batch)
