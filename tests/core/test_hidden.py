"""Unit/integration tests for hidden-client estimation (§4.1.1)."""

import pytest

from repro.core.clustering import cluster_log
from repro.core.hidden import census, estimate_hidden_clients
from repro.core.spiders import Detection, classify_clients


def _fake_detection(client=1, requests=5000, user_agents=6):
    return Detection(
        client=client,
        kind="proxy",
        cluster_prefix="10.0.0.0/24",
        requests=requests,
        unique_urls=100,
        request_share_of_cluster=0.9,
        diurnal_correlation=0.8,
        user_agents=user_agents,
        mean_think_seconds=10.0,
        score=1.0,
    )


class TestEstimate:
    def test_demand_estimate_dominates_for_busy_proxy(self, sun_log):
        detection = _fake_detection(requests=50_000, user_agents=2)
        estimate = estimate_hidden_clients(sun_log.log, detection)
        assert estimate.demand_based_estimate > estimate.user_agent_lower_bound
        assert estimate.estimated_users == estimate.demand_based_estimate

    def test_ua_bound_dominates_for_light_proxy(self, sun_log):
        detection = _fake_detection(requests=30, user_agents=8)
        estimate = estimate_hidden_clients(sun_log.log, detection)
        assert estimate.estimated_users >= 8

    def test_estimate_at_least_one(self, sun_log):
        detection = _fake_detection(requests=1, user_agents=0)
        estimate = estimate_hidden_clients(
            sun_log.log, detection, ua_concurrency_factor=1.0
        )
        assert estimate.estimated_users >= 1

    def test_rejects_bad_factor(self, sun_log):
        with pytest.raises(ValueError):
            estimate_hidden_clients(sun_log.log, _fake_detection(), 0.5)


class TestCensus:
    def test_census_on_sun_log(self, sun_log, merged_table):
        clusters = cluster_log(sun_log.log, merged_table)
        detections = classify_clients(sun_log.log, clusters)
        result = census(sun_log.log, detections)
        assert result.spiders == len(sun_log.spider_clients)
        assert result.proxies >= len(sun_log.proxy_clients)
        assert result.visible_clients + result.spiders + result.proxies == (
            sun_log.log.num_clients()
        )
        # The planted proxy relays thousands of requests: many users.
        assert result.estimated_hidden_clients > result.proxies
        assert result.total_effective_users > result.visible_clients
        assert "visible" in result.describe()

    def test_census_with_no_detections(self, nagano_log):
        from repro.core.spiders import DetectionReport

        result = census(nagano_log.log, DetectionReport())
        assert result.spiders == 0
        assert result.proxies == 0
        assert result.estimated_hidden_clients == 0
        assert result.visible_clients == nagano_log.log.num_clients()
