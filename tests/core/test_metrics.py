"""Unit tests for cluster distribution metrics."""

import pytest

from repro.core.clustering import Cluster, ClusterSet
from repro.core.metrics import (
    cdf,
    distributions,
    fraction_below,
    prefix_length_histogram,
    summary,
)
from repro.net.prefix import Prefix


def make_set():
    clusters = [
        Cluster(Prefix.from_cidr("10.0.0.0/24"), clients=[1, 2, 3],
                requests=10, unique_urls=5, total_bytes=100),
        Cluster(Prefix.from_cidr("10.0.1.0/24"), clients=[4],
                requests=100, unique_urls=2, total_bytes=1000),
        Cluster(Prefix.from_cidr("10.0.2.0/23"), clients=[5, 6],
                requests=50, unique_urls=8, total_bytes=500),
    ]
    return ClusterSet("t", "network-aware", clusters, unclustered_clients=[7])


class TestDistributions:
    def test_reverse_order_of_clients(self):
        dist = distributions(make_set(), order_by="clients")
        assert list(dist.clients) == [3, 2, 1]
        # Aligned: position i in every series refers to one cluster.
        assert list(dist.requests) == [10, 50, 100]
        assert list(dist.unique_urls) == [5, 8, 2]

    def test_reverse_order_of_requests(self):
        dist = distributions(make_set(), order_by="requests")
        assert list(dist.requests) == [100, 50, 10]
        assert list(dist.clients) == [1, 2, 3]

    def test_identifiers_traceable(self):
        dist = distributions(make_set(), order_by="requests")
        assert dist.identifiers[0] == "10.0.1.0/24"

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            distributions(make_set(), order_by="bytes")


class TestCdf:
    def test_steps(self):
        steps = cdf([1, 1, 2, 5])
        assert steps == [(1, 0.5), (2, 0.75), (5, 1.0)]

    def test_empty(self):
        assert cdf([]) == []

    def test_single(self):
        assert cdf([7]) == [(7, 1.0)]


class TestFractionBelow:
    def test_strictly_below(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5
        assert fraction_below([], 3) == 0.0
        assert fraction_below([5], 100) == 1.0


class TestSummary:
    def test_values(self):
        stats = summary(make_set())
        assert stats.num_clusters == 3
        assert stats.num_clients == 7  # 6 clustered + 1 unclustered
        assert stats.clustered_fraction == pytest.approx(6 / 7)
        assert (stats.min_clients, stats.max_clients) == (1, 3)
        assert (stats.min_requests, stats.max_requests) == (10, 100)
        assert stats.mean_clients == pytest.approx(2.0)
        assert stats.variance_clients == pytest.approx(2 / 3)
        assert "network-aware" in stats.describe()

    def test_empty_set(self):
        empty = ClusterSet("t", "simple", [])
        stats = summary(empty)
        assert stats.num_clusters == 0
        assert stats.clustered_fraction == 1.0


def test_prefix_length_histogram():
    assert prefix_length_histogram(make_set()) == {24: 2, 23: 1}
