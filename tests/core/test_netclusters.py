"""Unit/integration tests for second-level network clusters (§3.6)."""

import random

import pytest

from repro.core.clustering import cluster_log
from repro.core.netclusters import cluster_networks


class TestNetworkClusters:
    def _clusters(self, nagano_log, merged_table):
        return cluster_log(nagano_log.log, merged_table)

    def test_levels_aggregate_progressively(
        self, nagano_log, merged_table, traceroute
    ):
        clusters = self._clusters(nagano_log, merged_table)
        sizes = []
        for level in (1, 2, 3):
            grouped = cluster_networks(clusters, traceroute, level=level)
            sizes.append(len(grouped))
        assert sizes[0] >= sizes[1] >= sizes[2]
        assert sizes[2] < len(clusters)

    def test_every_cluster_in_exactly_one_group(
        self, nagano_log, merged_table, traceroute
    ):
        clusters = self._clusters(nagano_log, merged_table)
        grouped = cluster_networks(clusters, traceroute, level=2)
        members = [id(c) for g in grouped.groups for c in g.members]
        assert len(members) == len(clusters)
        assert len(set(members)) == len(members)

    def test_group_metrics_roll_up(self, nagano_log, merged_table, traceroute):
        clusters = self._clusters(nagano_log, merged_table)
        grouped = cluster_networks(clusters, traceroute, level=2)
        total = sum(g.requests for g in grouped.groups)
        assert total == sum(c.requests for c in clusters.clusters)
        busiest = grouped.sorted_by_requests()[0]
        assert busiest.requests >= grouped.sorted_by_requests()[-1].requests

    def test_probe_budget_respected(self, nagano_log, merged_table, traceroute):
        clusters = self._clusters(nagano_log, merged_table)
        grouped = cluster_networks(
            clusters, traceroute, samples_per_cluster=2, level=2,
            rng=random.Random(1),
        )
        assert grouped.probes_used <= 2 * len(clusters)

    def test_rejects_bad_parameters(self, nagano_log, merged_table, traceroute):
        clusters = self._clusters(nagano_log, merged_table)
        with pytest.raises(ValueError):
            cluster_networks(clusters, traceroute, samples_per_cluster=0)
        with pytest.raises(ValueError):
            cluster_networks(clusters, traceroute, level=0)
