"""Unit/integration tests for proxy placement and latency evaluation."""

import pytest

from repro.core.clustering import ClusterSet, cluster_log
from repro.core.placement import evaluate_latency, plan_placement
from repro.core.threshold import threshold_busy_clusters
from repro.simnet.geo import GeoModel


@pytest.fixture(scope="module")
def geo(topology):
    return GeoModel(topology)


@pytest.fixture(scope="module")
def clusters(nagano_log, merged_table):
    return cluster_log(nagano_log.log, merged_table)


class TestPlanPlacement:
    def test_every_cluster_placed_once(self, clusters, topology, geo):
        plan = plan_placement(clusters, topology, geo)
        placed = sum(site.num_clusters for site in plan.sites)
        assert placed + plan.unplaced_clusters == len(clusters)

    def test_sites_are_single_as(self, clusters, topology, geo):
        plan = plan_placement(clusters, topology, geo)
        for site in plan.sites:
            for cluster in site.members:
                autonomous_system = topology.as_for_address(cluster.clients[0])
                assert autonomous_system.asn == site.asn

    def test_fewer_sites_than_clusters(self, clusters, topology, geo):
        plan = plan_placement(clusters, topology, geo)
        assert len(plan) < len(clusters)

    def test_radius_zero_rejected(self, clusters, topology, geo):
        with pytest.raises(ValueError):
            plan_placement(clusters, topology, geo, radius_km=0.0)

    def test_larger_radius_fewer_or_equal_sites(self, clusters, topology, geo):
        tight = plan_placement(clusters, topology, geo, radius_km=50.0)
        loose = plan_placement(clusters, topology, geo, radius_km=5000.0)
        assert len(loose) <= len(tight)

    def test_bogus_clients_unplaced(self, topology, geo, nagano_log,
                                    merged_table):
        from repro.core.clustering import Cluster
        from repro.net.prefix import Prefix

        import random

        bogus = Cluster(
            Prefix.from_cidr("127.1.2.3/32"),
            clients=[topology.unallocated_address(random.Random(1))],
            requests=5,
        )
        lone = ClusterSet("t", "network-aware", [bogus])
        plan = plan_placement(lone, topology, geo)
        assert plan.unplaced_clusters == 1
        assert len(plan) == 0

    def test_demand_ordering(self, clusters, topology, geo):
        plan = plan_placement(clusters, topology, geo)
        ordered = plan.sorted_by_requests()
        requests = [site.requests for site in ordered]
        assert requests == sorted(requests, reverse=True)

    def test_site_of_lookup(self, clusters, topology, geo):
        plan = plan_placement(clusters, topology, geo)
        a_cluster = plan.sites[0].members[0]
        assert plan.site_of(a_cluster) is plan.sites[0]


class TestLatencyEvaluation:
    def _origin(self, topology):
        # Use a US backbone AS as the origin server's home.
        return next(
            asn for asn, a_s in topology.ases.items()
            if a_s.kind == "backbone"
        )

    def test_placement_reduces_latency(self, clusters, topology, geo):
        """§1's motivation quantified: serving from nearby proxy
        clusters beats the single origin."""
        plan = plan_placement(clusters, topology, geo)
        report = evaluate_latency(plan, topology, geo, self._origin(topology))
        assert report.placed_ms < report.baseline_ms
        assert 0.0 < report.reduction < 1.0

    def test_busy_only_placement_still_reduces(self, clusters, topology, geo):
        busy = threshold_busy_clusters(clusters).busy
        busy_set = ClusterSet(clusters.log_name, clusters.method, busy)
        plan = plan_placement(busy_set, topology, geo)
        report = evaluate_latency(plan, topology, geo, self._origin(topology))
        assert report.reduction > 0.0

    def test_empty_plan(self, topology, geo):
        from repro.core.placement import PlacementPlan

        report = evaluate_latency(
            PlacementPlan(sites=[], unplaced_clusters=0),
            topology, geo, self._origin(topology),
        )
        assert report.weighted_requests == 0
        assert report.reduction == 0.0
