"""Unit/integration tests for real-time sliding-window clustering."""

import pytest

from repro.bgp.table import MergedPrefixTable, RoutingTable
from repro.core.clustering import cluster_log
from repro.core.realtime import RealTimeClusterer
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog


def small_table() -> MergedPrefixTable:
    table = RoutingTable("T")
    table.add_prefix(Prefix.from_cidr("10.0.0.0/24"))
    table.add_prefix(Prefix.from_cidr("10.0.1.0/24"))
    merged = MergedPrefixTable()
    merged.add_table(table)
    return merged


def entry(client: str, t: float, url: str = "/a", size: int = 100) -> LogEntry:
    return LogEntry(parse_ipv4(client), t, url, size)


class TestWindowMechanics:
    def test_entries_accumulate_within_window(self):
        clusterer = RealTimeClusterer(small_table(), window_seconds=100.0)
        clusterer.feed(entry("10.0.0.1", 0.0))
        clusterer.feed(entry("10.0.0.2", 50.0))
        stats = clusterer.stats()
        assert stats.entries == 2
        assert stats.clients == 2
        assert stats.clusters == 1

    def test_old_entries_expire(self):
        clusterer = RealTimeClusterer(small_table(), window_seconds=100.0)
        clusterer.feed(entry("10.0.0.1", 0.0))
        clusterer.feed(entry("10.0.1.1", 500.0))
        stats = clusterer.stats()
        assert stats.entries == 1
        assert stats.clusters == 1
        snapshot = clusterer.snapshot()
        assert [c.identifier.cidr for c in snapshot.clusters] == ["10.0.1.0/24"]

    def test_rejects_time_travel(self):
        clusterer = RealTimeClusterer(small_table(), window_seconds=100.0)
        clusterer.feed(entry("10.0.0.1", 100.0))
        with pytest.raises(ValueError):
            clusterer.feed(entry("10.0.0.1", 50.0))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RealTimeClusterer(small_table(), window_seconds=0.0)

    def test_unclustered_clients_tracked_and_expired(self):
        clusterer = RealTimeClusterer(small_table(), window_seconds=100.0)
        clusterer.feed(entry("192.168.9.9", 0.0))
        assert clusterer.snapshot().unclustered_clients == [
            parse_ipv4("192.168.9.9")
        ]
        clusterer.feed(entry("10.0.0.1", 500.0))
        assert clusterer.snapshot().unclustered_clients == []

    def test_assignment_cache_limits_lookups(self):
        clusterer = RealTimeClusterer(small_table(), window_seconds=1000.0)
        for t in range(20):
            clusterer.feed(entry("10.0.0.1", float(t)))
        assert clusterer.lookups_performed == 1
        assert clusterer.entries_processed == 20


class TestSnapshotCorrectness:
    def test_snapshot_matches_batch_clustering(self, nagano_log, merged_table):
        """The streaming window over the whole log must equal one batch
        clustering of the same entries."""
        log = nagano_log.log
        duration = log.duration_seconds() + 1.0
        clusterer = RealTimeClusterer(merged_table, window_seconds=duration)
        clusterer.feed_many(log.entries)
        streamed = clusterer.snapshot()
        batch = cluster_log(log, merged_table)
        streamed_map = {
            c.identifier: (c.num_clients, c.requests, c.unique_urls,
                           c.total_bytes)
            for c in streamed.clusters
        }
        batch_map = {
            c.identifier: (c.num_clients, c.requests, c.unique_urls,
                           c.total_bytes)
            for c in batch.clusters
        }
        assert streamed_map == batch_map
        assert sorted(streamed.unclustered_clients) == sorted(
            set(batch.unclustered_clients)
        )

    def test_windowed_snapshot_matches_window_slice(
        self, nagano_log, merged_table
    ):
        log = nagano_log.log
        window = 6 * 3600.0
        clusterer = RealTimeClusterer(merged_table, window_seconds=window)
        clusterer.feed_many(log.entries)
        streamed = clusterer.snapshot()
        last_time = log.entries[-1].timestamp
        recent = WebLog(
            "slice",
            [e for e in log.entries if e.timestamp >= last_time - window],
        )
        batch = cluster_log(recent, merged_table)
        assert len(streamed) == len(batch)
        assert streamed.total_requests == batch.total_requests

    def test_busiest_ordering(self, nagano_log, merged_table):
        clusterer = RealTimeClusterer(merged_table, window_seconds=1e9)
        clusterer.feed_many(nagano_log.log.entries)
        busiest = clusterer.busiest(5)
        counts = [requests for _, requests in busiest]
        assert counts == sorted(counts, reverse=True)


class TestAdaptation:
    def test_update_table_reroutes_new_requests(self):
        clusterer = RealTimeClusterer(small_table(), window_seconds=1e6)
        clusterer.feed(entry("10.0.0.1", 0.0))
        # New table splits the /24 into /25s.
        fresh = RoutingTable("T2")
        fresh.add_prefix(Prefix.from_cidr("10.0.0.0/25"))
        fresh.add_prefix(Prefix.from_cidr("10.0.0.128/25"))
        merged = MergedPrefixTable()
        merged.add_table(fresh)
        clusterer.update_table(merged)
        clusterer.feed(entry("10.0.0.200", 1.0))
        prefixes = {c.identifier.cidr for c in clusterer.snapshot().clusters}
        assert "10.0.0.128/25" in prefixes  # new route used
        assert "10.0.0.0/24" in prefixes    # old assignment ages out later
