"""Unit/integration tests for the one-call site analysis."""

from repro.core.report import analyze_log


class TestAnalyzeLog:
    def test_full_report_on_sun_log(self, sun_log, merged_table, dns,
                                    topology):
        report = analyze_log(
            sun_log.log, merged_table, dns=dns, topology=topology
        )
        assert report.log_stats.requests == len(sun_log.log)
        assert report.cluster_summary.num_clusters == len(report.cluster_set)
        # The planted spider must be caught and excluded from busy work.
        assert set(sun_log.spider_clients) <= set(
            report.detections.spider_clients()
        )
        assert any("spider/proxy" in note for note in report.notes)
        assert report.validation_pass_rate is not None
        assert 0.0 <= report.validation_pass_rate <= 1.0

    def test_report_without_oracles(self, nagano_log, merged_table):
        report = analyze_log(nagano_log.log, merged_table)
        assert report.validation_pass_rate is None
        assert report.busy.busy

    def test_busy_share_respected(self, nagano_log, merged_table):
        strict = analyze_log(nagano_log.log, merged_table, busy_share=0.5)
        loose = analyze_log(nagano_log.log, merged_table, busy_share=0.9)
        assert len(loose.busy.busy) >= len(strict.busy.busy)

    def test_render_contains_all_sections(self, sun_log, merged_table, dns,
                                          topology):
        report = analyze_log(
            sun_log.log, merged_table, dns=dns, topology=topology
        )
        text = report.render()
        for marker in ("=== log ===", "=== clusters ===",
                       "=== robots and relays ===",
                       "=== busy clusters", "=== notes ==="):
            assert marker in text

    def test_census_consistent_with_detections(self, sun_log, merged_table):
        report = analyze_log(sun_log.log, merged_table)
        assert report.client_census.spiders == len(report.detections.spiders)
        assert report.client_census.proxies == len(report.detections.proxies)
