"""Regression: analyze_log is bit-identical across repeated runs.

The validation-sampling RNG used to be constructed with a raw
``random.Random(seed)``; it now flows through :func:`repro.util.rng`
(the determinism lint's first real catch).  Identical inputs must pin
identical reports — pass rate, notes, and the rendered digest.
"""

from __future__ import annotations

from repro.core.report import analyze_log


class TestReportDeterminism:
    def test_identical_reports_across_two_runs(
        self, sun_log, merged_table, dns, topology
    ):
        first = analyze_log(
            sun_log.log, merged_table, dns=dns, topology=topology, seed=7
        )
        second = analyze_log(
            sun_log.log, merged_table, dns=dns, topology=topology, seed=7
        )
        assert first.validation_pass_rate == second.validation_pass_rate
        assert first.notes == second.notes
        assert first.render() == second.render()

    def test_seed_reaches_the_validation_sampler(
        self, sun_log, merged_table, dns, topology
    ):
        # Different seeds must be allowed to pick different samples; run
        # a handful and require at least the machinery to stay coherent
        # (every rate well-formed, each seed self-consistent).
        rates = {}
        for seed in (1, 2, 3):
            report = analyze_log(
                sun_log.log, merged_table, dns=dns, topology=topology,
                seed=seed,
            )
            again = analyze_log(
                sun_log.log, merged_table, dns=dns, topology=topology,
                seed=seed,
            )
            assert report.validation_pass_rate == again.validation_pass_rate
            rates[seed] = report.validation_pass_rate
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())
