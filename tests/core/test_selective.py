"""Unit tests for selective-sampling (tolerant) validation."""

import random

import pytest

from repro.core.clustering import Cluster, cluster_log
from repro.core.selective import (
    MODE_CLIENT,
    MODE_REQUEST,
    selective_validate,
)
from repro.core.validation import nslookup_validate, sample_clusters
from repro.net.prefix import Prefix
from repro.weblog.stats import requests_by_client


def _mixed_cluster(topology, dns, rng, majority=19, minority=1):
    """A cluster of ``majority`` clients from one resolvable entity plus
    ``minority`` from another."""
    resolvable_leafs = [
        leaf for leaf in topology.leaf_networks
        if topology.entities[leaf.entity_id].resolvable
        and leaf.capacity >= majority + 2
    ]
    main_leaf = None
    main_hosts = []
    for leaf in resolvable_leafs:
        hosts = [
            h for h in topology.hosts_in_leaf(leaf, majority * 3, rng)
            if dns.resolve(h)
        ]
        if len(hosts) >= majority:
            main_leaf, main_hosts = leaf, hosts[:majority]
            break
    assert main_leaf is not None
    other_hosts = []
    for leaf in resolvable_leafs:
        if leaf.entity_id == main_leaf.entity_id:
            continue
        hosts = [
            h for h in topology.hosts_in_leaf(leaf, minority * 4, rng)
            if dns.resolve(h)
        ]
        if len(hosts) >= minority:
            other_hosts = hosts[:minority]
            break
    assert other_hosts
    return Cluster(
        Prefix.from_cidr("0.0.0.0/0"), clients=main_hosts + other_hosts
    )


class TestClientBased:
    def test_tolerant_passes_where_strict_fails(self, topology, dns):
        rng = random.Random(1)
        cluster = _mixed_cluster(topology, dns, rng, majority=19, minority=1)
        strict = nslookup_validate([cluster], dns, topology)
        assert strict.misidentified == 1
        tolerant = selective_validate([cluster], dns, tolerance=0.10)
        assert tolerant.pass_rate == 1.0
        assert tolerant.verdicts[0].agreement >= 0.9

    def test_zero_tolerance_equals_strict_for_this_cluster(self, topology, dns):
        rng = random.Random(2)
        cluster = _mixed_cluster(topology, dns, rng)
        report = selective_validate([cluster], dns, tolerance=0.0)
        assert report.misidentified == 1

    def test_unresolvable_cluster_passes_vacuously(self, topology, dns):
        hidden = next(
            leaf for leaf in topology.leaf_networks
            if not topology.entities[leaf.entity_id].resolvable
        )
        rng = random.Random(3)
        cluster = Cluster(hidden.prefix,
                          clients=topology.hosts_in_leaf(hidden, 3, rng))
        report = selective_validate([cluster], dns)
        assert report.pass_rate == 1.0
        assert report.verdicts[0].weighted_total == 0.0


class TestRequestBased:
    def test_busy_minority_fails_request_mode(self, topology, dns):
        """One disagreeing client passes client-based validation at 10%
        tolerance but fails request-based when it issues most traffic."""
        rng = random.Random(4)
        cluster = _mixed_cluster(topology, dns, rng, majority=15, minority=1)
        minority_client = cluster.clients[-1]
        # The disagreeing client issues ~25% of the cluster's requests:
        # above the 10% tolerance by weight, but only 1/16 by headcount.
        counts = {client: 10 for client in cluster.clients}
        counts[minority_client] = 50
        client_based = selective_validate(
            [cluster], dns, tolerance=0.10, mode=MODE_CLIENT
        )
        request_based = selective_validate(
            [cluster], dns, tolerance=0.10, mode=MODE_REQUEST,
            request_counts=counts,
        )
        assert client_based.pass_rate == 1.0
        assert request_based.misidentified == 1

    def test_request_mode_requires_counts(self, topology, dns):
        with pytest.raises(ValueError):
            selective_validate([], dns, mode=MODE_REQUEST)


class TestArguments:
    def test_rejects_bad_tolerance(self, dns):
        with pytest.raises(ValueError):
            selective_validate([], dns, tolerance=1.0)
        with pytest.raises(ValueError):
            selective_validate([], dns, tolerance=-0.1)

    def test_rejects_unknown_mode(self, dns):
        with pytest.raises(ValueError):
            selective_validate([], dns, mode="vibes")


class TestOnRealClustering:
    def test_tolerant_rate_at_least_strict_rate(
        self, topology, dns, merged_table, nagano_log
    ):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.3, random.Random(5), minimum=40)
        strict = nslookup_validate(sample, dns, topology)
        tolerant = selective_validate(sample, dns, tolerance=0.05)
        assert tolerant.pass_rate >= strict.pass_rate

    def test_request_mode_runs_on_real_log(
        self, dns, merged_table, nagano_log
    ):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.2, random.Random(6), minimum=25)
        counts = requests_by_client(nagano_log.log)
        report = selective_validate(
            sample, dns, tolerance=0.05, mode=MODE_REQUEST,
            request_counts=counts,
        )
        assert 0.0 <= report.pass_rate <= 1.0
