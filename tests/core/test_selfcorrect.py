"""Unit/integration tests for self-correction (§3.5)."""

import random

import pytest

from repro.core.clustering import Cluster, ClusterSet, cluster_log
from repro.core.selfcorrect import SelfCorrector, covering_prefix
from repro.core.validation import ground_truth_validate
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix


class TestCoveringPrefix:
    def test_single_address_is_host_route(self):
        assert covering_prefix([parse_ipv4("1.2.3.4")]) == Prefix.from_cidr(
            "1.2.3.4/32"
        )

    def test_two_neighbours(self):
        cover = covering_prefix(
            [parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.2")]
        )
        assert cover == Prefix.from_cidr("10.0.0.0/30")

    def test_wide_spread(self):
        cover = covering_prefix(
            [parse_ipv4("10.0.0.1"), parse_ipv4("10.255.0.1")]
        )
        assert cover == Prefix.from_cidr("10.0.0.0/8")

    def test_covers_all_inputs(self):
        addresses = [parse_ipv4(a) for a in ("10.0.1.5", "10.0.2.9", "10.0.3.77")]
        cover = covering_prefix(addresses)
        assert all(cover.contains_address(a) for a in addresses)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            covering_prefix([])


class TestCorrectionPass:
    def _split_cluster_world(self, topology):
        """Build a cluster set where one big leaf network was split in
        two clusters and one cluster wrongly spans two entities."""
        rng = random.Random(1)
        big = max(topology.leaf_networks, key=lambda l: l.capacity)
        hosts = topology.hosts_in_leaf(big, 6, rng)
        left, right = big.prefix.children()
        split_a = Cluster(left, clients=[h for h in hosts if left.contains_address(h)],
                          requests=5)
        split_b = Cluster(right, clients=[h for h in hosts if right.contains_address(h)],
                          requests=7)
        clusters = [c for c in (split_a, split_b) if c.clients]
        return ClusterSet("t", "network-aware", clusters)

    def test_merges_same_network_clusters(self, topology, traceroute):
        cluster_set = self._split_cluster_world(topology)
        if len(cluster_set) < 2:
            pytest.skip("split did not produce two halves")
        corrector = SelfCorrector(traceroute, samples_per_cluster=3, seed=2)
        corrected, report = corrector.correct(cluster_set)
        assert report.merges >= 1
        assert len(corrected) < len(cluster_set)
        merged = max(corrected.clusters, key=lambda c: c.num_clients)
        assert merged.requests == 12  # metrics summed on merge

    def test_splits_mixed_cluster(self, topology, traceroute):
        rng = random.Random(3)
        leafs = rng.sample(topology.leaf_networks, 30)
        distinct = [
            l for l in leafs[:10]
            if l.entity_id != leafs[0].entity_id
        ]
        host_a = topology.hosts_in_leaf(leafs[0], 2, rng)
        host_b = topology.hosts_in_leaf(distinct[0], 2, rng)
        mixed = Cluster(
            covering_prefix(host_a + host_b), clients=host_a + host_b
        )
        cluster_set = ClusterSet("t", "network-aware", [mixed])
        corrector = SelfCorrector(traceroute, samples_per_cluster=4, seed=4)
        corrected, report = corrector.correct(cluster_set)
        assert report.splits >= 1
        assert len(corrected) >= 2

    def test_absorbs_unclustered_clients(self, topology, traceroute):
        rng = random.Random(5)
        leaf = max(topology.leaf_networks, key=lambda l: l.capacity)
        hosts = topology.hosts_in_leaf(leaf, 4, rng)
        known = Cluster(leaf.prefix, clients=hosts[:2])
        cluster_set = ClusterSet(
            "t", "network-aware", [known], unclustered_clients=hosts[2:]
        )
        corrector = SelfCorrector(traceroute, samples_per_cluster=4, seed=6)
        corrected, report = corrector.correct(cluster_set)
        assert corrected.unclustered_clients == []
        merged = max(corrected.clusters, key=lambda c: c.num_clients)
        assert set(hosts) <= set(merged.clients)

    def test_input_not_mutated(self, topology, traceroute):
        cluster_set = self._split_cluster_world(topology)
        before = [(c.identifier, tuple(c.clients)) for c in cluster_set.clusters]
        corrector = SelfCorrector(traceroute, seed=7)
        corrector.correct(cluster_set)
        after = [(c.identifier, tuple(c.clients)) for c in cluster_set.clusters]
        assert before == after

    def test_improves_ground_truth_accuracy(
        self, topology, traceroute, merged_table, nagano_log
    ):
        """The paper's claim: self-correction raises accuracy."""
        clusters = cluster_log(nagano_log.log, merged_table)
        corrector = SelfCorrector(traceroute, samples_per_cluster=3, seed=8)
        corrected, _ = corrector.correct(clusters)
        before = ground_truth_validate(clusters.clusters, topology).pass_rate
        after = ground_truth_validate(corrected.clusters, topology).pass_rate
        assert after >= before

    def test_report_describe(self, topology, traceroute):
        cluster_set = self._split_cluster_world(topology)
        corrector = SelfCorrector(traceroute, seed=9)
        _, report = corrector.correct(cluster_set)
        text = report.describe()
        assert "merges" in text and "splits" in text
