"""Unit/integration tests for server clustering (§3.6)."""

from repro.core.servercluster import cluster_servers
from repro.weblog.presets import make_log


class TestServerClustering:
    def test_isp_trace_clusters_servers(self, topology, merged_table):
        synthetic = make_log(topology, "isp", scale=0.08, seed=9)
        report = cluster_servers(synthetic.log, merged_table)
        assert report.unique_servers == synthetic.log.num_clients()
        assert len(report.cluster_set) < report.unique_servers
        assert report.unclusterable_fraction < 0.01

    def test_request_concentration(self, topology, merged_table):
        """Paper: ~4% of server clusters receive 70% of requests."""
        synthetic = make_log(topology, "isp", scale=0.08, seed=9)
        report = cluster_servers(synthetic.log, merged_table)
        assert report.top_cluster_share(0.70) < 0.5
        assert 0.0 < report.top_cluster_share(0.70) <= 1.0

    def test_share_monotone_in_target(self, topology, merged_table):
        synthetic = make_log(topology, "isp", scale=0.08, seed=9)
        report = cluster_servers(synthetic.log, merged_table)
        assert report.top_cluster_share(0.5) <= report.top_cluster_share(0.9)

    def test_describe_mentions_counts(self, topology, merged_table):
        synthetic = make_log(topology, "isp", scale=0.08, seed=9)
        report = cluster_servers(synthetic.log, merged_table)
        assert "servers" in report.describe()
