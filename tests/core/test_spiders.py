"""Unit/integration tests for spider/proxy detection (§4.1.2)."""

from repro.core.clustering import cluster_log
from repro.core.spiders import (
    arrival_histogram,
    classify_clients,
    detect_proxies,
    detect_spiders,
    pattern_correlation,
    profile_clients,
)
from repro.net.ipv4 import parse_ipv4
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog


class TestPatternCorrelation:
    def test_identical_series(self):
        assert pattern_correlation([1, 5, 2, 8], [1, 5, 2, 8]) == 1.0

    def test_scaled_series(self):
        assert pattern_correlation([1, 5, 2, 8], [2, 10, 4, 16]) == 1.0

    def test_anticorrelated(self):
        assert pattern_correlation([1, 2, 3], [3, 2, 1]) == -1.0

    def test_constant_series_zero(self):
        assert pattern_correlation([4, 4, 4], [1, 2, 3]) == 0.0

    def test_short_series_zero(self):
        assert pattern_correlation([1], [1]) == 0.0


class TestArrivalHistogram:
    def test_counts_all_and_filters(self):
        log = WebLog(
            "t",
            [
                LogEntry(parse_ipv4("1.2.3.4"), 0.0, "/a"),
                LogEntry(parse_ipv4("1.2.3.4"), 3700.0, "/a"),
                LogEntry(parse_ipv4("1.2.3.5"), 100.0, "/a"),
            ],
        )
        assert arrival_histogram(log) == [2, 1]
        assert arrival_histogram(log, {parse_ipv4("1.2.3.5")}) == [1, 0]

    def test_empty_log(self):
        assert arrival_histogram(WebLog("t")) == []


class TestProfiles:
    def test_profile_fields(self):
        log = WebLog(
            "t",
            [
                LogEntry(parse_ipv4("1.2.3.4"), 0.0, "/a", user_agent="UA1"),
                LogEntry(parse_ipv4("1.2.3.4"), 60.0, "/b", user_agent="UA2"),
                LogEntry(parse_ipv4("1.2.3.4"), 120.0, "/a", user_agent="UA1"),
            ],
        )
        profiles = profile_clients(log)
        profile = profiles[parse_ipv4("1.2.3.4")]
        assert profile.requests == 3
        assert profile.unique_urls == 2
        assert profile.user_agents == {"UA1", "UA2"}
        assert profile.mean_think_seconds == 60.0
        assert sum(profile.histogram) == 3

    def test_single_request_infinite_think_time(self):
        log = WebLog("t", [LogEntry(parse_ipv4("1.2.3.4"), 0.0, "/a")])
        profile = profile_clients(log)[parse_ipv4("1.2.3.4")]
        assert profile.mean_think_seconds == float("inf")


class TestDetectionOnPlantedWorkloads:
    def test_sun_spider_detected_exactly(self, sun_log, merged_table):
        clusters = cluster_log(sun_log.log, merged_table)
        detections = detect_spiders(sun_log.log, clusters)
        assert [d.client for d in detections] == sun_log.spider_clients

    def test_sun_proxy_detected(self, sun_log, merged_table):
        clusters = cluster_log(sun_log.log, merged_table)
        report = classify_clients(sun_log.log, clusters)
        assert set(sun_log.proxy_clients) <= set(report.proxy_clients())

    def test_no_false_spiders_in_nagano(self, nagano_log, merged_table):
        """Nagano is a transient event log with no spiders (§4.1.2)."""
        clusters = cluster_log(nagano_log.log, merged_table)
        detections = detect_spiders(nagano_log.log, clusters)
        assert detections == []

    def test_nagano_proxies_found(self, nagano_log, merged_table):
        clusters = cluster_log(nagano_log.log, merged_table)
        report = classify_clients(nagano_log.log, clusters)
        assert set(nagano_log.proxy_clients) <= set(report.proxy_clients())

    def test_spider_never_double_reported_as_proxy(self, sun_log, merged_table):
        clusters = cluster_log(sun_log.log, merged_table)
        report = classify_clients(sun_log.log, clusters)
        assert not set(report.spider_clients()) & set(report.proxy_clients())

    def test_spider_evidence_fields(self, sun_log, merged_table):
        clusters = cluster_log(sun_log.log, merged_table)
        (detection,) = detect_spiders(sun_log.log, clusters)
        assert detection.kind == "spider"
        assert detection.request_share_of_cluster > 0.8
        assert detection.diurnal_correlation < 0.5
        assert detection.unique_urls > 0.1 * sun_log.log.unique_urls()
        assert "spider" in detection.describe()

    def test_proxy_evidence_fields(self, sun_log, merged_table):
        clusters = cluster_log(sun_log.log, merged_table)
        detections = detect_proxies(sun_log.log, clusters)
        planted = set(sun_log.proxy_clients)
        ours = [d for d in detections if d.client in planted]
        assert ours
        assert ours[0].diurnal_correlation >= 0.5
        assert ours[0].user_agents >= 3


class TestDetectionEdgeCases:
    def test_empty_log(self):
        from repro.core.clustering import ClusterSet

        log = WebLog("empty")
        clusters = ClusterSet("empty", "network-aware", [])
        assert detect_spiders(log, clusters) == []
        assert detect_proxies(log, clusters) == []
