"""Unit tests for busy-cluster thresholding (§4.1.3)."""

import pytest

from repro.core.clustering import Cluster, ClusterSet, cluster_log
from repro.core.threshold import threshold_busy_clusters
from repro.net.prefix import Prefix


def make_set(request_counts):
    clusters = [
        Cluster(Prefix.from_cidr(f"10.0.{i}.0/24"), clients=[i],
                requests=count)
        for i, count in enumerate(request_counts)
    ]
    return ClusterSet("t", "network-aware", clusters)


class TestThresholdRule:
    def test_seventy_percent_coverage(self):
        report = threshold_busy_clusters(make_set([70, 20, 5, 3, 2]))
        assert [c.requests for c in report.busy] == [70]
        assert report.busy_requests == 70
        assert report.threshold_requests == 70

    def test_accumulates_until_target(self):
        report = threshold_busy_clusters(make_set([40, 30, 20, 10]))
        # 70% of 100 = 70; 40 + 30 = 70 reached after two clusters.
        assert [c.requests for c in report.busy] == [40, 30]
        assert report.threshold_requests == 30

    def test_custom_share(self):
        report = threshold_busy_clusters(make_set([50, 30, 20]), 0.95)
        assert len(report.busy) == 3

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError):
            threshold_busy_clusters(make_set([1]), 0.0)
        with pytest.raises(ValueError):
            threshold_busy_clusters(make_set([1]), 1.5)

    def test_empty_set(self):
        report = threshold_busy_clusters(make_set([]))
        assert report.busy == [] and report.less_busy == []
        assert report.threshold_requests == 0
        assert report.busy_range() == (0, 0, 0, 0)

    def test_partition_complete(self):
        report = threshold_busy_clusters(make_set([9, 8, 7, 6, 5]))
        assert len(report.busy) + len(report.less_busy) == 5

    def test_busy_are_the_busiest(self):
        report = threshold_busy_clusters(make_set([5, 50, 10, 35]))
        busy_min = min(c.requests for c in report.busy)
        less_max = max(c.requests for c in report.less_busy)
        assert busy_min >= less_max


class TestRanges:
    def test_ranges(self):
        report = threshold_busy_clusters(make_set([40, 30, 20, 10]))
        assert report.busy_range() == (30, 40, 1, 1)
        assert report.less_busy_range() == (10, 20, 1, 1)
        assert "busy" in report.describe()


class TestOnRealClustering:
    def test_busy_fraction_much_smaller_than_total(
        self, nagano_log, merged_table
    ):
        """Table 5's point: 70% of traffic concentrates in a small
        minority of clusters."""
        clusters = cluster_log(nagano_log.log, merged_table)
        report = threshold_busy_clusters(clusters)
        assert len(report.busy) < 0.45 * report.total_clusters
        total = sum(c.requests for c in clusters.clusters)
        assert report.busy_requests >= 0.7 * total
