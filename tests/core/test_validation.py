"""Unit/integration tests for cluster validation (§3.3)."""

import random


from repro.core.clustering import Cluster, cluster_log
from repro.core.validation import (
    ground_truth_validate,
    names_share_suffix,
    nslookup_validate,
    sample_clusters,
    simple_approach_pass_rate,
    traceroute_validate,
)
from repro.net.prefix import Prefix


class TestNamesSuffixRule:
    def test_paper_example_matches(self):
        assert names_share_suffix(
            "macbeth.cs.wits.ac.za", "macabre.cs.wits.ac.za"
        )

    def test_paper_example_mismatches(self):
        # §2's three hosts in one simple cluster but different orgs.
        assert not names_share_suffix(
            "client-151-198-194-17.bellatlantic.net",
            "mailsrv1.wakefern.com",
        )
        assert not names_share_suffix(
            "mailsrv1.wakefern.com", "firewall.commonhealthusa.com"
        )

    def test_short_names_use_two_components(self):
        assert names_share_suffix("a.dummy.com", "b.dummy.com")
        assert not names_share_suffix("a.dummy.com", "a.other.com")

    def test_long_names_use_three_components(self):
        assert names_share_suffix("x.cs.uni.ac.za", "y.ee.uni.ac.za")
        assert not names_share_suffix("x.cs.unia.ac.za", "x.cs.unib.ac.za")

    def test_mixed_lengths_use_smaller_n(self):
        # 3-component vs 5-component: compare last 2.
        assert names_share_suffix("host.isp.net", "a.b.host.isp.net")

    def test_identical_tiny_names(self):
        assert names_share_suffix("localhost", "localhost")
        assert not names_share_suffix("localhost", "otherhost")


class TestSampling:
    def test_sample_size_fraction(self, merged_table, nagano_log):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.05, random.Random(1), minimum=5)
        expected = max(5, round(len(clusters) * 0.05))
        assert len(sample) == min(len(clusters), expected)

    def test_sample_of_empty_set(self):
        from repro.core.clustering import ClusterSet

        assert sample_clusters(ClusterSet("t", "m", []), 0.5) == []

    def test_sample_deterministic_with_rng(self, merged_table, nagano_log):
        clusters = cluster_log(nagano_log.log, merged_table)
        a = sample_clusters(clusters, 0.05, random.Random(9))
        b = sample_clusters(clusters, 0.05, random.Random(9))
        assert [c.identifier for c in a] == [c.identifier for c in b]


class TestNslookupValidation:
    def _run(self, topology, dns, merged_table, nagano_log):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.25, random.Random(2), minimum=30)
        return nslookup_validate(sample, dns, topology,
                                 total_clusters=len(clusters))

    def test_pass_rate_over_90_percent(self, topology, dns, merged_table,
                                       nagano_log):
        report = self._run(topology, dns, merged_table, nagano_log)
        assert report.pass_rate > 0.85  # paper: > 90% (sampling noise)

    def test_roughly_half_clients_resolve(self, topology, dns, merged_table,
                                          nagano_log):
        report = self._run(topology, dns, merged_table, nagano_log)
        ratio = report.reachable_clients / max(1, report.sampled_clients)
        # Wide bounds: the shared test world is small, so per-entity
        # resolvability variance is large; the paper-scale ~50% figure
        # is asserted by the sec33/table3 experiments at full size.
        assert 0.10 < ratio < 0.90

    def test_verdict_counts_consistent(self, topology, dns, merged_table,
                                       nagano_log):
        report = self._run(topology, dns, merged_table, nagano_log)
        assert report.misidentified_non_us <= report.misidentified
        assert report.misidentified == sum(1 for v in report.verdicts if v.failed)

    def test_single_client_cluster_trivially_passes(self, topology, dns):
        cluster = Cluster(Prefix.from_cidr("10.0.0.0/24"), clients=[1])
        report = nslookup_validate([cluster], dns, topology)
        assert report.pass_rate == 1.0

    def test_mixed_entity_cluster_fails(self, topology, dns, merged_table):
        """A handcrafted cluster spanning two resolvable entities with
        different domains must be flagged."""
        resolvable = []
        rng = random.Random(3)
        for leaf in topology.leaf_networks:
            entity = topology.entities[leaf.entity_id]
            if entity.resolvable and entity.kind != "isp_pool":
                host = topology.hosts_in_leaf(leaf, 1, rng)[0]
                if dns.resolve(host):
                    resolvable.append((host, entity.entity_id))
            if len({eid for _, eid in resolvable}) >= 2:
                break
        hosts = []
        seen = set()
        for host, eid in resolvable:
            if eid not in seen:
                hosts.append(host)
                seen.add(eid)
        assert len(hosts) >= 2
        cluster = Cluster(Prefix.from_cidr("0.0.0.0/0"), clients=hosts[:2])
        report = nslookup_validate([cluster], dns, topology)
        assert report.misidentified == 1


class TestTracerouteValidation:
    def test_reaches_every_client(self, topology, traceroute, merged_table,
                                  nagano_log):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.2, random.Random(4), minimum=25)
        report = traceroute_validate(sample, traceroute, topology)
        assert report.reachable_clients == report.sampled_clients

    def test_probe_accounting_attached(self, topology, traceroute,
                                       merged_table, nagano_log):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.1, random.Random(5), minimum=10)
        report = traceroute_validate(sample, traceroute, topology)
        assert report.probe_accounting is not None
        assert report.probe_accounting.destinations == report.sampled_clients

    def test_pass_rate_reasonable(self, topology, traceroute, merged_table,
                                  nagano_log):
        clusters = cluster_log(nagano_log.log, merged_table)
        sample = sample_clusters(clusters, 0.25, random.Random(6), minimum=30)
        report = traceroute_validate(sample, traceroute, topology)
        assert report.pass_rate > 0.8


class TestGroundTruth:
    def test_single_entity_cluster_passes(self, topology):
        rng = random.Random(7)
        leaf = max(topology.leaf_networks, key=lambda l: l.capacity)
        hosts = topology.hosts_in_leaf(leaf, 4, rng)
        cluster = Cluster(leaf.prefix, clients=hosts)
        report = ground_truth_validate([cluster], topology)
        assert report.pass_rate == 1.0

    def test_bogus_client_fails_cluster(self, topology):
        rng = random.Random(8)
        leaf = topology.leaf_networks[0]
        hosts = topology.hosts_in_leaf(leaf, 1, rng)
        hosts.append(topology.unallocated_address(rng))
        cluster = Cluster(Prefix.from_cidr("0.0.0.0/0"), clients=hosts)
        report = ground_truth_validate([cluster], topology)
        assert report.misidentified == 1


class TestSimpleApproachRate:
    def test_counts_only_length_24(self):
        clusters = [
            Cluster(Prefix.from_cidr("10.0.0.0/24")),
            Cluster(Prefix.from_cidr("10.0.0.0/16")),
            Cluster(Prefix.from_cidr("10.0.0.0/28")),
            Cluster(Prefix.from_cidr("10.0.1.0/24")),
        ]
        assert simple_approach_pass_rate(clusters) == 0.5

    def test_empty_sample(self):
        assert simple_approach_pass_rate([]) == 1.0
