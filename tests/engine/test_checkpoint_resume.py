"""Checkpoint/resume determinism, including across process boundaries.

The satellite guarantee: run N batches, checkpoint mid-stream, restore
in a *fresh Python process*, finish ingesting — and the rendered
cluster table is byte-identical to an uninterrupted run.
"""

import os
import pickle
import subprocess
import sys

from repro.engine import EngineConfig, PackedLpm, ShardedClusterEngine
from repro.net.prefix import Prefix
from repro.util.rng import spawn

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))
_SRC = os.path.join(_REPO_ROOT, "src")

#: The fresh process: restore the checkpoint, ingest the remaining
#: triples, write the rendered snapshot bytes out.
_RESUME_SCRIPT = """\
import pickle, sys
from repro.engine import EngineConfig, PackedLpm, ShardedClusterEngine

with open(sys.argv[1], "rb") as handle:
    job = pickle.load(handle)
table = PackedLpm.from_items(job["items"])
engine = ShardedClusterEngine.resume(
    job["checkpoint"], table,
    EngineConfig(num_shards=job["shards"], chunk_size=job["chunk"],
                 use_processes=False),
)
with engine:
    engine.ingest_triples(job["remaining"])
    snapshot = engine.snapshot(name="determinism")
with open(job["out"], "wb") as handle:
    handle.write(pickle.dumps([
        (c.identifier.cidr, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in snapshot.clusters
    ] + [tuple(snapshot.unclustered_clients)]))
"""


def _workload(seed=2000, batches=6, batch_size=500):
    """Seeded synthetic table + request batches (util.rng streams)."""
    table_rng = spawn(seed, "engine-ckpt-table")
    items = []
    for i in range(48):
        items.append((Prefix(table_rng.getrandbits(32), table_rng.randint(8, 24)),
                      f"route-{i}"))
    traffic_rng = spawn(seed, "engine-ckpt-traffic")
    prefixes = [p for p, _ in items]
    all_batches = []
    for _ in range(batches):
        batch = []
        for _ in range(batch_size):
            if traffic_rng.random() < 0.9:
                home = traffic_rng.choice(prefixes)
                client = home.network + traffic_rng.randrange(home.num_addresses)
            else:
                client = traffic_rng.getrandbits(32)
            batch.append((client, f"/u{traffic_rng.randrange(200)}",
                          traffic_rng.randrange(1, 50_000)))
        all_batches.append(batch)
    return items, all_batches


def _render(snapshot):
    return pickle.dumps([
        (c.identifier.cidr, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in snapshot.clusters
    ] + [tuple(snapshot.unclustered_clients)])


def test_resume_in_same_process_is_identical(tmp_path):
    items, batches = _workload()
    table = PackedLpm.from_items(items)
    config = EngineConfig(num_shards=3, chunk_size=128, use_processes=False)

    with ShardedClusterEngine(table, config) as uninterrupted:
        for batch in batches:
            uninterrupted.ingest_triples(batch)
        expected = _render(uninterrupted.snapshot(name="determinism"))

    path = str(tmp_path / "mid.ckpt")
    with ShardedClusterEngine(table, config) as first_half:
        for batch in batches[:3]:
            first_half.ingest_triples(batch)
        first_half.checkpoint(path)

    resumed = ShardedClusterEngine.resume(path, table, config)
    with resumed:
        for batch in batches[3:]:
            resumed.ingest_triples(batch)
        assert _render(resumed.snapshot(name="determinism")) == expected


def test_resume_in_fresh_process_is_byte_identical(tmp_path):
    items, batches = _workload()
    table = PackedLpm.from_items(items)
    config = EngineConfig(num_shards=3, chunk_size=128, use_processes=False)

    with ShardedClusterEngine(table, config) as uninterrupted:
        for batch in batches:
            uninterrupted.ingest_triples(batch)
        expected = _render(uninterrupted.snapshot(name="determinism"))

    checkpoint = str(tmp_path / "mid.ckpt")
    with ShardedClusterEngine(table, config) as first_half:
        for batch in batches[:3]:
            first_half.ingest_triples(batch)
        first_half.checkpoint(checkpoint)

    job_path = str(tmp_path / "job.pickle")
    out_path = str(tmp_path / "snapshot.bytes")
    with open(job_path, "wb") as handle:
        pickle.dump({
            "items": items,
            "checkpoint": checkpoint,
            "remaining": [t for batch in batches[3:] for t in batch],
            "shards": 3,
            "chunk": 128,
            "out": out_path,
        }, handle)

    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _RESUME_SCRIPT, job_path],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    with open(out_path, "rb") as handle:
        assert handle.read() == expected
