"""Unit tests for the repro-engine command-line front end."""

import pytest

from repro.engine.cli import _entries_to_skip, main

ACCESS_LOG = """\
12.65.147.94 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 100
12.65.147.149 - - [13/Feb/1998:09:12:07 +0000] "GET /b HTTP/1.0" 200 200
24.48.3.87 - - [13/Feb/1998:09:16:33 +0000] "GET /a HTTP/1.0" 200 100
24.48.2.166 - - [13/Feb/1998:09:17:20 +0000] "GET /c HTTP/1.0" 200 300
garbage line
"""

DUMP = """\
12.65.128.0/19\thop1\t7018
24.48.2.0/255.255.254.0\thop2\t64500
"""


@pytest.fixture()
def files(tmp_path):
    log = tmp_path / "access.log"
    log.write_text(ACCESS_LOG)
    dump = tmp_path / "routes.txt"
    dump.write_text(DUMP)
    return str(log), str(dump)


class TestBasicRun:
    def test_clusters_and_prints(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump, "--shards", "2",
                     "--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "packed LPM table" in out
        assert "12.65.128.0/19" in out
        assert "24.48.2.0/23" in out
        assert "parsed 4" in out

    def test_metrics_flag(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "engine metrics" in out
        assert "shard_skew" in out

    def test_requires_a_table(self, files):
        log, _ = files
        with pytest.raises(SystemExit):
            main([log])

    def test_max_errors_aborts(self, tmp_path, files, capsys):
        _, dump = files
        bad = tmp_path / "bad.log"
        bad.write_text("nonsense\nmore nonsense\n")
        assert main([str(bad), "--table", dump, "--max-errors", "0"]) == 1
        assert "aborting" in capsys.readouterr().err


def _cluster_table(out):
    """The rendered cluster table (title row onward) from CLI output."""
    lines = out.splitlines()
    start = next(
        i for i, line in enumerate(lines) if "clusters by requests" in line
    )
    return "\n".join(lines[start:])


class TestFastpathFlags:
    """--lpm / --memo-size: different table layouts, identical output."""

    @pytest.fixture()
    def baseline_table(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump]) == 0
        return _cluster_table(capsys.readouterr().out)

    def test_stride_output_is_byte_identical(self, files, baseline_table,
                                             capsys):
        log, dump = files
        assert main([log, "--table", dump, "--lpm", "stride"]) == 0
        out = capsys.readouterr().out
        assert "stride LPM table" in out
        assert "direct slots" in out
        assert _cluster_table(out) == baseline_table

    def test_memoized_output_is_byte_identical(self, files, baseline_table,
                                               capsys):
        log, dump = files
        for kind in ("packed", "stride"):
            assert main([log, "--table", dump, "--lpm", kind,
                         "--memo-size", "4", "--metrics"]) == 0
            out = capsys.readouterr().out
            assert "memo" in out
            assert "memo_hits" in out
            table = _cluster_table(out[: out.index("engine metrics")])
            assert table.strip() == baseline_table.strip()

    def test_stride_resume_from_packed_checkpoint(self, tmp_path, files,
                                                  baseline_table, capsys):
        """A checkpoint written under --lpm packed resumes under
        --lpm stride + memo with an identical final table."""
        log, dump = files
        ckpt = str(tmp_path / "run.ckpt")
        assert main([log, "--table", dump, "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        assert main([log, "--table", dump, "--lpm", "stride",
                     "--memo-size", "64", "--checkpoint", ckpt,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert _cluster_table(out) == baseline_table

    def test_rejects_bad_flags(self, files):
        log, dump = files
        with pytest.raises(SystemExit):
            main([log, "--table", dump, "--lpm", "radix"])
        with pytest.raises(SystemExit):
            main([log, "--table", dump, "--memo-size", "-1"])


class TestCheckpointFlow:
    def test_resume_same_log_skips_already_ingested(self, tmp_path, files,
                                                    capsys):
        log, dump = files
        ckpt = str(tmp_path / "run.ckpt")
        assert main([log, "--table", dump, "--checkpoint", ckpt]) == 0
        first = capsys.readouterr().out
        assert "checkpoint written" in first
        # Resuming against the same log skips its already-counted prefix,
        # so nothing is double-counted and the table is unchanged.
        assert main([log, "--table", dump, "--checkpoint", ckpt,
                     "--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed from" in second
        assert "4 entries already ingested" in second
        assert "skipping the first 4 entries" in second
        assert _cluster_table(second) == _cluster_table(first)

    def test_interrupted_run_resumes_to_identical_table(self, tmp_path,
                                                        capsys):
        dump = tmp_path / "routes.txt"
        dump.write_text(DUMP)
        log = tmp_path / "access.log"
        # The uninterrupted baseline over the full log.
        log.write_text(ACCESS_LOG)
        assert main([str(log), "--table", str(dump)]) == 0
        expected = _cluster_table(capsys.readouterr().out)
        # "Interrupted" run: only the first half of the log existed when
        # the checkpoint was written...
        ckpt = str(tmp_path / "run.ckpt")
        half = "".join(ACCESS_LOG.splitlines(keepends=True)[:2])
        log.write_text(half)
        assert main([str(log), "--table", str(dump),
                     "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        # ...then the full log is replayed with --resume: the first two
        # entries are skipped, the rest ingested, and the final table
        # matches the uninterrupted run exactly.
        log.write_text(ACCESS_LOG)
        assert main([str(log), "--table", str(dump), "--checkpoint", ckpt,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "skipping the first 2 entries" in out
        assert _cluster_table(out) == expected

    def test_resume_different_log_appends(self, tmp_path, files, capsys):
        log, dump = files
        ckpt = str(tmp_path / "run.ckpt")
        assert main([log, "--table", dump, "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        other = tmp_path / "other.log"
        other.write_text(
            '12.65.147.94 - - [13/Feb/1998:10:00:00 +0000] '
            '"GET /d HTTP/1.0" 200 50\n'
        )
        assert main([str(other), "--table", dump, "--checkpoint", ckpt,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "appending all of" in out
        # 4 restored + 1 appended; the /19 cluster now holds 3 requests.
        assert "5 entries already ingested" not in out  # restored 4, not 5
        assert "parsed 1" in out

    def test_entries_to_skip_branches(self, capsys):
        assert _entries_to_skip({}, "a.log") == 0
        assert _entries_to_skip(
            {"log": "a.log", "log_entries": 7}, "a.log"
        ) == 7
        assert _entries_to_skip(
            {"log": "b.log", "log_entries": 7}, "a.log"
        ) == 0
        # Engine-API checkpoints record no source log: never skip.
        assert _entries_to_skip({"num_shards": 2}, "a.log") == 0

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path, files,
                                                    capsys):
        log, dump = files
        ckpt = str(tmp_path / "never-written.ckpt")
        assert main([log, "--table", dump, "--checkpoint", ckpt,
                     "--resume"]) == 0
        assert "starting fresh" in capsys.readouterr().out

    def test_checkpoint_every_requires_path(self, files):
        log, dump = files
        with pytest.raises(SystemExit):
            main([log, "--table", dump, "--checkpoint-every", "100"])

    def test_periodic_checkpointing(self, tmp_path, files, capsys):
        log, dump = files
        ckpt = str(tmp_path / "period.ckpt")
        assert main([log, "--table", dump, "--chunk-size", "2",
                     "--checkpoint", ckpt, "--checkpoint-every", "2",
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        # Two mid-run checkpoints (after each 2-entry chunk) + the final.
        assert "checkpoints_written" in out
        assert "checkpoint written" in out


class TestFaultFlags:
    """The robustness surface: --inject, --quarantine, corrupt --resume."""

    def test_corrupt_checkpoint_fails_resume_with_actionable_error(
        self, tmp_path, files, capsys
    ):
        log, dump = files
        ckpt = str(tmp_path / "run.ckpt")
        assert main([log, "--table", dump, "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        # Flip one payload byte: the CRC must catch it on resume.
        blob = bytearray(open(ckpt, "rb").read())
        blob[-5] ^= 0xFF
        with open(ckpt, "wb") as handle:
            handle.write(bytes(blob))
        assert main([log, "--table", dump, "--checkpoint", ckpt,
                     "--resume"]) == 1
        err = capsys.readouterr().err
        assert "cannot resume" in err
        assert "corrupt" in err
        assert "restore from an older checkpoint" in err

    def test_truncated_checkpoint_fails_resume(self, tmp_path, files,
                                               capsys):
        log, dump = files
        ckpt = str(tmp_path / "run.ckpt")
        assert main([log, "--table", dump, "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        blob = open(ckpt, "rb").read()
        with open(ckpt, "wb") as handle:
            handle.write(blob[: len(blob) // 3])
        assert main([log, "--table", dump, "--checkpoint", ckpt,
                     "--resume"]) == 1
        assert "cannot resume" in capsys.readouterr().err

    def test_inject_plan_is_loaded_and_survived(self, tmp_path, files,
                                                capsys):
        from repro.faults import (
            SITE_WORKER_CRASH,
            FaultPlan,
            FaultSpec,
        )

        log, dump = files
        plan_path = str(tmp_path / "plan.json")
        FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=1), seed=3
        ).save(plan_path)
        # Inline engine (1 shard): the injected crash is retried and the
        # run completes with the same table an undisturbed run prints.
        assert main([log, "--table", dump]) == 0
        undisturbed = _cluster_table(capsys.readouterr().out)
        assert main([log, "--table", dump, "--inject", plan_path,
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "fault injection armed" in out
        assert "worker.crash" in out
        assert "chunk_retries" in out
        # Compare only the cluster table; the metrics block rightly
        # differs (it records the retry).
        table_only = out[: out.index("engine metrics")]
        assert _cluster_table(table_only).strip() == undisturbed.strip()

    def test_quarantine_reports_loss(self, tmp_path, files, capsys):
        from repro.faults import (
            SITE_WORKER_CRASH,
            FaultPlan,
            FaultSpec,
        )

        log, dump = files
        plan_path = str(tmp_path / "plan.json")
        dead_letter = str(tmp_path / "dead.jsonl")
        FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=-1), seed=3
        ).save(plan_path)
        code = main([log, "--table", dump, "--inject", plan_path,
                     "--retries", "1", "--backoff", "0", "--no-degrade",
                     "--quarantine", dead_letter])
        err = capsys.readouterr().err
        # Every chunk quarantined → nothing ingested → exit 1, but the
        # loss is accounted, not silent.
        assert code == 1
        assert "quarantined" in err
        assert open(dead_letter).read().count("\n") >= 1

    def test_log_truncation_fault_shrinks_the_run(self, tmp_path, files,
                                                  capsys):
        from repro.faults import (
            SITE_LOG_TRUNCATE,
            FaultPlan,
            FaultSpec,
        )

        log, dump = files
        plan_path = str(tmp_path / "plan.json")
        FaultPlan.build(
            FaultSpec(site=SITE_LOG_TRUNCATE, arg=2), seed=3
        ).save(plan_path)
        assert main([log, "--table", dump, "--inject", plan_path]) == 0
        assert "parsed 2" in capsys.readouterr().out

    def test_stride_identical_under_fault_plan(self, tmp_path, files,
                                               capsys):
        """--lpm stride + --memo-size under an injected crash still
        prints the exact table an undisturbed packed run prints."""
        from repro.faults import SITE_WORKER_CRASH, FaultPlan, FaultSpec

        log, dump = files
        plan_path = str(tmp_path / "plan.json")
        FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=1), seed=3
        ).save(plan_path)
        assert main([log, "--table", dump]) == 0
        undisturbed = _cluster_table(capsys.readouterr().out)
        assert main([log, "--table", dump, "--lpm", "stride",
                     "--memo-size", "64", "--inject", plan_path]) == 0
        disturbed = capsys.readouterr().out
        assert "stride LPM table" in disturbed
        assert _cluster_table(disturbed).strip() == undisturbed.strip()

    def test_quarantined_chunk_does_not_shift_resume_accounting(
        self, tmp_path, files, capsys
    ):
        """Positional accounting: checkpoint meta counts consumed
        entries, so a quarantined chunk is not replayed on --resume."""
        from repro.faults import (
            SITE_WORKER_CRASH,
            FaultPlan,
            FaultSpec,
        )

        log, dump = files
        ckpt = str(tmp_path / "run.ckpt")
        plan_path = str(tmp_path / "plan.json")
        # Poison only the first 2-entry chunk; chunks 2.. apply fine.
        FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=2), seed=3
        ).save(plan_path)
        assert main([log, "--table", dump, "--chunk-size", "2",
                     "--inject", plan_path, "--retries", "1",
                     "--backoff", "0", "--no-degrade",
                     "--checkpoint", ckpt]) == 0
        capsys.readouterr()
        # All 4 parsed entries were *consumed* (2 quarantined, 2
        # applied): resume must skip all 4 and re-ingest nothing.
        assert main([log, "--table", dump, "--checkpoint", ckpt,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 entries already ingested" in out
        assert "skipping the first 4 entries" in out
