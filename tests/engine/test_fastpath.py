"""Fast path: StrideLpm equivalence, MemoizedLookup bounds/counters,
PackedBatch transport, and end-to-end engine identity across kinds."""

import pickle

import pytest

from repro.core.clustering import cluster_log
from repro.engine import (
    EngineConfig,
    MemoizedLookup,
    PackedBatch,
    PackedLpm,
    ShardedClusterEngine,
    StrideLpm,
    build_lpm_table,
    shard_of,
)
from repro.engine.fastpath import DEFAULT_MEMO_SIZE, LPM_KINDS
from repro.engine.state import ClusterStore
from repro.net.prefix import Prefix
from repro.util.rng import spawn


def _items(cidrs):
    return [(Prefix.from_cidr(cidr), cidr) for cidr in cidrs]


#: Prefix set engineered to hit every stride-slot shape: shorter than
#: /16 (one entry covering many slots), exactly /16, longer prefixes
#: punching into a /16 block (indirect slots), nested prefixes whose
#: intervals resume across a slot boundary, and the address-space
#: extremes.
EDGE_CIDRS = [
    "0.0.0.0/0",
    "10.0.0.0/8",
    "10.1.0.0/16",
    "10.1.2.0/24",
    "10.1.255.0/24",        # run against the top of its /16 block
    "10.2.0.0/15",          # spans two slots exactly
    "172.16.0.0/12",
    "172.16.5.128/25",
    "255.255.0.0/16",
    "255.255.255.255/32",
    "0.0.0.0/32",
]


class TestStrideEquivalence:
    def test_edge_prefixes_agree_with_packed(self):
        packed = PackedLpm.from_items(_items(EDGE_CIDRS))
        stride = StrideLpm.from_items(_items(EDGE_CIDRS))
        probes = [0, 1, (10 << 24) | (1 << 16) | 513, (10 << 24) + 5,
                  (172 << 24) | (16 << 16) | (5 << 8) | 200,
                  2**32 - 1, 2**32 - 2, (10 << 24) | (2 << 16),
                  (10 << 24) | (1 << 16) | 0xFF00, (11 << 24)]
        assert stride.lookup_many(probes) == packed.lookup_many(probes)
        for address in probes:
            assert stride.match_index(address) == packed.match_index(address)
            assert stride.longest_match(address) == packed.longest_match(address)
            assert stride.lookup(address) == packed.lookup(address)

    def test_random_tables_agree_with_packed(self):
        rng = spawn(3000, "stride-vs-packed")
        items = [
            (Prefix(rng.getrandbits(32), rng.randint(2, 32)), i)
            for i in range(1200)
        ]
        packed = PackedLpm.from_items(items)
        stride = StrideLpm.from_items(items)
        probes = [rng.getrandbits(32) for _ in range(20_000)]
        assert stride.lookup_many(probes) == packed.lookup_many(probes)

    def test_empty_table(self):
        stride = StrideLpm.from_items([])
        assert len(stride) == 0
        assert not stride
        assert stride.lookup_many([0, 12345, 2**32 - 1]) == [-1, -1, -1]
        assert stride.longest_match(0) is None
        assert stride.num_direct_slots == 1 << 16

    def test_same_entry_indices_and_digest_as_packed(self, merged_table):
        packed = PackedLpm.from_merged(merged_table)
        stride = StrideLpm.from_merged(merged_table)
        assert stride.digest() == packed.digest()
        assert list(stride.items()) == list(packed.items())
        assert len(stride) == len(packed)
        probe = next(merged_table.prefixes()).network
        index = stride.match_index(probe)
        assert stride.prefix(index) == packed.prefix(index)
        assert stride.value(index) == packed.value(index)

    def test_direct_slots_cover_most_of_the_table(self, merged_table):
        stride = StrideLpm.from_merged(merged_table)
        # The fast path's premise: the vast majority of /16 blocks
        # resolve with one array index, no search.
        assert stride.num_direct_slots > (1 << 16) * 0.5

    def test_pickle_roundtrip(self):
        stride = StrideLpm.from_items(_items(EDGE_CIDRS))
        clone = pickle.loads(pickle.dumps(stride))
        rng = spawn(3000, "stride-pickle")
        probes = [rng.getrandbits(32) for _ in range(5000)]
        assert clone.lookup_many(probes) == stride.lookup_many(probes)
        assert clone.digest() == stride.digest()
        assert clone.num_direct_slots == stride.num_direct_slots


class TestMemoizedLookup:
    def test_results_identical_to_wrapped_table(self):
        table = StrideLpm.from_items(_items(EDGE_CIDRS))
        memo = MemoizedLookup(table, maxsize=64)
        rng = spawn(3000, "memo-results")
        probes = [rng.getrandbits(32) for _ in range(2000)]
        # Twice: cold pass then warm pass must both be right.
        assert memo.lookup_many(probes) == table.lookup_many(probes)
        assert memo.lookup_many(probes) == table.lookup_many(probes)
        address = probes[0]
        assert memo.match_index(address) == table.match_index(address)
        assert memo.longest_match(address) == table.longest_match(address)
        assert memo.lookup(address) == table.lookup(address)

    def test_hits_misses_and_duplicate_misses_in_one_batch(self):
        memo = MemoizedLookup(PackedLpm.from_items(_items(["10.0.0.0/8"])))
        a, b = (10 << 24) + 1, (10 << 24) + 2
        assert memo.lookup_many([a, a, b]) == [0, 0, 0]
        # Both occurrences of a precede its memo fill, so the cold
        # batch is all misses; the memo still stores a exactly once.
        assert memo.hits == 0
        assert memo.misses == 3
        assert memo.lookup_many([a, b]) == [0, 0]
        assert memo.hits == 2
        assert memo.memo_size == 2

    def test_misses_memoized_too(self):
        memo = MemoizedLookup(PackedLpm.from_items(_items(["10.0.0.0/8"])))
        miss = 11 << 24
        assert memo.lookup_many([miss]) == [-1]
        assert memo.lookup_many([miss]) == [-1]
        assert memo.hits == 1 and memo.misses == 1

    def test_fifo_eviction_at_bound(self):
        memo = MemoizedLookup(
            PackedLpm.from_items(_items(["0.0.0.0/0"])), maxsize=3
        )
        memo.lookup_many([1, 2, 3])
        assert memo.memo_size == 3 and memo.evictions == 0
        memo.lookup_many([4])  # evicts 1, the oldest
        assert memo.memo_size == 3 and memo.evictions == 1
        memo.lookup_many([1])  # 1 was evicted: a miss again
        assert memo.misses == 5

    def test_take_memo_stats_drains(self):
        memo = MemoizedLookup(
            PackedLpm.from_items(_items(["0.0.0.0/0"])), maxsize=2
        )
        memo.lookup_many([1, 1, 2, 3])
        assert memo.take_memo_stats() == (0, 4, 1)
        assert memo.take_memo_stats() == (0, 0, 0)
        memo.lookup_many([2, 3])
        assert memo.take_memo_stats() == (2, 0, 0)

    def test_clear_memo(self):
        memo = MemoizedLookup(PackedLpm.from_items(_items(["0.0.0.0/0"])))
        memo.lookup_many([1, 2])
        memo.clear_memo()
        assert memo.memo_size == 0
        memo.lookup_many([1])
        assert memo.misses == 3

    def test_rejects_nonpositive_bound(self):
        table = PackedLpm.from_items([])
        with pytest.raises(ValueError):
            MemoizedLookup(table, maxsize=0)

    def test_pickles_without_memo_state(self):
        memo = MemoizedLookup(
            StrideLpm.from_items(_items(EDGE_CIDRS)), maxsize=7
        )
        memo.lookup_many([1, 2, 3])
        clone = pickle.loads(pickle.dumps(memo))
        assert clone.maxsize == 7
        assert clone.memo_size == 0
        assert (clone.hits, clone.misses, clone.evictions) == (0, 0, 0)
        assert clone.digest() == memo.digest()
        assert clone.lookup_many([1, 2, 3]) == memo.lookup_many([1, 2, 3])

    def test_delegates_table_surface(self):
        table = StrideLpm.from_items(_items(EDGE_CIDRS))
        memo = MemoizedLookup(table)
        assert len(memo) == len(table)
        assert bool(memo)
        assert list(memo.items()) == list(table.items())
        assert memo.prefix(0) == table.prefix(0)
        assert memo.value(0) == table.value(0)


class TestPackedBatch:
    def test_append_interns_urls(self):
        batch = PackedBatch()
        batch.append(1, "/a", 10)
        batch.append(2, "/b", 20)
        batch.append(3, "/a", 30)
        assert len(batch) == 3
        assert list(batch.urls) == ["/a", "/b"]
        assert list(batch.url_ids) == [0, 1, 0]
        assert list(batch.iter_triples()) == [
            (1, "/a", 10), (2, "/b", 20), (3, "/a", 30),
        ]

    def test_from_triples_roundtrip(self):
        triples = [(5, "/x", 0), (6, "/y", 7), (5, "/x", 9)]
        batch = PackedBatch.from_triples(triples)
        assert list(batch.iter_triples()) == triples

    def test_partition_follows_shard_of(self):
        rng = spawn(3000, "packed-batch-partition")
        triples = [
            (rng.getrandbits(32), f"/u{i % 13}", i) for i in range(500)
        ]
        batches = PackedBatch.partition(triples, 4)
        recovered = []
        for shard, batch in enumerate(batches):
            for client, url, size in batch.iter_triples():
                assert shard_of(client, 4) == shard
                recovered.append((client, url, size))
        assert sorted(recovered) == sorted(triples)

    def test_pickle_roundtrip_and_freeze(self):
        batch = PackedBatch.from_triples([(1, "/a", 2), (3, "/b", 4)])
        clone = pickle.loads(pickle.dumps(batch))
        assert list(clone.iter_triples()) == list(batch.iter_triples())
        with pytest.raises(TypeError):
            clone.append(5, "/c", 6)

    def test_apply_packed_matches_apply_batch(self, merged_table, nagano_log):
        table = StrideLpm.from_merged(merged_table)
        triples = [
            (e.client, e.url, e.size) for e in nagano_log.log.entries[:4000]
        ]
        via_triples = ClusterStore()
        via_triples.apply_batch(triples, table)
        via_packed = ClusterStore()
        via_packed.apply_packed(PackedBatch.from_triples(triples), table)
        name = nagano_log.log.name
        assert _signature(via_packed.snapshot(name)) == _signature(
            via_triples.snapshot(name)
        )
        assert via_packed.entries_applied == via_triples.entries_applied


class TestBuildLpmTable:
    def test_kinds(self, merged_table):
        packed = build_lpm_table("packed", merged_table)
        stride = build_lpm_table("stride", merged_table)
        assert isinstance(packed, PackedLpm)
        assert isinstance(stride, StrideLpm)
        assert packed.digest() == stride.digest()
        assert set(LPM_KINDS) == {"packed", "stride"}

    def test_memo_wrapping(self, merged_table):
        table = build_lpm_table("stride", merged_table, memo_size=32)
        assert isinstance(table, MemoizedLookup)
        assert isinstance(table.table, StrideLpm)
        assert table.maxsize == 32
        bare = build_lpm_table("stride", merged_table)
        assert not isinstance(bare, MemoizedLookup)
        assert DEFAULT_MEMO_SIZE > 0

    def test_unknown_kind(self, merged_table):
        with pytest.raises(ValueError):
            build_lpm_table("radix", merged_table)


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes, c.source_kind, c.source_name)
        for c in cluster_set.clusters
    }


class TestEngineIdentityAcrossKinds:
    """Acceptance: every --lpm/--memo combination and transport path
    produces clusters identical to cluster_log."""

    @pytest.fixture(scope="class")
    def baseline(self, nagano_log, merged_table):
        return cluster_log(nagano_log.log, merged_table)

    @pytest.mark.parametrize("kind,memo", [
        ("stride", 0), ("stride", 1024), ("packed", 1024),
    ])
    def test_inline_engine_matches(self, nagano_log, merged_table, baseline,
                                   kind, memo):
        table = build_lpm_table(kind, merged_table, memo)
        config = EngineConfig(num_shards=2, chunk_size=4096,
                              use_processes=False)
        with ShardedClusterEngine(table, config) as engine:
            engine.ingest(nagano_log.log.entries)
            result = engine.snapshot()
        assert _signature(result) == _signature(baseline)

    def test_process_pool_packed_transport_matches(self, nagano_log,
                                                   merged_table, baseline):
        table = build_lpm_table("stride", merged_table, 4096)
        config = EngineConfig(num_shards=2, chunk_size=8192)
        metrics_seen = None
        with ShardedClusterEngine(table, config) as engine:
            engine.ingest(nagano_log.log.entries)
            result = engine.snapshot()
            metrics_seen = engine.metrics
        assert _signature(result) == _signature(baseline)
        # Worker memo counters crossed the process boundary.
        assert metrics_seen.memo_hits + metrics_seen.memo_misses == len(
            nagano_log.log.entries
        )
        assert metrics_seen.memo_hits > 0

    def test_tiny_memo_still_exact(self, nagano_log, merged_table, baseline):
        # A pathologically small memo thrashes (evictions every batch)
        # but can never change results.
        table = build_lpm_table("stride", merged_table, 2)
        config = EngineConfig(num_shards=1, chunk_size=2048)
        with ShardedClusterEngine(table, config) as engine:
            engine.ingest(nagano_log.log.entries)
            result = engine.snapshot()
            assert engine.metrics.memo_evictions > 0
        assert _signature(result) == _signature(baseline)

    def test_checkpoint_moves_between_lpm_kinds(self, tmp_path, nagano_log,
                                                merged_table, baseline):
        """A run checkpointed under --lpm packed resumes under --lpm
        stride (+memo): digest() is kind-independent."""
        entries = nagano_log.log.entries
        half = len(entries) // 2
        packed = build_lpm_table("packed", merged_table)
        config = EngineConfig(num_shards=2, chunk_size=4096,
                              use_processes=False)
        path = str(tmp_path / "swap.ckpt")
        with ShardedClusterEngine(packed, config) as engine:
            engine.ingest(entries[:half])
            engine.checkpoint(path)
        stride_memo = build_lpm_table("stride", merged_table, 1024)
        with ShardedClusterEngine.resume(path, stride_memo, config) as engine:
            engine.ingest(entries[half:])
            result = engine.snapshot()
        assert _signature(result) == _signature(baseline)
