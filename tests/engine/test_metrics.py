"""EngineMetrics: counter math, derived rates, rendering."""

from repro.engine.metrics import EngineMetrics


class TestCounters:
    def test_record_batch_accumulates(self):
        metrics = EngineMetrics(2)
        metrics.record_batch([60, 40], seconds=0.5, lookups=100)
        metrics.record_batch([30, 70], seconds=1.5, lookups=100)
        assert metrics.entries == 200
        assert metrics.lookups == 200
        assert metrics.batches == 2
        assert metrics.shard_entries == [90, 110]
        assert metrics.total_seconds == 2.0
        assert metrics.max_batch_seconds == 1.5
        assert metrics.mean_batch_seconds == 1.0
        assert metrics.entries_per_second == 100.0

    def test_shard_skew(self):
        metrics = EngineMetrics(2)
        metrics.record_batch([150, 50], seconds=1.0, lookups=200)
        assert metrics.shard_skew == 1.5
        balanced = EngineMetrics(4)
        balanced.record_batch([25, 25, 25, 25], seconds=1.0, lookups=100)
        assert balanced.shard_skew == 1.0

    def test_zero_state_is_safe(self):
        metrics = EngineMetrics(3)
        assert metrics.entries_per_second == 0.0
        assert metrics.mean_batch_seconds == 0.0
        assert metrics.shard_skew == 1.0

    def test_event_counters(self):
        metrics = EngineMetrics(1)
        metrics.record_malformed(3)
        metrics.record_checkpoint()
        metrics.record_table_swap()
        snap = metrics.snapshot()
        assert snap["malformed_skipped"] == 3
        assert snap["checkpoints_written"] == 1
        assert snap["table_swaps"] == 1


class TestExport:
    def test_snapshot_keys_are_stable(self):
        snap = EngineMetrics(2).snapshot()
        assert set(snap) == {
            "entries", "lookups", "batches", "malformed_skipped",
            "checkpoints_written", "table_swaps", "num_shards",
            "worker_restarts", "chunk_retries", "chunks_quarantined",
            "entries_quarantined", "checkpoint_rewrites", "degraded",
            "memo_hits", "memo_misses", "memo_evictions",
            "routes_announced", "routes_withdrawn", "clients_reclustered",
            "patches_applied", "patch_rebuild_fallbacks",
            "sanitize_batch_checks", "sanitize_lpm_crosschecks",
            "sanitize_checkpoint_readbacks", "sanitize_rng_draws",
            "wal_appends", "wal_syncs", "wal_rotations",
            "wal_segments_truncated", "wal_recovered_events",
            "wal_truncated_frames", "wal_enospc_recoveries", "shed_events",
            "shm_unlink_failures",
            "total_seconds", "mean_batch_seconds", "max_batch_seconds",
            "patch_seconds", "mean_patch_seconds",
            "entries_per_second", "shard_skew", "memo_hit_rate",
        }

    def test_patch_counters(self):
        metrics = EngineMetrics(1)
        metrics.record_patch(announced=3, withdrawn=2, reclustered=7, seconds=0.5)
        metrics.record_patch(announced=1, withdrawn=0, reclustered=0, seconds=0.25)
        metrics.record_patch_fallback()
        snap = metrics.snapshot()
        assert snap["routes_announced"] == 4
        assert snap["routes_withdrawn"] == 2
        assert snap["clients_reclustered"] == 7
        assert snap["patches_applied"] == 2
        assert snap["patch_rebuild_fallbacks"] == 1
        assert snap["patch_seconds"] == 0.75
        assert snap["mean_patch_seconds"] == 0.375
        assert EngineMetrics(1).mean_patch_seconds == 0.0

    def test_memo_counters(self):
        metrics = EngineMetrics(2)
        metrics.record_memo(75, 25, 10)
        metrics.record_memo(25, 75, 0)
        snap = metrics.snapshot()
        assert snap["memo_hits"] == 100
        assert snap["memo_misses"] == 100
        assert snap["memo_evictions"] == 10
        assert snap["memo_hit_rate"] == 0.5
        assert EngineMetrics(1).memo_hit_rate == 0.0

    def test_fault_counters(self):
        metrics = EngineMetrics(2)
        metrics.record_worker_restart()
        metrics.record_retry()
        metrics.record_retry()
        metrics.record_quarantine(entries=512)
        metrics.record_checkpoint_rewrite()
        metrics.record_degraded()
        snap = metrics.snapshot()
        assert snap["worker_restarts"] == 1
        assert snap["chunk_retries"] == 2
        assert snap["chunks_quarantined"] == 1
        assert snap["entries_quarantined"] == 512
        assert snap["checkpoint_rewrites"] == 1
        assert snap["degraded"] == 1

    def test_render_is_a_table(self):
        metrics = EngineMetrics(2)
        metrics.record_batch([5000, 5000], seconds=0.25, lookups=10_000)
        text = metrics.render()
        assert "engine metrics" in text
        assert "entries_per_second" in text
        assert "40,000" in text  # 10k entries / 0.25 s
        assert "shard_skew" in text
