"""PackedLpm: agreement with the radix trie, immutability, pickling."""

import pickle


from repro.engine.packed import PackedLpm
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree
from repro.util.rng import spawn


def _tree_from(cidrs):
    tree = RadixTree()
    for cidr in cidrs:
        prefix = Prefix.from_cidr(cidr)
        tree.insert(prefix, cidr)
    return tree


class TestCompile:
    def test_empty_table(self):
        packed = PackedLpm.from_items([])
        assert len(packed) == 0
        assert not packed
        assert packed.longest_match(0) is None
        assert packed.lookup_many([0, 1, 2**32 - 1]) == [-1, -1, -1]

    def test_entries_preserved_in_sort_order(self):
        tree = _tree_from(["24.0.0.0/8", "12.65.128.0/19", "24.48.2.0/23"])
        packed = PackedLpm.from_radix(tree)
        assert [p.cidr for p, _ in packed.items()] == [
            "12.65.128.0/19", "24.0.0.0/8", "24.48.2.0/23",
        ]
        assert len(packed) == 3

    def test_duplicate_items_keep_last_value(self):
        prefix = Prefix.from_cidr("10.0.0.0/8")
        packed = PackedLpm.from_items([(prefix, "old"), (prefix, "new")])
        assert packed.longest_match(Prefix.from_cidr("10.1.2.3/32").network) == (
            prefix, "new",
        )

    def test_from_merged_is_lookup_drop_in(self, merged_table):
        packed = PackedLpm.from_merged(merged_table)
        assert len(packed) == len(merged_table)
        probe = next(merged_table.prefixes()).network
        direct = merged_table.lookup(probe)
        via_packed = packed.lookup(probe)
        assert via_packed == direct
        assert via_packed.prefix == direct.prefix
        assert via_packed.source_kind == direct.source_kind


class TestLookup:
    def test_nested_prefixes_resolve_most_specific(self):
        tree = _tree_from(["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"])
        packed = PackedLpm.from_radix(tree)
        cases = {
            "10.1.2.3": "10.1.2.0/24",
            "10.1.9.9": "10.1.0.0/16",
            "10.200.0.1": "10.0.0.0/8",
        }
        for address, expected in cases.items():
            prefix, value = packed.longest_match(Prefix.from_cidr(address + "/32").network)
            assert prefix.cidr == expected
        assert packed.longest_match(Prefix.from_cidr("11.0.0.0/32").network) is None

    def test_default_route_and_full_host_extremes(self):
        tree = _tree_from([
            "0.0.0.0/0", "0.0.0.0/32", "255.255.255.255/32", "128.0.0.0/1",
        ])
        packed = PackedLpm.from_radix(tree)
        for address in (0, 1, 2**31 - 1, 2**31, 2**32 - 2, 2**32 - 1):
            assert packed.longest_match(address) == tree.longest_match(address)

    def test_agrees_with_radix_on_random_tables(self):
        rng = spawn(2000, "packed-vs-radix")
        tree = RadixTree()
        for _ in range(1500):
            prefix = Prefix(rng.getrandbits(32), rng.randint(2, 32))
            tree.insert(prefix, prefix.cidr)
        packed = PackedLpm.from_radix(tree)
        assert len(packed) == len(tree)
        for _ in range(5000):
            address = rng.getrandbits(32)
            assert packed.longest_match(address) == tree.longest_match(address)

    def test_lookup_many_matches_scalar_lookups(self, merged_table, nagano_log):
        packed = PackedLpm.from_merged(merged_table)
        clients = nagano_log.log.clients()
        indices = packed.lookup_many(clients)
        for client, index in zip(clients, indices):
            scalar = packed.longest_match(client)
            if index < 0:
                assert scalar is None
            else:
                assert scalar == (packed.prefix(index), packed.value(index))
                assert packed.match_index(client) == index


class TestImmutableShipping:
    def test_pickle_roundtrip_preserves_lookups(self):
        rng = spawn(2000, "packed-pickle")
        items = [
            (Prefix(rng.getrandbits(32), rng.randint(8, 28)), i)
            for i in range(400)
        ]
        packed = PackedLpm.from_items(items)
        clone = pickle.loads(pickle.dumps(packed))
        assert len(clone) == len(packed)
        for _ in range(2000):
            address = rng.getrandbits(32)
            assert clone.longest_match(address) == packed.longest_match(address)

    def test_digest_tracks_prefix_set_not_values(self):
        a = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/8"), "x")])
        b = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/8"), "y")])
        c = PackedLpm.from_items([(Prefix.from_cidr("11.0.0.0/8"), "x")])
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
