"""The in-place patch API: patched table ≡ from-scratch rebuild.

The equivalence gate of the serve subsystem, pinned as a hypothesis
property: after *any* sequence of delta batches, every patchable table
kind (packed, stride, and both behind a memo front) must answer
lookups identically to a table rebuilt from scratch at the final
routing state — same indices, same digest, same internals
(:meth:`verify_patched`) — and identically to the independent
``sorted`` oracle from :mod:`repro.net.lpm`.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.fastpath import MemoizedLookup, StrideLpm
from repro.engine.packed import PackedLpm, merge_windows
from repro.net.lpm import build_engine
from repro.net.prefix import Prefix

#: Nested prefix pool inside 10/8 — long chains of covers so deltas
#: routinely change the longest match rather than just the match set.
POOL = sorted(
    {
        Prefix((10 << 24) | (((i * 0x9E3779B1) % (1 << (length - 8))) << (32 - length)), length)
        for length in (8, 10, 12, 14, 16, 18, 20, 24, 28, 32)
        for i in range(3)
    },
    key=Prefix.sort_key,
)

#: Probe set: every boundary of every pool prefix, plus neighbours.
PROBES = sorted(
    {
        address
        for prefix in POOL
        for address in (
            prefix.network,
            prefix.last_address,
            max(0, prefix.network - 1),
            min((1 << 32) - 1, prefix.last_address + 1),
        )
    }
)

PATCHABLE_KINDS = ("packed", "stride", "memo-packed", "memo-stride")


def _build(kind, items):
    if kind == "packed":
        return PackedLpm.from_items(items)
    if kind == "stride":
        return StrideLpm.from_items(items)
    inner_cls = PackedLpm if kind == "memo-packed" else StrideLpm
    return MemoizedLookup(inner_cls.from_items(items), maxsize=64)


def _sorted_items(model):
    return sorted(model.items(), key=lambda kv: kv[0].sort_key())


batches_strategy = st.lists(
    st.tuples(
        st.lists(st.sampled_from(POOL), max_size=6),   # announces
        st.lists(st.sampled_from(POOL), max_size=6),   # withdraws
    ),
    max_size=5,
)


@pytest.mark.parametrize("kind", PATCHABLE_KINDS)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    initial=st.lists(st.sampled_from(POOL), unique=True, max_size=len(POOL)),
    batches=batches_strategy,
)
def test_patched_equals_rebuilt(kind, initial, batches):
    model = {prefix: f"v{i}" for i, prefix in enumerate(initial)}
    table = _build(kind, _sorted_items(model))
    serial = itertools.count(1000)
    effective = 0
    for announce_prefixes, withdraw_prefixes in batches:
        announce = {p: f"n{next(serial)}" for p in announce_prefixes}
        withdraw = [p for p in withdraw_prefixes if p not in announce]
        # Effective = the table changed: an announce always carries a
        # fresh value; a withdraw only counts when the prefix is live.
        # No-op batches (empty, or all-noop withdrawals) keep the epoch.
        if announce or any(p in model for p in withdraw):
            effective += 1
        table.apply_delta(list(announce.items()), withdraw)
        # Exercise the memo between batches so stale entries would show.
        table.lookup_many(PROBES[::7])
        model.update(announce)
        for prefix in withdraw:
            model.pop(prefix, None)

    rebuilt = PackedLpm.from_items(_sorted_items(model))
    assert table.digest() == rebuilt.digest()
    assert table.lookup_many(PROBES) == rebuilt.lookup_many(PROBES)
    oracle = build_engine("sorted", _sorted_items(model))
    for address in PROBES:
        want = oracle.longest_match(address)
        got = table.longest_match(address)
        assert (got and got[0]) == (want and want[0])
    table.verify_patched()
    assert int(table.epoch) == effective


class TestPatchResultContracts:
    def test_value_only_update_has_no_windows(self):
        prefix = Prefix.from_cidr("10.0.0.0/8")
        table = PackedLpm.from_items([(prefix, "a")])
        result = table.apply_delta([(prefix, "b")], [])
        assert not result.structural
        assert result.remap is None
        assert result.windows == ()
        assert result.value_updates == 1
        assert table.lookup(10 << 24) == "b"

    def test_noop_withdrawal_is_counted_not_structural(self):
        table = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/8"), "a")])
        result = table.apply_delta([], [Prefix.from_cidr("11.0.0.0/8")])
        assert result.noop_withdrawals == 1
        assert not result.structural

    def test_conflicting_announce_withdraw_rejected(self):
        prefix = Prefix.from_cidr("10.0.0.0/8")
        table = PackedLpm.from_items([(prefix, "a")])
        with pytest.raises(ValueError):
            table.apply_delta([(prefix, "b")], [prefix])

    def test_windows_cover_structural_changes(self):
        table = PackedLpm.from_items(
            [(Prefix.from_cidr("10.0.0.0/8"), "a")]
        )
        inserted = Prefix.from_cidr("10.1.0.0/16")
        result = table.apply_delta([(inserted, "b")], [])
        assert result.structural
        low, high = result.windows[0]
        assert low <= inserted.network and high >= inserted.last_address

    def test_epoch_advances_per_batch(self):
        table = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/8"), "a")])
        assert table.epoch == 0
        table.apply_delta([(Prefix.from_cidr("11.0.0.0/8"), "b")], [])
        table.apply_delta([], [Prefix.from_cidr("11.0.0.0/8")])
        assert table.epoch == 2
        assert table.deltas_applied == 2

    def test_merge_windows_coalesces_adjacent(self):
        assert merge_windows([(10, 20), (21, 30), (40, 50), (0, 5)]) == (
            (0, 5),
            (10, 30),
            (40, 50),
        )


class TestMemoInvalidation:
    def test_epoch_mismatch_clears_memo(self):
        prefix = Prefix.from_cidr("10.0.0.0/8")
        inner = PackedLpm.from_items([(prefix, "a")])
        memo = MemoizedLookup(inner, maxsize=16)
        assert memo.lookup_many([10 << 24]) == [0]
        # Patch the inner table *directly*, bypassing the wrapper: the
        # epoch safety net must drop the stale memo entry.
        inner.apply_delta([], [prefix])
        assert memo.lookup_many([10 << 24]) == [-1]

    def test_patch_evicts_only_window_entries(self):
        outside = Prefix.from_cidr("12.0.0.0/8")
        inside = Prefix.from_cidr("10.0.0.0/8")
        memo = MemoizedLookup(
            PackedLpm.from_items(
                [(inside, "a"), (outside, "b")]
            ),
            maxsize=16,
        )
        covered = (10 << 24) | (1 << 16)  # 10.1.0.0 — inside the new /16
        memo.lookup_many([covered, 12 << 24])
        before = memo.evictions
        memo.apply_delta([(Prefix.from_cidr("10.1.0.0/16"), "c")], [])
        # Only the entry inside the patch window is dropped; 12/8's
        # entry survives (remapped) and now the covered address must
        # resolve through the freshly inserted /16.
        assert memo.evictions == before + 1
        assert memo.lookup(covered) == "c"
        assert memo.lookup(12 << 24) == "b"
