"""REPRO_SANITIZE=1: invariant checks, byte-identity, counter plumbing."""

import random

import pytest

from repro.analysis import sanitize
from repro.engine import EngineConfig, ShardedClusterEngine
from repro.engine.fastpath import PackedBatch, build_lpm_table
from repro.engine.state import ClusterStore
from repro.errors import SanitizeError
from repro.util.rng import make_rng


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes, c.source_kind, c.source_name)
        for c in cluster_set.clusters
    }


@pytest.fixture
def sanitized():
    """Arm the sanitizers for one test, starting from drained counters."""
    previous = sanitize.set_enabled(True)
    sanitize.take_stats()
    yield
    sanitize.set_enabled(previous)
    sanitize.take_stats()


@pytest.fixture
def desanitized():
    """Force the sanitizers off (the suite may run under REPRO_SANITIZE=1)."""
    previous = sanitize.set_enabled(False)
    yield
    sanitize.set_enabled(previous)
    sanitize.take_stats()


class TestEnabling:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("1", True), ("true", True), ("on", True), ("yes", True),
            ("TRUE", True),
            ("0", False), ("", False), ("false", False), ("off", False),
            ("no", False), ("  0  ", False),
        ],
    )
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(sanitize.ENV_VAR, value)
        assert sanitize._env_enabled() is expected

    def test_unset_env_means_disabled(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert sanitize._env_enabled() is False

    def test_set_enabled_returns_previous(self):
        previous = sanitize.set_enabled(True)
        try:
            assert sanitize.is_enabled()
            assert sanitize.set_enabled(previous) is True
        finally:
            sanitize.set_enabled(previous)
        assert sanitize.is_enabled() is previous


class TestGuardBatch:
    def test_consistent_batch_passes_and_counts(self, sanitized):
        batch = PackedBatch.from_triples(
            [(0x0A000001, "/a", 100), (0x0A000002, "/a", 200)]
        )
        sanitize.guard_batch(batch)
        checks, _, _, _ = sanitize.take_stats()
        assert checks == 1

    def test_parallel_array_drift_raises(self, sanitized):
        batch = PackedBatch.from_triples([(0x0A000001, "/a", 100)])
        batch.sizes.append(999)  # simulate a mutated-after-freeze batch
        with pytest.raises(SanitizeError, match="parallel arrays"):
            sanitize.guard_batch(batch)

    def test_url_id_out_of_range_raises(self, sanitized):
        batch = PackedBatch.from_triples([(0x0A000001, "/a", 100)])
        batch.urls.pop()
        with pytest.raises(SanitizeError, match="out of range"):
            sanitize.guard_batch(batch)

    def test_apply_packed_guards_when_armed(self, sanitized, merged_table):
        table = build_lpm_table("packed", merged_table)
        batch = PackedBatch.from_triples([(0x0A000001, "/a", 100)])
        batch.addresses.append(0x0A000002)  # arrays now disagree
        with pytest.raises(SanitizeError):
            ClusterStore().apply_packed(batch, table)

    def test_apply_packed_skips_guard_when_disarmed(self, desanitized,
                                                    merged_table):
        table = build_lpm_table("packed", merged_table)
        batch = PackedBatch.from_triples(
            [(0x0A000001, "/a", 100), (0x0A000002, "/b", 50)]
        )
        store = ClusterStore()
        store.apply_packed(batch, table)
        assert store.entries_applied == 2
        assert sanitize.take_stats() == (0, 0, 0, 0)


class TestLpmCrosscheck:
    def test_sampling_clock_fires_once_per_interval(self, sanitized):
        # The clock is monotonic for the life of the process (earlier
        # tests may have advanced it), so assert over a window: any
        # 2*INTERVAL consecutive calls contain exactly two sampled
        # ones, INTERVAL apart.
        due = [sanitize.crosscheck_due()
               for _ in range(2 * sanitize.CROSSCHECK_INTERVAL)]
        hits = [index for index, flag in enumerate(due) if flag]
        assert len(hits) == 2
        assert hits[1] - hits[0] == sanitize.CROSSCHECK_INTERVAL

    def test_lookup_many_identical_with_sanitize(self, merged_table):
        stride = build_lpm_table("stride", merged_table)
        rng = random.Random(7)
        addresses = [rng.getrandbits(32) for _ in range(500)]
        previous = sanitize.set_enabled(False)
        try:
            plain = stride.lookup_many(addresses)
            sanitize.set_enabled(True)
            sanitize.take_stats()
            sanitize._STATS.crosscheck_clock = 0  # make the next call sampled
            checked = stride.lookup_many(addresses)
            _, crosschecks, _, _ = sanitize.take_stats()
        finally:
            sanitize.set_enabled(previous)
        assert checked == plain
        assert crosschecks == 1

    def test_accepts_one_shot_iterator(self, sanitized, merged_table):
        stride = build_lpm_table("stride", merged_table)
        addresses = [0x0A000001, 0xC0A80101, 0x08080808]
        assert stride.lookup_many(iter(addresses)) == \
            stride.lookup_many(addresses)

    def test_tampered_stride_index_is_caught(self, sanitized, merged_table):
        stride = build_lpm_table("stride", merged_table)
        addresses = list(range(0, 2**32, 2**24))  # one per /8 block
        healthy = stride.lookup_many(addresses)
        # Corrupt every direct slot the probe addresses hit: point it at
        # a different (valid) entry index than the intervals say.
        wrong = (max(healthy) + 1) % max(len(list(stride.items())), 2)
        for address in addresses:
            slot = address >> 16
            if stride._slots[slot] >= -1:
                stride._slots[slot] = wrong
        with pytest.raises(SanitizeError, match="cross-check failed"):
            # The sampling clock fires at least once per INTERVAL calls.
            for _ in range(sanitize.CROSSCHECK_INTERVAL + 1):
                stride.lookup_many(addresses)


class TestCountingRng:
    def test_sequence_identical_to_plain_random(self, sanitized):
        counting = make_rng(123)
        plain = random.Random(123)
        drawn = [counting.random(), counting.randint(0, 10**9),
                 counting.gauss(0, 1), counting.getrandbits(64)]
        expected = [plain.random(), plain.randint(0, 10**9),
                    plain.gauss(0, 1), plain.getrandbits(64)]
        assert drawn == expected

    def test_draws_are_counted(self, sanitized):
        rng = make_rng(5)
        for _ in range(10):
            rng.random()
        rng.getrandbits(32)
        _, _, _, draws = sanitize.take_stats()
        assert draws == 11

    def test_disabled_returns_uninstrumented_rng(self, desanitized):
        rng = make_rng(5)
        assert type(rng) is random.Random
        rng.random()
        assert sanitize.take_stats() == (0, 0, 0, 0)


class TestEngineEndToEnd:
    """Acceptance: a sanitized run is byte-identical and visibly checked."""

    def _run(self, nagano_log, merged_table, use_processes=False):
        table = build_lpm_table("stride", merged_table)
        config = EngineConfig(num_shards=2, chunk_size=2048,
                              use_processes=use_processes,
                              name=nagano_log.log.name)
        with ShardedClusterEngine(table, config) as engine:
            engine.ingest(nagano_log.log.entries)
            return engine.snapshot(), engine.metrics.snapshot()

    def test_inline_run_identical_and_counted(self, nagano_log, merged_table):
        previous = sanitize.set_enabled(False)
        try:
            baseline, base_metrics = self._run(nagano_log, merged_table)
            sanitize.set_enabled(True)
            sanitize.take_stats()
            checked, metrics = self._run(nagano_log, merged_table)
        finally:
            sanitize.set_enabled(previous)
            sanitize.take_stats()
        assert _signature(checked) == _signature(baseline)
        assert sorted(checked.unclustered_clients) == sorted(
            baseline.unclustered_clients
        )
        # Inline dispatch applies tuple batches, so the PackedBatch
        # guard stays quiet here — the pooled test covers it.
        assert metrics["sanitize_lpm_crosschecks"] > 0
        assert base_metrics["sanitize_lpm_crosschecks"] == 0
        assert base_metrics["sanitize_batch_checks"] == 0

    def test_pooled_run_identical_and_counted(self, monkeypatch, nagano_log,
                                              merged_table):
        baseline, _ = self._run(nagano_log, merged_table)
        # Pooled workers read the env at import; forked ones inherit the
        # flipped module state too.  Set both so either start method works.
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        previous = sanitize.set_enabled(True)
        try:
            sanitize.take_stats()
            checked, metrics = self._run(nagano_log, merged_table,
                                         use_processes=True)
        finally:
            sanitize.set_enabled(previous)
            sanitize.take_stats()
        assert _signature(checked) == _signature(baseline)
        assert metrics["sanitize_batch_checks"] > 0

    def test_checkpoint_readback_counted(self, tmp_path, nagano_log,
                                         merged_table, sanitized):
        table = build_lpm_table("stride", merged_table)
        config = EngineConfig(num_shards=2, chunk_size=2048,
                              use_processes=False)
        with ShardedClusterEngine(table, config) as engine:
            engine.ingest(nagano_log.log.entries[:1000])
            engine.checkpoint(str(tmp_path / "run.ckpt"))
            snap = engine.metrics.snapshot()
        assert snap["sanitize_checkpoint_readbacks"] == 1
        assert snap["checkpoints_written"] == 1

    def test_sanitize_counters_render(self, sanitized):
        from repro.engine import EngineMetrics

        metrics = EngineMetrics(num_shards=1)
        metrics.record_sanitize(3, 2, 1, 40)
        rendered = metrics.render()
        assert "sanitize_batch_checks" in rendered
        assert "sanitize_lpm_crosschecks" in rendered
        assert "sanitize_checkpoint_readbacks" in rendered
        assert "sanitize_rng_draws" in rendered
