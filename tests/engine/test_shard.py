"""Sharded engine: partitioning, equivalence with cluster_log, hot-swap."""

import pytest

from repro.core.clustering import cluster_log, cluster_log_engine
from repro.engine import (
    EngineConfig,
    EngineMetrics,
    PackedLpm,
    ShardedClusterEngine,
    shard_of,
)
from repro.net.prefix import Prefix


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes, c.source_kind, c.source_name)
        for c in cluster_set.clusters
    }


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for address in (0, 1, 2**32 - 1, 0x0A010203, 0xC0A80101):
            for shards in (1, 2, 3, 8):
                shard = shard_of(address, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(address, shards)

    def test_spreads_sequential_same_subnet_addresses(self):
        base = Prefix.from_cidr("10.1.2.0/24").network
        shards = [shard_of(base + i, 4) for i in range(256)]
        counts = [shards.count(s) for s in range(4)]
        # A plain modulo would put everything in lockstep; the
        # multiplicative hash keeps every shard populated.
        assert min(counts) > 0
        assert max(counts) < 0.5 * len(shards)


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EngineConfig(num_shards=0)
        with pytest.raises(ValueError):
            EngineConfig(chunk_size=0)


class TestEquivalence:
    """Acceptance: engine output == cluster_log on the Nagano preset."""

    @pytest.fixture(scope="class")
    def baseline(self, nagano_log, merged_table):
        return cluster_log(nagano_log.log, merged_table)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_inline_matches_cluster_log(
        self, nagano_log, merged_table, baseline, shards
    ):
        result = cluster_log_engine(
            nagano_log.log, merged_table,
            num_shards=shards, chunk_size=4096, use_processes=False,
        )
        assert _signature(result) == _signature(baseline)
        assert sorted(result.unclustered_clients) == sorted(
            baseline.unclustered_clients
        )
        assert result.log_name == nagano_log.log.name

    def test_process_pool_matches_cluster_log(
        self, nagano_log, merged_table, baseline
    ):
        result = cluster_log_engine(
            nagano_log.log, merged_table,
            num_shards=2, chunk_size=8192, use_processes=True,
        )
        assert _signature(result) == _signature(baseline)

    def test_chunk_size_does_not_change_results(self, nagano_log, merged_table):
        small = cluster_log_engine(
            nagano_log.log, merged_table,
            num_shards=2, chunk_size=257, use_processes=False,
        )
        large = cluster_log_engine(
            nagano_log.log, merged_table,
            num_shards=2, chunk_size=50_000, use_processes=False,
        )
        assert _signature(small) == _signature(large)


class TestEngineBehaviour:
    def test_incremental_feeds_accumulate(self, nagano_log, merged_table):
        packed = PackedLpm.from_merged(merged_table)
        entries = nagano_log.log.entries
        config = EngineConfig(num_shards=2, chunk_size=1024,
                              use_processes=False)
        with ShardedClusterEngine(packed, config) as engine:
            engine.ingest(entries[: len(entries) // 2])
            partial = engine.snapshot()
            engine.ingest(entries[len(entries) // 2:])
            full = engine.snapshot()
        assert engine.entries_ingested == len(entries)
        assert partial.total_requests < full.total_requests
        baseline = cluster_log(nagano_log.log, merged_table)
        assert _signature(full) == _signature(baseline)

    def test_metrics_observe_ingestion(self, nagano_log, merged_table):
        packed = PackedLpm.from_merged(merged_table)
        metrics = EngineMetrics(2)
        config = EngineConfig(num_shards=2, chunk_size=1000,
                              use_processes=False)
        with ShardedClusterEngine(packed, config, metrics) as engine:
            engine.ingest(nagano_log.log.entries)
        assert metrics.entries == len(nagano_log.log.entries)
        assert metrics.lookups == metrics.entries
        assert metrics.batches == -(-metrics.entries // 1000)
        assert sum(metrics.shard_entries) == metrics.entries
        assert metrics.entries_per_second > 0

    def test_update_table_hot_swap(self):
        old = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/8"), None)])
        new = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/9"), None)])
        client = Prefix.from_cidr("10.1.1.1/32").network
        engine = ShardedClusterEngine(
            old, EngineConfig(num_shards=1, chunk_size=4)
        )
        engine.ingest_triples([(client, "/a", 1)])
        engine.update_table(new)
        engine.ingest_triples([(client, "/b", 1)])
        snap = engine.snapshot()
        # Old assignment persists; the new batch resolved under the new
        # table — realtime.update_table semantics.
        assert {c.identifier.cidr for c in snap.clusters} == {
            "10.0.0.0/8", "10.0.0.0/9",
        }
        assert engine.metrics.table_swaps == 1

    def test_resume_with_different_shard_count(self, tmp_path):
        table = PackedLpm.from_items([(Prefix.from_cidr("10.0.0.0/8"), None)])
        triples = [
            (Prefix.from_cidr(f"10.0.0.{i}/32").network, f"/u{i}", i)
            for i in range(40)
        ]
        config = EngineConfig(num_shards=4, chunk_size=8, use_processes=False)
        with ShardedClusterEngine(table, config) as engine:
            engine.ingest_triples(triples[:20])
            path = str(tmp_path / "resume.ckpt")
            engine.checkpoint(path)
        resumed = ShardedClusterEngine.resume(
            path, table,
            EngineConfig(num_shards=2, chunk_size=8, use_processes=False),
        )
        with resumed:
            resumed.ingest_triples(triples[20:])
            snap = resumed.snapshot()
        with ShardedClusterEngine(table, config) as uninterrupted:
            uninterrupted.ingest_triples(triples)
            expected = uninterrupted.snapshot()
        assert _signature(snap) == _signature(expected)
