"""The zero-copy shared-memory hot path.

Three contracts pinned here:

* **Bit-identity** — a worker's ``memoryview``-backed table attached
  from shared segments answers every lookup exactly as the private
  array-backed table it was published from, across random tables,
  delta patches, and republications (hypothesis property), and the
  shm-transport engine emits output identical to single-pass
  ``cluster_log``.
* **Lifecycle** — every shutdown path (graceful close, terminate,
  quarantine, injected worker crash) unlinks every segment; leaked
  segments from a dead run are reclaimed at publish time and counted
  in ``shm_unlink_failures``.
* **mmap checkpoints** — a v4 checkpoint's table section reads back as
  a zero-copy view with the same digest and lookups, refuses in-place
  patching, and fails loudly when the raw section is damaged.
"""

from __future__ import annotations

import glob
import itertools
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_log, cluster_log_engine
from repro.engine import (
    EngineConfig,
    EngineMetrics,
    MemoizedLookup,
    PackedLpm,
    ShardedClusterEngine,
    SharedLpm,
    SupervisedEngine,
    SupervisorConfig,
    read_checkpoint,
    read_checkpoint_table,
    write_checkpoint,
)
from repro.engine import shm
from repro.engine.fastpath import StrideLpm
from repro.engine.state import CheckpointCorruptError, ClusterStore
from repro.errors import WorkerCrashError
from repro.faults import (
    SITE_SHM_WORKER_CRASH,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.net.prefix import Prefix

SEED = 1998
CHUNK = 4096


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes, c.source_kind, c.source_name)
        for c in cluster_set.clusters
    }


def _own_segments():
    """Names of this process's live repro segments in /dev/shm."""
    return sorted(glob.glob(f"/dev/shm/repro-{os.getpid()}-*"))


#: Nested prefix pool inside 10/8 (same shape as test_patch.py): long
#: cover chains so deltas change the *longest* match, not just the set.
POOL = sorted(
    {
        Prefix(
            (10 << 24)
            | (((i * 0x9E3779B1) % (1 << (length - 8))) << (32 - length)),
            length,
        )
        for length in (8, 10, 12, 16, 20, 24, 28, 32)
        for i in range(3)
    },
    key=Prefix.sort_key,
)

#: Probe set: every boundary of every pool prefix, plus neighbours.
PROBES = sorted(
    {
        address
        for prefix in POOL
        for address in (
            prefix.network,
            prefix.last_address,
            max(0, prefix.network - 1),
            min((1 << 32) - 1, prefix.last_address + 1),
        )
    }
)


def _build(kind, items):
    cls = StrideLpm if kind == "stride" else PackedLpm
    return cls.from_items(items)


def _sorted_items(model):
    return sorted(model.items(), key=lambda kv: kv[0].sort_key())


def _attach_and_compare(table):
    """Publish ``table``, attach a shared view, compare every probe."""
    published = SharedLpm(table, generation=next(shm._GENERATION_COUNTER))
    attached = None
    try:
        attached = shm.attach_shared_table(published.handle)
        assert attached.base.digest() == table.digest()
        assert attached.base.lookup_many(PROBES) == table.lookup_many(PROBES)
        assert type(attached.base) is type(table)
    finally:
        if attached is not None:
            attached.close()
        assert published.close(unlink=True) == 0


class TestSharedViewProperty:
    """Satellite (c): shared lookups ≡ private lookups, under patches."""

    @pytest.mark.parametrize("kind", ["packed", "stride"])
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        initial=st.lists(
            st.sampled_from(POOL), unique=True, min_size=1, max_size=12
        ),
        batches=st.lists(
            st.tuples(
                st.lists(st.sampled_from(POOL), max_size=4),  # announces
                st.lists(st.sampled_from(POOL), max_size=4),  # withdraws
            ),
            max_size=3,
        ),
    )
    def test_shared_view_matches_private_across_patches(
        self, kind, initial, batches
    ):
        model = {prefix: f"v{i}" for i, prefix in enumerate(initial)}
        table = _build(kind, _sorted_items(model))
        _attach_and_compare(table)
        serial = itertools.count(1000)
        for announce_prefixes, withdraw_prefixes in batches:
            announce = {p: f"n{next(serial)}" for p in announce_prefixes}
            withdraw = [p for p in withdraw_prefixes if p not in announce]
            table.apply_delta(list(announce.items()), withdraw)
            # Epoch moved: the old publication is superseded; a fresh
            # publication of the patched table must again be identical.
            _attach_and_compare(table)

    def test_memo_front_is_rebuilt_in_the_worker(self):
        table = PackedLpm.from_items(
            _sorted_items({p: str(p) for p in POOL[:6]})
        )
        memoized = MemoizedLookup(table, maxsize=32)
        published = SharedLpm(
            memoized, generation=next(shm._GENERATION_COUNTER)
        )
        attached = None
        try:
            assert published.handle.memo_size == 32
            attached = shm.attach_shared_table(published.handle)
            assert isinstance(attached.table, MemoizedLookup)
            assert attached.table.lookup_many(PROBES) == memoized.lookup_many(
                PROBES
            )
        finally:
            if attached is not None:
                attached.close()
            published.close(unlink=True)

    def test_attached_view_refuses_in_place_patching(self):
        table = PackedLpm.from_items(
            _sorted_items({p: str(p) for p in POOL[:4]})
        )
        published = SharedLpm(table, generation=next(shm._GENERATION_COUNTER))
        attached = None
        try:
            attached = shm.attach_shared_table(published.handle)
            assert attached.base.is_view
            with pytest.raises(TypeError, match="buffer-backed"):
                attached.base.apply_delta([(POOL[0], "new")], [])
        finally:
            if attached is not None:
                attached.close()
            published.close(unlink=True)


class TestEngineEquivalence:
    """The byte-identity gate: shm transport == cluster_log."""

    @pytest.fixture(scope="class")
    def baseline(self, nagano_log, merged_table):
        return _signature(cluster_log(nagano_log.log, merged_table))

    def test_shm_engine_matches_cluster_log(
        self, nagano_log, merged_table, baseline
    ):
        result = cluster_log_engine(
            nagano_log.log, merged_table,
            num_shards=2, chunk_size=CHUNK, use_processes=True,
        )
        assert _signature(result) == baseline

    def test_shm_and_pickle_pool_agree(self, nagano_log, merged_table):
        packed = PackedLpm.from_merged(merged_table)
        results = {}
        for use_shm in (True, False):
            config = EngineConfig(
                num_shards=2, chunk_size=CHUNK, use_shm=use_shm
            )
            with ShardedClusterEngine(packed, config) as engine:
                engine.ingest(nagano_log.log.entries)
                results[use_shm] = _signature(engine.snapshot())
        assert results[True] == results[False]

    def test_counters_flow_back_through_the_accumulator(
        self, nagano_log, merged_table
    ):
        packed = PackedLpm.from_merged(merged_table)
        metrics = EngineMetrics(2)
        config = EngineConfig(num_shards=2, chunk_size=1000)
        entries = nagano_log.log.entries
        with ShardedClusterEngine(packed, config, metrics) as engine:
            engine.ingest(entries)
        assert metrics.entries == len(entries)
        assert metrics.batches == -(-len(entries) // 1000)
        assert sum(metrics.shard_entries) == metrics.entries

    def test_republish_on_epoch_bump(self, nagano_log, merged_table):
        """A mid-run apply_delta patch forces a new table generation."""
        packed = PackedLpm.from_merged(merged_table)
        entries = nagano_log.log.entries
        half = len(entries) // 2
        # The patch announces a fresh value for an existing prefix, so
        # both transports must re-resolve the second half against it.
        victim = next(iter(packed.items()))[0]
        signatures = {}
        generations = {}
        for use_shm in (True, False):
            table = PackedLpm.from_merged(merged_table)
            config = EngineConfig(
                num_shards=2, chunk_size=CHUNK, use_shm=use_shm
            )
            with ShardedClusterEngine(table, config) as engine:
                engine.ingest(entries[:half])
                if use_shm:
                    generations["before"] = engine._shm_group.generation
                table.apply_delta([(victim, "patched-source")], [])
                engine.ingest(entries[half:])
                if use_shm:
                    generations["after"] = engine._shm_group.generation
                signatures[use_shm] = _signature(engine.snapshot())
        assert signatures[True] == signatures[False]
        assert generations["after"] > generations["before"]

    def test_is_stale_tracks_the_live_table(self, merged_table):
        packed = PackedLpm.from_merged(merged_table)
        group = shm.ShmWorkerGroup(packed, num_shards=2)
        try:
            assert not group.is_stale(packed)
            victim = next(iter(packed.items()))[0]
            packed.apply_delta([(victim, "moved")], [])
            assert group.is_stale(packed)
        finally:
            group.shutdown()


class TestShmChaos:
    """Satellite (c): a worker hard-killed mid-batch changes nothing."""

    @pytest.fixture(scope="class")
    def baseline(self, nagano_log, merged_table):
        return _signature(cluster_log(nagano_log.log, merged_table))

    def test_worker_crash_mid_batch_recovers_identically(
        self, nagano_log, merged_table, baseline
    ):
        packed = PackedLpm.from_merged(merged_table)
        digest_before = packed.digest()
        plan = FaultPlan.build(
            FaultSpec(site=SITE_SHM_WORKER_CRASH, at=1, count=1), seed=SEED
        )
        config = EngineConfig(num_shards=2, chunk_size=CHUNK)
        engine = ShardedClusterEngine(
            packed, config, injector=FaultInjector(plan)
        )
        supervised = SupervisedEngine(
            engine, SupervisorConfig(max_retries=3, backoff_base=0)
        )
        with supervised:
            supervised.ingest(nagano_log.log.entries)
            result = supervised.snapshot(nagano_log.log.name)
            snap = supervised.metrics.snapshot()
        # The crash really happened (post-apply, pre-ack: the strictest
        # exactly-once case), the retry replayed it, nothing doubled.
        assert engine.injector.fired[SITE_SHM_WORKER_CRASH] == 1
        assert snap["chunk_retries"] >= 1
        assert snap["worker_restarts"] >= 1
        assert snap["chunks_quarantined"] == 0
        assert _signature(result) == baseline
        # The shared table itself was never touched by the dying worker.
        assert packed.digest() == digest_before
        assert _own_segments() == []

    def test_raw_dispatch_failure_surfaces_as_worker_crash(
        self, merged_table
    ):
        packed = PackedLpm.from_merged(merged_table)
        group = shm.ShmWorkerGroup(packed, num_shards=1)
        try:
            batch = shm.PackedBatch.from_triples([(1, "u", 1)])
            directive = (0, SITE_SHM_WORKER_CRASH, 0.0)
            with pytest.raises(WorkerCrashError, match="died mid-batch"):
                group.dispatch([batch], directive)
        finally:
            group.shutdown(kill=True)
        assert _own_segments() == []


class TestSegmentLifecycle:
    """Satellite (a): no path leaks a segment; leaks are reclaimed."""

    def test_graceful_close_unlinks_everything(
        self, nagano_log, merged_table
    ):
        packed = PackedLpm.from_merged(merged_table)
        config = EngineConfig(num_shards=2, chunk_size=CHUNK)
        with ShardedClusterEngine(packed, config) as engine:
            engine.ingest(nagano_log.log.entries[:5000])
            assert _own_segments() != []
        assert _own_segments() == []

    def test_terminate_on_failure_unlinks_everything(
        self, nagano_log, merged_table
    ):
        packed = PackedLpm.from_merged(merged_table)
        config = EngineConfig(num_shards=2, chunk_size=CHUNK)
        engine = ShardedClusterEngine(packed, config)
        engine.ingest(nagano_log.log.entries[:5000])
        assert _own_segments() != []
        engine.close(terminate=True)
        assert _own_segments() == []

    def test_quarantine_path_releases_the_group(
        self, nagano_log, merged_table, tmp_path
    ):
        packed = PackedLpm.from_merged(merged_table)
        plan = FaultPlan.build(
            FaultSpec(site=SITE_SHM_WORKER_CRASH, at=0, count=-1), seed=SEED
        )
        config = EngineConfig(num_shards=2, chunk_size=CHUNK)
        engine = ShardedClusterEngine(
            packed, config, injector=FaultInjector(plan)
        )
        supervised = SupervisedEngine(
            engine,
            SupervisorConfig(
                max_retries=1,
                backoff_base=0,
                allow_degraded=False,
                quarantine_path=str(tmp_path / "dead.jsonl"),
            ),
        )
        with supervised:
            supervised.ingest(nagano_log.log.entries[:CHUNK])
            assert supervised.metrics.snapshot()["chunks_quarantined"] == 1
            # The quarantine path tore the suspect group down in full.
            assert engine._shm_group is None
            assert _own_segments() == []

    def test_stale_segment_is_reclaimed_and_counted(self, monkeypatch):
        pid = os.getpid()
        seq = 990_001
        from multiprocessing.shared_memory import SharedMemory

        stale = SharedMemory(name=f"repro-{pid}-{seq}t", create=True, size=8)
        try:
            monkeypatch.setattr(shm, "_SEGMENT_COUNTER", itertools.count(seq))
            segment, leaked = shm._create_segment("t", 16)
            assert leaked == 1
            assert segment.size >= 16
            assert shm._release_segment(segment, unlink=True) == 0
        finally:
            try:
                stale.close()
            except (OSError, BufferError):
                pass

    def test_leak_detection_feeds_the_metric(
        self, merged_table, monkeypatch
    ):
        pid = os.getpid()
        seq = 991_001
        from multiprocessing.shared_memory import SharedMemory

        stale = SharedMemory(name=f"repro-{pid}-{seq}a", create=True, size=8)
        try:
            monkeypatch.setattr(shm, "_SEGMENT_COUNTER", itertools.count(seq))
            packed = PackedLpm.from_merged(merged_table)
            metrics = EngineMetrics(1)
            group = shm.ShmWorkerGroup(packed, num_shards=1, metrics=metrics)
            group.shutdown()
            assert metrics.snapshot()["shm_unlink_failures"] >= 1
        finally:
            try:
                stale.close()
            except (OSError, BufferError):
                pass
        assert _own_segments() == []

    def test_atexit_guard_reclaims_registered_segments(self):
        segment, _ = shm._create_segment("t", 32)
        name = segment.name
        shm._cleanup_leaked_segments()
        from multiprocessing.shared_memory import SharedMemory

        with pytest.raises(FileNotFoundError):
            SharedMemory(name=name)


class TestInitFailureCleanup:
    """Regressions: constructors that fail after acquiring segments
    must release them — the caller never gets an object to close."""

    def test_publish_failure_after_segments_releases_both(self, monkeypatch):
        table = _build("packed", [(p, str(p)) for p in POOL[:6]])

        class Boom(RuntimeError):
            pass

        def exploding_handle(**kwargs):
            raise Boom("handle construction failed")

        monkeypatch.setattr(shm, "SharedLpmHandle", exploding_handle)
        before = _own_segments()
        with pytest.raises(Boom):
            SharedLpm(table, generation=next(shm._GENERATION_COUNTER))
        assert _own_segments() == before

    def test_raising_metrics_sink_still_tears_the_group_down(
        self, monkeypatch
    ):
        pid = os.getpid()
        seq = 992_001
        from multiprocessing.shared_memory import SharedMemory

        # A stale accumulator name forces leaked > 0, so the group's
        # constructor reports to the metrics sink after a clean body.
        stale = SharedMemory(name=f"repro-{pid}-{seq}a", create=True, size=8)
        try:
            monkeypatch.setattr(
                shm, "_SEGMENT_COUNTER", itertools.count(seq)
            )
            packed = _build("packed", [(p, str(p)) for p in POOL[:6]])

            class AngrySink:
                def record_shm_unlink_failures(self, count):
                    raise RuntimeError("metrics backend down")

            with pytest.raises(RuntimeError, match="metrics backend down"):
                shm.ShmWorkerGroup(packed, num_shards=1, metrics=AngrySink())
        finally:
            try:
                stale.close()
            except (OSError, BufferError):
                pass
        assert _own_segments() == []


class TestMmapCheckpoints:
    """The v4 envelope: raw table section, zero-copy read-back."""

    @pytest.fixture()
    def stores(self):
        store = ClusterStore()
        batch = shm.PackedBatch.from_triples(
            [(POOL[0].network + i, f"/u{i % 3}", 100 + i) for i in range(50)]
        )
        table = PackedLpm.from_items(
            _sorted_items({p: str(p) for p in POOL[:8]})
        )
        store.apply_packed(batch, table)
        return [store], table

    @pytest.mark.parametrize("kind", ["packed", "stride"])
    def test_table_section_round_trips_as_a_view(
        self, tmp_path, stores, kind
    ):
        shard_stores, _ = stores
        table = _build(kind, _sorted_items({p: str(p) for p in POOL}))
        path = str(tmp_path / "v4.ckpt")
        write_checkpoint(
            path, shard_stores, table_digest=table.digest(), table=table
        )
        read_stores, _ = read_checkpoint(path, table_digest=table.digest())
        assert len(read_stores) == 1
        view = read_checkpoint_table(path)
        assert view is not None
        assert type(view) is type(table)
        assert view.is_view
        assert view.digest() == table.digest()
        assert view.lookup_many(PROBES) == table.lookup_many(PROBES)
        with pytest.raises(TypeError, match="buffer-backed"):
            view.apply_delta([(POOL[0], "nope")], [])

    def test_tableless_checkpoint_reads_none(self, tmp_path, stores):
        shard_stores, table = stores
        path = str(tmp_path / "plain.ckpt")
        write_checkpoint(path, shard_stores, table_digest=table.digest())
        read_checkpoint(path, table_digest=table.digest())
        assert read_checkpoint_table(path) is None

    def test_damaged_table_section_fails_loudly(self, tmp_path, stores):
        shard_stores, table = stores
        path = str(tmp_path / "bad.ckpt")
        write_checkpoint(
            path, shard_stores, table_digest=table.digest(), table=table
        )
        raw = bytearray(open(path, "rb").read())
        raw[-3] ^= 0xFF  # inside the trailing raw table section
        open(path, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="table section"):
            read_checkpoint(path, table_digest=table.digest())
