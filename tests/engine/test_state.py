"""ClusterStore: accumulation, merging, checkpoint format guards."""

import pickle

import pytest

from repro.engine.packed import PackedLpm
from repro.engine.state import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    ClusterStore,
    read_checkpoint,
    write_checkpoint,
)
from repro.net.prefix import Prefix

TABLE = PackedLpm.from_items([
    (Prefix.from_cidr("10.0.0.0/8"), None),
    (Prefix.from_cidr("10.1.0.0/16"), None),
    (Prefix.from_cidr("192.168.0.0/16"), None),
])

A_10 = Prefix.from_cidr("10.9.0.1/32").network          # -> 10.0.0.0/8
A_10_1 = Prefix.from_cidr("10.1.2.3/32").network        # -> 10.1.0.0/16
A_192 = Prefix.from_cidr("192.168.5.5/32").network      # -> 192.168.0.0/16
A_MISS = Prefix.from_cidr("172.16.0.1/32").network      # unclustered


def _store(triples):
    store = ClusterStore()
    store.apply_batch(triples, TABLE)
    return store


class TestAccumulation:
    def test_apply_batch_groups_by_matched_prefix(self):
        store = _store([
            (A_10, "/a", 100),
            (A_10, "/b", 50),
            (A_10_1, "/a", 10),
            (A_MISS, "/x", 1),
        ])
        snap = store.snapshot()
        assert [c.identifier.cidr for c in snap.clusters] == [
            "10.0.0.0/8", "10.1.0.0/16",
        ]
        top = snap.clusters[0]
        assert top.requests == 2
        assert top.total_bytes == 150
        assert top.unique_urls == 2
        assert snap.unclustered_clients == [A_MISS]
        assert store.entries_applied == 4
        assert store.lookups_performed == 4

    def test_merge_equals_single_pass(self):
        triples = [
            (A_10, "/a", 5), (A_10_1, "/b", 7), (A_192, "/c", 9),
            (A_10, "/a", 5), (A_MISS, "/d", 1), (A_10_1, "/a", 2),
        ]
        single = _store(triples)
        left = _store(triples[:3])
        right = _store(triples[3:])
        merged = ClusterStore().merge(left).merge(right)
        assert _rendered(merged) == _rendered(single)
        assert merged.entries_applied == single.entries_applied

    def test_copy_isolates_accumulators(self):
        store = _store([(A_10, "/a", 1)])
        clone = store.copy()
        store.apply_batch([(A_10, "/z", 9)], TABLE)
        assert clone.snapshot().clusters[0].requests == 1
        assert store.snapshot().clusters[0].requests == 2


class TestCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        stores = [_store([(A_10, "/a", 1)]), _store([(A_192, "/b", 2)])]
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, stores, table_digest=TABLE.digest(),
                         meta={"num_shards": 2})
        loaded, meta = read_checkpoint(path, table_digest=TABLE.digest())
        assert meta["num_shards"] == 2
        assert len(loaded) == 2
        combined = ClusterStore().merge(loaded[0]).merge(loaded[1])
        expected = ClusterStore().merge(stores[0].copy()).merge(stores[1].copy())
        assert _rendered(combined) == _rendered(expected)

    def test_single_store_convenience(self, tmp_path):
        store = _store([(A_10, "/a", 1), (A_10, "/b", 2)])
        path = str(tmp_path / "one.ckpt")
        store.checkpoint(path)
        restored = ClusterStore.restore(path)
        assert _rendered(restored) == _rendered(store)

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(CheckpointError, match="not a repro.engine"):
            read_checkpoint(str(path))

    def test_rejects_unreadable_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(str(tmp_path / "missing.ckpt"))

    def test_rejects_version_skew(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_bytes(pickle.dumps({
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION + 1,
            "shards": [],
        }))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(str(path))

    def test_rejects_table_mismatch(self, tmp_path):
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, [_store([])], table_digest=TABLE.digest())
        other = PackedLpm.from_items([(Prefix.from_cidr("1.0.0.0/8"), None)])
        with pytest.raises(CheckpointError, match="different routing table"):
            read_checkpoint(path, table_digest=other.digest())
        # No digest supplied -> the check is waived.
        stores, _ = read_checkpoint(path)
        assert len(stores) == 1


def _rendered(store):
    snap = store.snapshot()
    return [
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in snap.clusters
    ] + [tuple(snap.unclustered_clients)]
