"""Atomic, checksummed checkpoints under deliberate damage.

The acceptance bar: a kill-9-style interruption at *any* point of a
checkpoint write never leaves a file ``read_checkpoint`` accepts — the
reader sees the previous checkpoint or the new one, nothing in between
— and every flavour of on-disk damage maps to a specific error class.
"""

import os
import pickle

import pytest

from repro.engine.state import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointTableMismatchError,
    CheckpointVersionError,
    ClusterStore,
    read_checkpoint,
    serialize_checkpoint,
    write_checkpoint,
)
from repro.engine.packed import PackedLpm
from repro.net.prefix import Prefix


@pytest.fixture()
def store():
    table = PackedLpm.from_items(
        [(Prefix.from_cidr("10.0.0.0/8"), None)]
    )
    built = ClusterStore()
    built.apply_batch(
        [(0x0A000001, "/a", 100), (0x0A000002, "/b", 200)], table
    )
    return built


@pytest.fixture()
def ckpt(tmp_path, store):
    path = str(tmp_path / "state.ckpt")
    write_checkpoint(path, [store], table_digest="digest-a")
    return path


class TestDamageTaxonomy:
    def test_intact_file_round_trips(self, ckpt, store):
        stores, _ = read_checkpoint(ckpt, table_digest="digest-a")
        assert len(stores) == 1
        assert stores[0].entries_applied == store.entries_applied

    def test_truncated_file_is_corrupt(self, ckpt):
        blob = open(ckpt, "rb").read()
        with open(ckpt, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(ckpt)

    def test_bit_flip_in_payload_is_corrupt(self, ckpt):
        blob = bytearray(open(ckpt, "rb").read())
        blob[-10] ^= 0xFF
        with open(ckpt, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="CRC32|corrupt"):
            read_checkpoint(ckpt)

    def test_corrupt_message_is_actionable(self, ckpt, store):
        payload = serialize_checkpoint([store])
        envelope = pickle.loads(payload)
        envelope["crc32"] ^= 1
        with open(ckpt, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(
            CheckpointCorruptError, match="restore from an older checkpoint"
        ):
            read_checkpoint(ckpt)

    def test_foreign_pickle_is_not_a_checkpoint(self, ckpt):
        with open(ckpt, "wb") as handle:
            pickle.dump({"magic": "some.other.format"}, handle)
        with pytest.raises(
            CheckpointCorruptError, match="not a repro.engine checkpoint"
        ):
            read_checkpoint(ckpt)

    def test_non_pickle_bytes_are_corrupt(self, ckpt):
        with open(ckpt, "wb") as handle:
            handle.write(b"\x00garbage that is not a pickle at all")
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(ckpt)

    def test_future_version_is_version_error_not_corrupt(self, ckpt, store):
        envelope = pickle.loads(serialize_checkpoint([store]))
        envelope["version"] = CHECKPOINT_VERSION + 7
        with open(ckpt, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(CheckpointVersionError, match="version"):
            read_checkpoint(ckpt)

    def test_missing_payload_is_corrupt(self, ckpt):
        with open(ckpt, "wb") as handle:
            pickle.dump(
                {"magic": CHECKPOINT_MAGIC, "version": CHECKPOINT_VERSION},
                handle,
            )
        with pytest.raises(CheckpointCorruptError, match="no payload"):
            read_checkpoint(ckpt)

    def test_table_mismatch_is_distinct(self, ckpt):
        with pytest.raises(
            CheckpointTableMismatchError, match="different routing table"
        ):
            read_checkpoint(ckpt, table_digest="digest-b")

    def test_missing_file_is_base_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_taxonomy_is_a_hierarchy(self):
        # Callers catching the base class see every flavour.
        for cls in (
            CheckpointCorruptError,
            CheckpointVersionError,
            CheckpointTableMismatchError,
        ):
            assert issubclass(cls, CheckpointError)


class TestInterruptedWrite:
    """Simulated kill-9 at every stage of the write path."""

    def test_crash_before_replace_leaves_previous_checkpoint(
        self, ckpt, store, monkeypatch
    ):
        before = open(ckpt, "rb").read()

        def exploding_replace(src, dst):
            raise OSError("simulated power loss before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="power loss"):
            write_checkpoint(ckpt, [store], table_digest="digest-a")
        monkeypatch.undo()
        # The destination still holds the previous, fully-valid bytes.
        assert open(ckpt, "rb").read() == before
        read_checkpoint(ckpt, table_digest="digest-a")

    def test_failed_write_cleans_its_temp_file(self, tmp_path, store,
                                               monkeypatch):
        target = tmp_path / "state.ckpt"

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            write_checkpoint(str(target), [store])
        monkeypatch.undo()
        leftovers = list(tmp_path.iterdir())
        assert leftovers == []  # no orphaned .tmp, no torn target

    def test_no_partial_file_is_ever_acceptable(self, tmp_path, store):
        """Every strict prefix of the on-disk bytes must be rejected.

        This is the strong form of the atomicity claim: even if the
        filesystem exposed a half-written temp file, no truncation
        point yields something ``read_checkpoint`` accepts.
        """
        path = str(tmp_path / "state.ckpt")
        write_checkpoint(path, [store], table_digest="digest-a")
        blob = open(path, "rb").read()
        partial = str(tmp_path / "partial.ckpt")
        # Sample prefixes densely at the tail (where the CRC field and
        # payload live) and sparsely elsewhere to keep the test quick.
        cuts = set(range(0, len(blob), max(1, len(blob) // 64)))
        cuts.update(range(max(0, len(blob) - 32), len(blob)))
        for cut in sorted(cuts):
            with open(partial, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(CheckpointError):
                read_checkpoint(partial)

    def test_write_is_write_then_rename(self, tmp_path, store, monkeypatch):
        """The destination is only ever touched by os.replace."""
        target = tmp_path / "state.ckpt"
        replaced = []
        real_replace = os.replace

        def spying_replace(src, dst):
            # At replace time the temp file is complete and valid.
            assert os.path.getsize(src) > 0
            read_checkpoint(src)
            replaced.append((src, dst))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        write_checkpoint(str(target), [store])
        assert len(replaced) == 1
        assert replaced[0][1] == str(target)
        assert os.path.dirname(replaced[0][0]) == str(tmp_path)
