"""Chaos acceptance: disturbed runs produce undisturbed output.

The bar from the issue: a supervised run over the Nagano preset with a
real process pool, at least two injected worker crashes, and one
corrupted checkpoint must finish with output identical to single-pass
``cluster_log`` — and the disturbance must be visible in the metrics,
not silently absorbed.

Every plan here is seeded and deterministic: a failing run replays
exactly by re-running the test.
"""

import multiprocessing

import pytest

from repro.core.clustering import cluster_log
from repro.engine import (
    EngineConfig,
    PackedLpm,
    ShardedClusterEngine,
    SupervisedEngine,
    SupervisorConfig,
)
from repro.engine.state import read_checkpoint
from repro.errors import DegradedModeWarning
from repro.faults import (
    SITE_CHECKPOINT_CORRUPT,
    SITE_WORKER_CRASH,
    SITE_WORKER_DIE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)

CHUNK = 4096
SEED = 1998  # Nagano, naturally


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes, c.source_kind, c.source_name)
        for c in cluster_set.clusters
    }


@pytest.fixture(scope="module")
def packed(merged_table):
    return PackedLpm.from_merged(merged_table)


@pytest.fixture(scope="module")
def baseline(nagano_log, merged_table):
    return _signature(cluster_log(nagano_log.log, merged_table))


def _supervised(packed, plan, shards=2, timeout=None, **policy):
    config = EngineConfig(
        num_shards=shards, chunk_size=CHUNK, dispatch_timeout=timeout
    )
    engine = ShardedClusterEngine(packed, config, injector=FaultInjector(plan))
    options = dict(max_retries=3, backoff_base=0)
    options.update(policy)
    return SupervisedEngine(engine, SupervisorConfig(**options))


class TestDisturbedEquivalence:
    def test_crashes_and_corrupt_checkpoint_do_not_change_output(
        self, nagano_log, packed, baseline, tmp_path
    ):
        """The acceptance run: 2 worker crashes + 1 corrupted checkpoint."""
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=1),
            FaultSpec(site=SITE_WORKER_CRASH, at=2, count=1),
            FaultSpec(site=SITE_CHECKPOINT_CORRUPT, at=0, count=1),
            seed=SEED,
        )
        entries = nagano_log.log.entries
        half = len(entries) // 2
        ckpt = str(tmp_path / "mid.ckpt")
        with _supervised(packed, plan) as supervised:
            supervised.ingest(entries[:half])
            supervised.checkpoint(ckpt)  # damaged once, rewritten, verified
            supervised.ingest(entries[half:])
            result = supervised.snapshot(nagano_log.log.name)
            snap = supervised.metrics.snapshot()

        assert _signature(result) == baseline
        # The disturbance really happened and was really recovered:
        assert supervised.engine.injector.fired[SITE_WORKER_CRASH] == 2
        assert supervised.engine.injector.fired[SITE_CHECKPOINT_CORRUPT] == 1
        assert snap["chunk_retries"] == 2
        assert snap["worker_restarts"] >= 2
        assert snap["checkpoint_rewrites"] == 1
        assert snap["chunks_quarantined"] == 0
        assert snap["degraded"] == 0
        # The mid-run checkpoint on disk is the verified rewrite.
        stores, _ = read_checkpoint(ckpt, table_digest=packed.digest())
        assert sum(s.entries_applied for s in stores) == half

    def test_degraded_run_matches_baseline(
        self, nagano_log, packed, baseline
    ):
        """Pool dies on every dispatch → inline fallback, same clusters."""
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=-1), seed=SEED
        )
        with _supervised(
            packed, plan, max_retries=5, degrade_after=2
        ) as supervised:
            with pytest.warns(DegradedModeWarning):
                supervised.ingest(nagano_log.log.entries)
            result = supervised.snapshot(nagano_log.log.name)
        assert supervised.degraded
        assert _signature(result) == baseline

    def test_hard_killed_worker_recovers_via_dispatch_timeout(
        self, nagano_log, packed, baseline
    ):
        """worker.die is kill -9: only the timeout can detect it."""
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_DIE, at=0, count=1), seed=SEED
        )
        with _supervised(packed, plan, timeout=15.0) as supervised:
            supervised.ingest(nagano_log.log.entries)
            result = supervised.snapshot(nagano_log.log.name)
            snap = supervised.metrics.snapshot()
        assert _signature(result) == baseline
        assert snap["worker_restarts"] >= 1
        assert snap["chunk_retries"] >= 1


class TestChaosDeterminism:
    def test_same_plan_same_fault_sequence(self, nagano_log, packed):
        """Two runs of one plan disturb the same dispatches."""
        def run():
            plan = FaultPlan.build(
                FaultSpec(site=SITE_WORKER_CRASH, at=1, count=2), seed=SEED
            )
            supervised = _supervised(packed, plan)
            with supervised:
                supervised.ingest(nagano_log.log.entries[:CHUNK * 4])
            return (
                dict(supervised.engine.injector.fired),
                supervised.metrics.snapshot()["chunk_retries"],
            )

        assert run() == run()


def test_pool_is_not_leaked_on_failure(packed, nagano_log):
    """Satellite regression: a chunk failure terminates the pool.

    Before the supervisor existed, an exception raised out of a
    dispatch left the worker pool alive behind a dead engine.  Count
    live children before and after a crashing, unretried ingest.
    """
    plan = FaultPlan.build(
        FaultSpec(site=SITE_WORKER_CRASH, at=0, count=-1), seed=SEED
    )
    engine = ShardedClusterEngine(
        packed,
        EngineConfig(num_shards=2, chunk_size=CHUNK),
        injector=FaultInjector(plan),
    )
    before = len(multiprocessing.active_children())
    supervised = SupervisedEngine(
        engine,
        SupervisorConfig(
            max_retries=0, backoff_base=0, allow_degraded=False
        ),
    )
    with supervised:
        supervised.ingest(nagano_log.log.entries[:CHUNK])
    # Engine closed and every failed dispatch terminated its pool.
    assert len(multiprocessing.active_children()) <= before
