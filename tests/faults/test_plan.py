"""Fault plans and injectors: validation, serialization, determinism."""

import pytest

from repro.errors import InjectedFault
from repro.faults import (
    ALL_SITES,
    SITE_CHECKPOINT_CORRUPT,
    SITE_CHECKPOINT_TRUNCATE,
    SITE_DUMP_MANGLE,
    SITE_LOG_TRUNCATE,
    SITE_SERVE_CRASH,
    SITE_SERVE_DISCONNECT,
    SITE_SERVE_WAL_ENOSPC,
    SITE_SERVE_WAL_TORN,
    SITE_SHM_WORKER_CRASH,
    SITE_WORKER_CRASH,
    SITE_WORKER_DIE,
    SITE_WORKER_SLOW,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    execute_worker_directive,
)


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultSpec(site="worker.meltdown")

    def test_rejects_negative_at(self):
        with pytest.raises(ValueError, match="at must be"):
            FaultSpec(site=SITE_WORKER_CRASH, at=-1)

    @pytest.mark.parametrize("count", [0, -2])
    def test_rejects_bad_count(self, count):
        with pytest.raises(ValueError, match="count must be"):
            FaultSpec(site=SITE_WORKER_CRASH, count=count)

    def test_covers_window(self):
        spec = FaultSpec(site=SITE_WORKER_CRASH, at=2, count=3)
        assert [spec.covers(v) for v in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_covers_forever(self):
        spec = FaultSpec(site=SITE_WORKER_CRASH, at=1, count=-1)
        assert not spec.covers(0)
        assert all(spec.covers(v) for v in (1, 10, 10_000))


class TestFaultPlanSerialization:
    def _plan(self):
        return FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=1, count=2, shard=0),
            FaultSpec(site=SITE_CHECKPOINT_TRUNCATE, arg=0.5),
            FaultSpec(site=SITE_LOG_TRUNCATE, arg=100),
            seed=7,
        )

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self._plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_sites_are_sorted_and_unique(self):
        assert self._plan().sites() == (
            SITE_CHECKPOINT_TRUNCATE, SITE_LOG_TRUNCATE, SITE_WORKER_CRASH,
        )

    def test_from_dict_rejects_bad_site(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"specs": [{"site": "nope"}]})

    def test_empty_plan_is_default(self):
        assert FaultPlan.from_dict({}) == FaultPlan()


class TestInjectorDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=1, count=3),
            seed=99,
        )
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        decisions_a = [first.worker_directive(8) for _ in range(6)]
        decisions_b = [second.worker_directive(8) for _ in range(6)]
        assert decisions_a == decisions_b
        assert first.fired == second.fired

    def test_noop_injector_never_fires(self):
        injector = FaultInjector()
        assert all(
            injector.worker_directive(4) is None for _ in range(100)
        )
        assert injector.total_fired == 0


class TestWorkerDirectives:
    def test_pinned_shard_is_respected(self):
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, shard=2)
        )
        directive = FaultInjector(plan).worker_directive(4)
        assert directive == (2, SITE_WORKER_CRASH, 0.0)

    def test_out_of_range_shard_falls_back_to_rng(self):
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, shard=99), seed=3
        )
        shard, site, _ = FaultInjector(plan).worker_directive(4)
        assert 0 <= shard < 4
        assert site == SITE_WORKER_CRASH

    def test_crash_directive_raises_injected_fault(self):
        with pytest.raises(InjectedFault) as info:
            execute_worker_directive((0, SITE_WORKER_CRASH, 0.0))
        assert info.value.site == SITE_WORKER_CRASH

    def test_slow_directive_sleeps_then_returns(self, monkeypatch):
        slept = []
        monkeypatch.setattr("repro.faults.time.sleep", slept.append)
        execute_worker_directive((0, SITE_WORKER_SLOW, 0.25))
        assert slept == [0.25]

    def test_unknown_directive_site_rejected(self):
        with pytest.raises(ValueError, match="unknown worker directive"):
            execute_worker_directive((0, SITE_DUMP_MANGLE, 0.0))


class TestFileDamage:
    def test_corrupt_flips_one_byte(self, tmp_path):
        path = tmp_path / "ckpt"
        original = bytes(range(256)) * 8
        path.write_bytes(original)
        injector = FaultInjector(
            FaultPlan.build(FaultSpec(site=SITE_CHECKPOINT_CORRUPT), seed=1)
        )
        assert injector.damage_file(str(path)) == SITE_CHECKPOINT_CORRUPT
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        diffs = [i for i, (a, b) in enumerate(zip(original, damaged)) if a != b]
        assert len(diffs) == 1
        assert diffs[0] >= len(original) // 2  # payload, not header

    def test_truncate_keeps_fraction(self, tmp_path):
        path = tmp_path / "ckpt"
        path.write_bytes(b"x" * 1000)
        injector = FaultInjector(
            FaultPlan.build(
                FaultSpec(site=SITE_CHECKPOINT_TRUNCATE, arg=0.25)
            )
        )
        assert injector.damage_file(str(path)) == SITE_CHECKPOINT_TRUNCATE
        assert path.stat().st_size == 250

    def test_unarmed_damage_is_noop(self, tmp_path):
        path = tmp_path / "ckpt"
        path.write_bytes(b"intact")
        assert FaultInjector().damage_file(str(path)) is None
        assert path.read_bytes() == b"intact"


class TestLineWrapping:
    def test_log_truncate_cuts_the_stream(self):
        injector = FaultInjector(
            FaultPlan.build(FaultSpec(site=SITE_LOG_TRUNCATE, arg=2))
        )
        lines = ["a\n", "b\n", "c\n", "d\n"]
        assert list(injector.wrap_lines(lines, SITE_LOG_TRUNCATE)) == [
            "a\n", "b\n",
        ]
        assert injector.fired[SITE_LOG_TRUNCATE] == 1

    def test_dump_mangle_replaces_armed_lines(self):
        injector = FaultInjector(
            FaultPlan.build(FaultSpec(site=SITE_DUMP_MANGLE, at=1, count=1))
        )
        lines = ["10.0.0.0/8\n", "11.0.0.0/8\n", "12.0.0.0/8\n"]
        wrapped = list(injector.wrap_lines(lines, SITE_DUMP_MANGLE))
        assert wrapped[0] == "10.0.0.0/8\n"
        assert "mangled" in wrapped[1]
        assert wrapped[2] == "12.0.0.0/8\n"

    def test_unarmed_wrap_is_identity(self):
        lines = ["one\n", "two\n"]
        assert list(FaultInjector().wrap_lines(lines, SITE_LOG_TRUNCATE)) == lines

    def test_wrap_rejects_non_stream_sites(self):
        with pytest.raises(ValueError, match="wrap_lines"):
            list(FaultInjector().wrap_lines([], SITE_WORKER_DIE))


def test_all_sites_is_complete():
    assert set(ALL_SITES) == {
        SITE_WORKER_CRASH, SITE_WORKER_DIE, SITE_WORKER_SLOW,
        SITE_CHECKPOINT_CORRUPT, SITE_CHECKPOINT_TRUNCATE,
        SITE_LOG_TRUNCATE, SITE_DUMP_MANGLE, SITE_SERVE_CRASH,
        SITE_SERVE_WAL_TORN, SITE_SERVE_WAL_ENOSPC, SITE_SERVE_DISCONNECT,
        SITE_SHM_WORKER_CRASH,
    }
