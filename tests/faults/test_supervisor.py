"""SupervisedEngine policy: retry, backoff, quarantine, degrade, verify.

These are the fast unit tests: the engine runs inline
(``use_processes=False``), where an armed worker fault raises a clean
:class:`WorkerCrashError` *before* any state mutates — so every
recovery decision is exercised deterministically without a pool.  The
real-pool acceptance runs live in ``test_chaos.py``.
"""

import json

import pytest

from repro.engine import (
    EngineConfig,
    PackedLpm,
    ShardedClusterEngine,
    SupervisedEngine,
    SupervisorConfig,
)
from repro.engine.state import CheckpointCorruptError, read_checkpoint
from repro.errors import ChunkQuarantinedError, DegradedModeWarning
from repro.faults import (
    SITE_CHECKPOINT_CORRUPT,
    SITE_WORKER_CRASH,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.net.prefix import Prefix

TRIPLES = [
    (0x0A000001, "/a", 100),
    (0x0A000002, "/b", 200),
    (0x0B000001, "/a", 300),
    (0x0B000002, "/c", 400),
    (0x0A000003, "/d", 500),
    (0x0B000003, "/b", 600),
]


@pytest.fixture()
def packed():
    return PackedLpm.from_items([
        (Prefix.from_cidr("10.0.0.0/8"), None),
        (Prefix.from_cidr("11.0.0.0/8"), None),
    ])


def _engine(packed, plan=None, chunk_size=8):
    config = EngineConfig(
        num_shards=2, chunk_size=chunk_size, use_processes=False
    )
    injector = FaultInjector(plan) if plan is not None else None
    return ShardedClusterEngine(packed, config, injector=injector)


def _signature(cluster_set):
    return {
        (c.identifier, tuple(c.clients), c.requests, c.unique_urls,
         c.total_bytes)
        for c in cluster_set.clusters
    }


@pytest.fixture()
def baseline(packed):
    engine = _engine(packed)
    engine.ingest_triples(iter(TRIPLES))
    return _signature(engine.snapshot())


def _crash_plan(at=0, count=1):
    return FaultPlan.build(
        FaultSpec(site=SITE_WORKER_CRASH, at=at, count=count)
    )


class TestHappyPath:
    def test_supervision_is_transparent(self, packed, baseline):
        supervised = SupervisedEngine(_engine(packed))
        applied = supervised.ingest_triples(iter(TRIPLES))
        assert applied == len(TRIPLES)
        assert _signature(supervised.snapshot()) == baseline
        snap = supervised.metrics.snapshot()
        assert snap["chunk_retries"] == 0
        assert snap["chunks_quarantined"] == 0
        assert snap["degraded"] == 0


class TestRetry:
    def test_retry_recovers_and_output_is_identical(self, packed, baseline):
        supervised = SupervisedEngine(
            _engine(packed, _crash_plan(count=2)),
            SupervisorConfig(max_retries=2, backoff_base=0),
        )
        applied = supervised.ingest_triples(iter(TRIPLES))
        assert applied == len(TRIPLES)
        assert _signature(supervised.snapshot()) == baseline
        assert supervised.metrics.snapshot()["chunk_retries"] == 2
        assert not supervised.degraded

    def test_backoff_schedule_is_exponential_and_capped(self, packed):
        slept = []
        supervised = SupervisedEngine(
            _engine(packed, _crash_plan(count=3)),
            SupervisorConfig(
                max_retries=3, backoff_base=0.5, backoff_cap=2.0,
                allow_degraded=False,
            ),
            sleep=slept.append,
        )
        supervised.ingest_triples(iter(TRIPLES))
        assert slept == [0.5, 1.0, 2.0]

    def test_zero_base_never_sleeps(self):
        config = SupervisorConfig(backoff_base=0)
        assert [config.backoff_seconds(n) for n in (1, 2, 3)] == [0, 0, 0]

    def test_failure_streak_resets_on_success(self, packed):
        # Crashes at dispatches 0 and 2 are not consecutive once the
        # retry of dispatch 0 succeeds — degrade_after=2 must NOT trip.
        plan = FaultPlan.build(
            FaultSpec(site=SITE_WORKER_CRASH, at=0, count=1),
            FaultSpec(site=SITE_WORKER_CRASH, at=2, count=1),
        )
        supervised = SupervisedEngine(
            _engine(packed, plan, chunk_size=2),
            SupervisorConfig(max_retries=1, backoff_base=0, degrade_after=2),
        )
        applied = supervised.ingest_triples(iter(TRIPLES))
        assert applied == len(TRIPLES)
        assert not supervised.degraded


class TestQuarantine:
    def _supervised(self, packed, tmp_path, **overrides):
        options = dict(
            max_retries=1, backoff_base=0, allow_degraded=False,
            quarantine_path=str(tmp_path / "dead-letter.jsonl"),
        )
        options.update(overrides)
        return SupervisedEngine(
            _engine(packed, _crash_plan(count=-1)),
            SupervisorConfig(**options),
        )

    def test_exhausted_chunk_goes_to_dead_letter(self, packed, tmp_path):
        supervised = self._supervised(packed, tmp_path)
        applied = supervised.ingest_triples(iter(TRIPLES))
        assert applied == 0
        snap = supervised.metrics.snapshot()
        assert snap["chunks_quarantined"] == 1
        assert snap["entries_quarantined"] == len(TRIPLES)
        # Nothing leaked into the cluster state.
        assert supervised.entries_ingested == 0
        records = [
            json.loads(line)
            for line in open(tmp_path / "dead-letter.jsonl")
        ]
        assert len(records) == 1
        assert records[0]["entries"] == len(TRIPLES)
        assert records[0]["triples"] == [list(t) for t in TRIPLES]
        assert "injected" in records[0]["error"]

    def test_quarantine_without_path_only_counts(self, packed, tmp_path):
        supervised = self._supervised(packed, tmp_path, quarantine_path=None)
        assert supervised.ingest_triples(iter(TRIPLES)) == 0
        assert supervised.metrics.snapshot()["chunks_quarantined"] == 1
        assert list(tmp_path.iterdir()) == []

    def test_disallowed_quarantine_is_fatal(self, packed, tmp_path):
        supervised = self._supervised(
            packed, tmp_path, allow_quarantine=False
        )
        with pytest.raises(ChunkQuarantinedError, match="quarantine"):
            supervised.ingest_triples(iter(TRIPLES))

    def test_later_chunks_still_apply(self, packed, tmp_path):
        # Only the first dispatch is poisoned; the rest of the stream
        # lands normally after the quarantine.
        supervised = SupervisedEngine(
            _engine(packed, _crash_plan(at=0, count=2), chunk_size=2),
            SupervisorConfig(
                max_retries=1, backoff_base=0, allow_degraded=False
            ),
        )
        applied = supervised.ingest_triples(iter(TRIPLES))
        assert applied == len(TRIPLES) - 2
        assert supervised.metrics.snapshot()["chunks_quarantined"] == 1


class TestDegradedMode:
    def test_persistent_failure_degrades_and_finishes(self, packed, baseline):
        supervised = SupervisedEngine(
            _engine(packed, _crash_plan(count=-1)),
            SupervisorConfig(max_retries=5, backoff_base=0, degrade_after=2),
        )
        with pytest.warns(DegradedModeWarning, match="degrading"):
            applied = supervised.ingest_triples(iter(TRIPLES))
        assert applied == len(TRIPLES)
        assert supervised.degraded
        assert supervised.metrics.snapshot()["degraded"] == 1
        # Worker faults are disarmed with the workers themselves.
        assert supervised.engine.injector is None
        # The whole point: degraded output is bit-for-bit identical.
        assert _signature(supervised.snapshot()) == baseline

    def test_no_degrade_keeps_failing_over_to_quarantine(self, packed):
        supervised = SupervisedEngine(
            _engine(packed, _crash_plan(count=-1)),
            SupervisorConfig(
                max_retries=1, backoff_base=0,
                allow_degraded=False, degrade_after=1,
            ),
        )
        assert supervised.ingest_triples(iter(TRIPLES)) == 0
        assert not supervised.degraded

    def test_all_escapes_disallowed_is_supervision_error(self, packed):
        # With degraded fallback AND quarantine both off, a pool that
        # keeps dying has no recovery path left: the supervisor must
        # say so explicitly rather than retry forever.
        from repro.errors import SupervisionError

        supervised = SupervisedEngine(
            _engine(packed, _crash_plan(count=-1)),
            SupervisorConfig(
                max_retries=5, backoff_base=0, degrade_after=2,
                allow_degraded=False, allow_quarantine=False,
            ),
        )
        with pytest.raises(SupervisionError, match="keeps dying"):
            supervised.ingest_triples(iter(TRIPLES))


class TestVerifiedCheckpoints:
    def _corrupt_plan(self, count):
        return FaultPlan.build(
            FaultSpec(site=SITE_CHECKPOINT_CORRUPT, count=count), seed=5
        )

    def test_damaged_checkpoint_is_rewritten(self, packed, tmp_path):
        engine = _engine(packed, self._corrupt_plan(count=1))
        supervised = SupervisedEngine(engine)
        supervised.ingest_triples(iter(TRIPLES))
        path = str(tmp_path / "run.ckpt")
        supervised.checkpoint(path, extra_meta={"log": "x"})
        assert supervised.metrics.snapshot()["checkpoint_rewrites"] == 1
        stores, meta = read_checkpoint(
            path, table_digest=engine.table.digest()
        )
        assert meta["log"] == "x"
        assert sum(s.entries_applied for s in stores) == len(TRIPLES)

    def test_unrecoverable_corruption_raises_after_attempts(
        self, packed, tmp_path
    ):
        supervised = SupervisedEngine(
            _engine(packed, self._corrupt_plan(count=-1)),
            SupervisorConfig(checkpoint_attempts=2),
        )
        supervised.ingest_triples(iter(TRIPLES))
        with pytest.raises(CheckpointCorruptError):
            supervised.checkpoint(str(tmp_path / "run.ckpt"))
        assert supervised.metrics.snapshot()["checkpoint_rewrites"] == 1

    def test_verification_off_lets_damage_through(self, packed, tmp_path):
        supervised = SupervisedEngine(
            _engine(packed, self._corrupt_plan(count=1)),
            SupervisorConfig(verify_checkpoints=False),
        )
        supervised.ingest_triples(iter(TRIPLES))
        path = str(tmp_path / "run.ckpt")
        supervised.checkpoint(path)  # no error here...
        with pytest.raises(CheckpointCorruptError):  # ...but the file is bad
            read_checkpoint(path)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"backoff_base": -0.1},
        {"backoff_cap": -1.0},
        {"degrade_after": 0},
        {"checkpoint_attempts": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)
