"""Unit tests for CIDR route aggregation."""

from repro.net.aggregate import aggregate_prefixes, aggregate_routes, remove_covered
from repro.net.prefix import Prefix


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


class TestAggregatePrefixes:
    def test_sibling_pair_merges(self):
        result = aggregate_prefixes([p("10.0.0.0/25"), p("10.0.0.128/25")])
        assert result == [p("10.0.0.0/24")]

    def test_merge_cascades(self):
        quarters = [
            p("10.0.0.0/26"), p("10.0.0.64/26"),
            p("10.0.0.128/26"), p("10.0.0.192/26"),
        ]
        assert aggregate_prefixes(quarters) == [p("10.0.0.0/24")]

    def test_non_siblings_do_not_merge(self):
        # Adjacent but not aligned: 10.0.1.0/24 + 10.0.2.0/24 are not a
        # sibling pair (their parent would not be aligned).
        result = aggregate_prefixes([p("10.0.1.0/24"), p("10.0.2.0/24")])
        assert result == [p("10.0.1.0/24"), p("10.0.2.0/24")]

    def test_covered_prefix_dropped(self):
        result = aggregate_prefixes([p("10.0.0.0/8"), p("10.1.0.0/16")])
        assert result == [p("10.0.0.0/8")]

    def test_empty_input(self):
        assert aggregate_prefixes([]) == []

    def test_address_space_preserved(self):
        prefixes = [p("10.0.0.0/25"), p("10.0.0.128/25"), p("10.0.2.0/24"),
                    p("192.168.0.0/16")]
        merged = aggregate_prefixes(prefixes)

        def covered(ps):
            return sum(q.num_addresses for q in ps)

        assert covered(merged) == covered(
            [p("10.0.0.0/24"), p("10.0.2.0/24"), p("192.168.0.0/16")]
        )
        for original in prefixes:
            assert any(m.contains_prefix(original) for m in merged)


class TestAggregateRoutes:
    def test_different_next_hops_do_not_merge(self):
        routes = [(p("10.0.0.0/25"), "A"), (p("10.0.0.128/25"), "B")]
        assert sorted(aggregate_routes(routes)) == sorted(routes)

    def test_same_next_hop_merges(self):
        routes = [(p("10.0.0.0/25"), "A"), (p("10.0.0.128/25"), "A")]
        assert aggregate_routes(routes) == [(p("10.0.0.0/24"), "A")]

    def test_more_specific_exception_survives(self):
        # A /24 punched out of a /16 with a different next hop must stay.
        routes = [(p("10.0.0.0/16"), "A"), (p("10.0.5.0/24"), "B")]
        assert sorted(aggregate_routes(routes)) == sorted(routes)

    def test_redundant_specific_with_same_hop_dropped(self):
        routes = [(p("10.0.0.0/16"), "A"), (p("10.0.5.0/24"), "A")]
        assert aggregate_routes(routes) == [(p("10.0.0.0/16"), "A")]

    def test_duplicate_prefix_last_wins(self):
        routes = [(p("10.0.0.0/16"), "A"), (p("10.0.0.0/16"), "B")]
        assert aggregate_routes(routes) == [(p("10.0.0.0/16"), "B")]

    def test_key_projection(self):
        routes = [
            (p("10.0.0.0/25"), {"hop": "A", "age": 1}),
            (p("10.0.0.128/25"), {"hop": "A", "age": 2}),
        ]
        merged = aggregate_routes(routes, key=lambda v: v["hop"])
        assert len(merged) == 1
        assert merged[0][0] == p("10.0.0.0/24")


class TestRemoveCovered:
    def test_drops_nested_keeps_rest(self):
        prefixes = [p("10.0.0.0/8"), p("10.1.0.0/16"), p("11.0.0.0/8")]
        assert remove_covered(prefixes) == [p("10.0.0.0/8"), p("11.0.0.0/8")]

    def test_never_merges_siblings(self):
        prefixes = [p("10.0.0.0/25"), p("10.0.0.128/25")]
        assert remove_covered(prefixes) == prefixes

    def test_deduplicates(self):
        assert remove_covered([p("10.0.0.0/8"), p("10.0.0.0/8")]) == [
            p("10.0.0.0/8")
        ]

    def test_deep_nesting_chain(self):
        prefixes = [p("10.0.0.0/8"), p("10.0.0.0/16"), p("10.0.0.0/24"),
                    p("10.0.0.0/32")]
        assert remove_covered(prefixes) == [p("10.0.0.0/8")]
