"""Unit tests for IPv4 address primitives."""

import pytest

from repro.net.ipv4 import (
    AddressError,
    MAX_ADDRESS,
    address_class,
    classful_prefix_length,
    first_octet,
    format_ipv4,
    is_valid_ipv4,
    length_to_netmask,
    mask_bits,
    netmask_to_length,
    parse_ipv4,
    sort_addresses,
)


class TestParseIpv4:
    def test_parses_example_from_paper(self):
        assert parse_ipv4("12.65.147.94") == (12 << 24) | (65 << 16) | (147 << 8) | 94

    def test_zero_address(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_max_address(self):
        assert parse_ipv4("255.255.255.255") == MAX_ADDRESS

    @pytest.mark.parametrize(
        "text",
        [
            "1.2.3",            # too few octets
            "1.2.3.4.5",        # too many octets
            "1.2.3.256",        # octet out of range
            "1.2.3.-1",         # negative
            "1.2.3.a",          # non-numeric
            "1.2.3.",           # trailing dot
            ".1.2.3",           # leading dot
            "1..2.3",           # empty octet
            "01.2.3.4",         # leading zero (octal ambiguity)
            " 1.2.3.4",         # whitespace
            "",                 # empty
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(AddressError):
            parse_ipv4(text)

    def test_is_valid_mirrors_parse(self):
        assert is_valid_ipv4("10.0.0.1")
        assert not is_valid_ipv4("10.0.0.999")


class TestFormatIpv4:
    def test_round_trip(self):
        for text in ("0.0.0.0", "12.65.147.94", "255.255.255.255", "128.0.0.1"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(-1)
        with pytest.raises(AddressError):
            format_ipv4(MAX_ADDRESS + 1)


class TestMasks:
    def test_mask_bits_boundaries(self):
        assert mask_bits(0) == 0
        assert mask_bits(32) == MAX_ADDRESS
        assert mask_bits(24) == parse_ipv4("255.255.255.0")
        assert mask_bits(19) == parse_ipv4("255.255.224.0")

    def test_mask_bits_rejects_bad_length(self):
        with pytest.raises(AddressError):
            mask_bits(33)
        with pytest.raises(AddressError):
            mask_bits(-1)

    def test_length_netmask_round_trip(self):
        for length in range(33):
            assert netmask_to_length(length_to_netmask(length)) == length

    def test_non_contiguous_netmask_rejected(self):
        with pytest.raises(AddressError):
            netmask_to_length("255.0.255.0")
        with pytest.raises(AddressError):
            netmask_to_length("0.255.0.0")


class TestClassful:
    @pytest.mark.parametrize(
        "text,cls,length",
        [
            ("9.1.2.3", "A", 8),
            ("127.0.0.1", "A", 8),
            ("128.0.0.1", "B", 16),
            ("151.198.194.17", "B", 16),
            ("191.255.0.1", "B", 16),
            ("192.0.0.1", "C", 24),
            ("223.255.255.1", "C", 24),
        ],
    )
    def test_class_and_length(self, text, cls, length):
        address = parse_ipv4(text)
        assert address_class(address) == cls
        assert classful_prefix_length(address) == length

    def test_multicast_has_no_classful_network(self):
        assert address_class(parse_ipv4("224.0.0.1")) == "D"
        assert address_class(parse_ipv4("240.0.0.1")) == "E"
        with pytest.raises(AddressError):
            classful_prefix_length(parse_ipv4("224.0.0.1"))

    def test_first_octet(self):
        assert first_octet(parse_ipv4("151.198.194.17")) == 151


def test_sort_addresses_numeric_not_lexicographic():
    addresses = [parse_ipv4(t) for t in ("100.0.0.0", "2.0.0.0", "20.0.0.0")]
    ordered = sort_addresses(addresses)
    assert [format_ipv4(a) for a in ordered] == [
        "2.0.0.0", "20.0.0.0", "100.0.0.0"
    ]
