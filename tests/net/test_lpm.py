"""Unit tests for the alternative LPM engines."""

import random

import pytest

from repro.net.ipv4 import parse_ipv4
from repro.net.lpm import LinearLpm, SortedLpm, build_engine
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


@pytest.fixture(params=[LinearLpm, SortedLpm])
def engine(request):
    return request.param()


class TestEngineBasics:
    def test_empty(self, engine):
        assert len(engine) == 0
        assert engine.longest_match(parse_ipv4("1.2.3.4")) is None

    def test_insert_and_match(self, engine):
        engine.insert(p("10.0.0.0/8"), "coarse")
        engine.insert(p("10.1.0.0/16"), "fine")
        assert engine.longest_match(parse_ipv4("10.1.0.1")) == (
            p("10.1.0.0/16"), "fine"
        )
        assert engine.longest_match(parse_ipv4("10.2.0.1")) == (
            p("10.0.0.0/8"), "coarse"
        )
        assert engine.longest_match(parse_ipv4("11.0.0.1")) is None

    def test_overwrite(self, engine):
        engine.insert(p("10.0.0.0/8"), "a")
        engine.insert(p("10.0.0.0/8"), "b")
        assert len(engine) == 1
        assert engine.longest_match(parse_ipv4("10.0.0.1"))[1] == "b"

    def test_delete(self, engine):
        engine.insert(p("10.0.0.0/8"), "a")
        assert engine.delete(p("10.0.0.0/8"))
        assert not engine.delete(p("10.0.0.0/8"))
        assert engine.longest_match(parse_ipv4("10.0.0.1")) is None

    def test_items_sorted(self, engine):
        cidrs = ["172.16.0.0/12", "10.0.0.0/8", "10.0.0.0/24"]
        for cidr in cidrs:
            engine.insert(p(cidr), cidr)
        ordered = [prefix.cidr for prefix, _ in engine.items()]
        assert ordered == ["10.0.0.0/8", "10.0.0.0/24", "172.16.0.0/12"]


class TestEngineEquivalence:
    def test_three_engines_agree(self):
        rng = random.Random(99)
        prefixes = []
        for _ in range(200):
            prefixes.append((Prefix(rng.getrandbits(32), rng.randint(2, 32)), "v"))
        radix = build_engine("radix", prefixes)
        linear = build_engine("linear", prefixes)
        sorted_engine = build_engine("sorted", prefixes)
        for _ in range(400):
            address = rng.getrandbits(32)
            results = {
                kind: engine.longest_match(address)
                for kind, engine in (
                    ("radix", radix), ("linear", linear), ("sorted", sorted_engine)
                )
            }
            matched = {
                kind: (result[0] if result else None)
                for kind, result in results.items()
            }
            assert matched["radix"] == matched["linear"] == matched["sorted"]

    def test_build_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_engine("quantum", [])

    def test_build_engine_kinds(self):
        from repro.engine.fastpath import StrideLpm
        from repro.engine.packed import PackedLpm

        assert isinstance(build_engine("radix", []), RadixTree)
        assert isinstance(build_engine("linear", []), LinearLpm)
        assert isinstance(build_engine("sorted", []), SortedLpm)
        assert isinstance(build_engine("packed", []), PackedLpm)
        assert isinstance(build_engine("stride", []), StrideLpm)


class TestBatchApi:
    """The packed-table surface on the mutable engines: every
    build_engine result is interchangeable where a LookupTable is
    duck-typed."""

    CIDRS = ["10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12"]

    @pytest.fixture(params=["linear", "sorted", "packed", "stride"])
    def table(self, request):
        return build_engine(
            request.param, [(p(cidr), cidr) for cidr in self.CIDRS]
        )

    def test_lookup_many_returns_entry_indices(self, table):
        probes = [
            parse_ipv4("10.1.2.3"),    # /16, entry 1 in sort_key order
            parse_ipv4("10.200.0.1"),  # /8,  entry 0
            parse_ipv4("172.20.0.1"),  # /12, entry 2
            parse_ipv4("11.0.0.1"),    # miss
        ]
        indices = table.lookup_many(probes)
        assert indices == [1, 0, 2, -1]
        assert [table.prefix(i).cidr for i in indices[:3]] == [
            "10.1.0.0/16", "10.0.0.0/8", "172.16.0.0/12",
        ]
        for address, index in zip(probes, indices):
            assert table.match_index(address) == index
            if index >= 0:
                assert table.lookup(address) == table.value(index)
                assert table.value(index) == table.prefix(index).cidr
            else:
                assert table.lookup(address) is None

    def test_digest_matches_across_kinds(self):
        entries = [(p(cidr), cidr) for cidr in self.CIDRS]
        digests = {
            build_engine(kind, entries).digest()
            for kind in ("linear", "sorted", "packed", "stride")
        }
        assert len(digests) == 1

    def test_mutation_invalidates_the_index(self):
        for kind in ("linear", "sorted"):
            engine = build_engine(
                kind, [(p("10.0.0.0/8"), "a")]
            )
            address = parse_ipv4("10.1.2.3")
            assert engine.match_index(address) == 0
            engine.insert(p("10.1.0.0/16"), "b")
            # /16 now precedes nothing new in sort order; /8 is entry 0,
            # /16 entry 1, and the address resolves to the finer entry.
            assert engine.match_index(address) == 1
            assert engine.prefix(1).cidr == "10.1.0.0/16"
            assert engine.delete(p("10.1.0.0/16"))
            assert engine.match_index(address) == 0
