"""Unit tests for the alternative LPM engines."""

import random

import pytest

from repro.net.ipv4 import parse_ipv4
from repro.net.lpm import LinearLpm, SortedLpm, build_engine
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


@pytest.fixture(params=[LinearLpm, SortedLpm])
def engine(request):
    return request.param()


class TestEngineBasics:
    def test_empty(self, engine):
        assert len(engine) == 0
        assert engine.longest_match(parse_ipv4("1.2.3.4")) is None

    def test_insert_and_match(self, engine):
        engine.insert(p("10.0.0.0/8"), "coarse")
        engine.insert(p("10.1.0.0/16"), "fine")
        assert engine.longest_match(parse_ipv4("10.1.0.1")) == (
            p("10.1.0.0/16"), "fine"
        )
        assert engine.longest_match(parse_ipv4("10.2.0.1")) == (
            p("10.0.0.0/8"), "coarse"
        )
        assert engine.longest_match(parse_ipv4("11.0.0.1")) is None

    def test_overwrite(self, engine):
        engine.insert(p("10.0.0.0/8"), "a")
        engine.insert(p("10.0.0.0/8"), "b")
        assert len(engine) == 1
        assert engine.longest_match(parse_ipv4("10.0.0.1"))[1] == "b"

    def test_delete(self, engine):
        engine.insert(p("10.0.0.0/8"), "a")
        assert engine.delete(p("10.0.0.0/8"))
        assert not engine.delete(p("10.0.0.0/8"))
        assert engine.longest_match(parse_ipv4("10.0.0.1")) is None

    def test_items_sorted(self, engine):
        cidrs = ["172.16.0.0/12", "10.0.0.0/8", "10.0.0.0/24"]
        for cidr in cidrs:
            engine.insert(p(cidr), cidr)
        ordered = [prefix.cidr for prefix, _ in engine.items()]
        assert ordered == ["10.0.0.0/8", "10.0.0.0/24", "172.16.0.0/12"]


class TestEngineEquivalence:
    def test_three_engines_agree(self):
        rng = random.Random(99)
        prefixes = []
        for _ in range(200):
            prefixes.append((Prefix(rng.getrandbits(32), rng.randint(2, 32)), "v"))
        radix = build_engine("radix", prefixes)
        linear = build_engine("linear", prefixes)
        sorted_engine = build_engine("sorted", prefixes)
        for _ in range(400):
            address = rng.getrandbits(32)
            results = {
                kind: engine.longest_match(address)
                for kind, engine in (
                    ("radix", radix), ("linear", linear), ("sorted", sorted_engine)
                )
            }
            matched = {
                kind: (result[0] if result else None)
                for kind, result in results.items()
            }
            assert matched["radix"] == matched["linear"] == matched["sorted"]

    def test_build_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_engine("quantum", [])

    def test_build_engine_kinds(self):
        assert isinstance(build_engine("radix", []), RadixTree)
        assert isinstance(build_engine("linear", []), LinearLpm)
        assert isinstance(build_engine("sorted", []), SortedLpm)
