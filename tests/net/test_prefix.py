"""Unit tests for CIDR prefixes."""

import pytest

from repro.net.ipv4 import AddressError, parse_ipv4
from repro.net.prefix import DEFAULT_ROUTE, Prefix


class TestConstruction:
    def test_from_cidr(self):
        prefix = Prefix.from_cidr("12.65.128.0/19")
        assert prefix.network == parse_ipv4("12.65.128.0")
        assert prefix.length == 19

    def test_canonicalises_host_bits(self):
        sloppy = Prefix(parse_ipv4("12.65.147.94"), 19)
        assert sloppy.cidr == "12.65.128.0/19"

    def test_from_netmask(self):
        prefix = Prefix.from_netmask("24.48.2.0", "255.255.254.0")
        assert prefix.cidr == "24.48.2.0/23"

    def test_host_prefix(self):
        prefix = Prefix.host(parse_ipv4("1.2.3.4"))
        assert prefix.cidr == "1.2.3.4/32"
        assert prefix.num_addresses == 1

    def test_classful_constructor(self):
        assert Prefix.classful(parse_ipv4("151.198.194.17")).cidr == "151.198.0.0/16"

    @pytest.mark.parametrize("text", ["1.2.3.4", "1.2.3.4/33", "1.2.3.4/x", "/24"])
    def test_rejects_bad_cidr(self, text):
        with pytest.raises(AddressError):
            Prefix.from_cidr(text)

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix(0, 40)


class TestRendering:
    def test_with_netmask_is_papers_standard_format(self):
        assert Prefix.from_cidr("12.65.128.0/19").with_netmask == (
            "12.65.128.0/255.255.224.0"
        )

    def test_str_and_repr(self):
        prefix = Prefix.from_cidr("10.0.0.0/8")
        assert str(prefix) == "10.0.0.0/8"
        assert "10.0.0.0/8" in repr(prefix)


class TestOrderingAndHashing:
    def test_equal_prefixes_hash_equal(self):
        a = Prefix.from_cidr("10.1.0.0/16")
        b = Prefix(parse_ipv4("10.1.2.3"), 16)
        assert a == b
        assert hash(a) == hash(b)

    def test_sorted_by_network_then_length(self):
        prefixes = [
            Prefix.from_cidr("10.0.0.0/16"),
            Prefix.from_cidr("10.0.0.0/8"),
            Prefix.from_cidr("9.0.0.0/8"),
        ]
        assert [p.cidr for p in sorted(prefixes)] == [
            "9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"
        ]


class TestContainment:
    def test_contains_address(self):
        prefix = Prefix.from_cidr("12.65.128.0/19")
        assert prefix.contains_address(parse_ipv4("12.65.147.94"))
        assert prefix.contains_address(parse_ipv4("12.65.128.0"))
        assert prefix.contains_address(parse_ipv4("12.65.159.255"))
        assert not prefix.contains_address(parse_ipv4("12.65.160.0"))

    def test_contains_prefix(self):
        outer = Prefix.from_cidr("10.0.0.0/8")
        inner = Prefix.from_cidr("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert outer.contains_prefix(outer)
        assert not inner.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.from_cidr("10.0.0.0/8")
        b = Prefix.from_cidr("10.1.0.0/16")
        c = Prefix.from_cidr("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_first_last_address(self):
        prefix = Prefix.from_cidr("24.48.2.0/23")
        assert prefix.first_address == parse_ipv4("24.48.2.0")
        assert prefix.last_address == parse_ipv4("24.48.3.255")
        assert prefix.num_addresses == 512


class TestStructure:
    def test_parent_child_round_trip(self):
        prefix = Prefix.from_cidr("10.128.0.0/9")
        left, right = prefix.children()
        assert left.parent() == prefix
        assert right.parent() == prefix
        assert left.cidr == "10.128.0.0/10"
        assert right.cidr == "10.192.0.0/10"

    def test_default_route_has_no_parent(self):
        with pytest.raises(AddressError):
            DEFAULT_ROUTE.parent()
        assert DEFAULT_ROUTE.sibling() is None

    def test_host_prefix_cannot_split(self):
        with pytest.raises(AddressError):
            Prefix.host(0).children()

    def test_sibling_is_other_half(self):
        left, right = Prefix.from_cidr("10.0.0.0/8").children()
        assert left.sibling() == right
        assert right.sibling() == left

    def test_subnets_enumeration(self):
        prefix = Prefix.from_cidr("192.168.0.0/22")
        subnets = list(prefix.subnets(24))
        assert [s.cidr for s in subnets] == [
            "192.168.0.0/24", "192.168.1.0/24",
            "192.168.2.0/24", "192.168.3.0/24",
        ]

    def test_subnets_same_length_is_identity(self):
        prefix = Prefix.from_cidr("10.0.0.0/8")
        assert list(prefix.subnets(8)) == [prefix]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(Prefix.from_cidr("10.0.0.0/16").subnets(8))

    def test_bit_walk_matches_network(self):
        prefix = Prefix.from_cidr("128.0.0.0/1")
        assert prefix.bit(0) == 1
        assert Prefix.from_cidr("0.0.0.0/1").bit(0) == 0
        with pytest.raises(AddressError):
            prefix.bit(32)


def test_default_route_covers_everything():
    assert DEFAULT_ROUTE.contains_address(0)
    assert DEFAULT_ROUTE.contains_address(parse_ipv4("255.255.255.255"))
    assert DEFAULT_ROUTE.num_addresses == 2 ** 32
