"""Unit + property tests for PrefixSet address-space algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefix import Prefix
from repro.net.prefixset import PrefixSet


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


def ps(*cidrs: str) -> PrefixSet:
    return PrefixSet(p(c) for c in cidrs)


class TestConstruction:
    def test_normalises_siblings(self):
        assert ps("10.0.0.0/25", "10.0.0.128/25") == ps("10.0.0.0/24")

    def test_drops_covered(self):
        assert ps("10.0.0.0/8", "10.1.0.0/16") == ps("10.0.0.0/8")

    def test_empty(self):
        assert not PrefixSet.empty()
        assert PrefixSet.empty().num_addresses == 0

    def test_universe(self):
        assert PrefixSet.universe().num_addresses == 2 ** 32

    def test_equality_is_space_equality(self):
        quarters = ps("10.0.0.0/26", "10.0.0.64/26", "10.0.0.128/26",
                      "10.0.0.192/26")
        assert quarters == ps("10.0.0.0/24")
        assert hash(quarters) == hash(ps("10.0.0.0/24"))


class TestMembership:
    def test_contains_address_binary_search(self):
        space = ps("10.0.0.0/24", "192.0.2.0/24")
        assert space.contains_address(p("10.0.0.0/24").network + 7)
        assert space.contains_address(p("192.0.2.0/24").last_address)
        assert not space.contains_address(p("11.0.0.0/8").network)

    def test_contains_prefix(self):
        space = ps("10.0.0.0/16")
        assert space.contains_prefix(p("10.0.5.0/24"))
        assert space.contains_prefix(p("10.0.0.0/16"))
        assert not space.contains_prefix(p("10.0.0.0/8"))
        assert not space.contains_prefix(p("11.0.0.0/24"))


class TestAlgebra:
    def test_union(self):
        combined = ps("10.0.0.0/25") | ps("10.0.0.128/25")
        assert combined == ps("10.0.0.0/24")

    def test_intersection(self):
        left = ps("10.0.0.0/8")
        right = ps("10.5.0.0/16", "11.0.0.0/16")
        assert (left & right) == ps("10.5.0.0/16")

    def test_intersection_partial_overlap(self):
        left = ps("10.0.0.0/24")
        right = ps("10.0.0.128/25")
        assert (left & right) == ps("10.0.0.128/25")

    def test_difference(self):
        assert (ps("10.0.0.0/24") - ps("10.0.0.0/25")) == ps("10.0.0.128/25")

    def test_complement_round_trip(self):
        space = ps("10.0.0.0/8", "192.0.2.0/24")
        assert space.complement().complement() == space
        assert space.complement().num_addresses == 2 ** 32 - space.num_addresses

    def test_complement_of_universe_is_empty(self):
        assert PrefixSet.universe().complement() == PrefixSet.empty()
        assert PrefixSet.empty().complement() == PrefixSet.universe()

    def test_subset_and_overlap(self):
        small, big = ps("10.0.1.0/24"), ps("10.0.0.0/16")
        assert small.issubset(big)
        assert not big.issubset(small)
        assert small.overlaps(big)
        assert not small.overlaps(ps("192.0.2.0/24"))


addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
prefixes = st.builds(Prefix, addresses, st.integers(min_value=0, max_value=32))
prefix_lists = st.lists(prefixes, min_size=0, max_size=15)


@settings(max_examples=60)
@given(prefix_lists, prefix_lists)
def test_union_address_count_by_inclusion_exclusion(list_a, list_b):
    a, b = PrefixSet(list_a), PrefixSet(list_b)
    union = a | b
    inter = a & b
    assert union.num_addresses == (
        a.num_addresses + b.num_addresses - inter.num_addresses
    )


@settings(max_examples=60)
@given(prefix_lists, prefix_lists)
def test_difference_disjoint_from_subtrahend(list_a, list_b):
    a, b = PrefixSet(list_a), PrefixSet(list_b)
    diff = a - b
    assert not diff.overlaps(b)
    assert diff.issubset(a)
    assert (diff | (a & b)) == a


@settings(max_examples=60)
@given(prefix_lists, addresses)
def test_membership_matches_input_cover(prefix_list, address):
    space = PrefixSet(prefix_list)
    expected = any(prefix.contains_address(address) for prefix in prefix_list)
    assert space.contains_address(address) == expected


@settings(max_examples=60)
@given(prefix_lists)
def test_blocks_disjoint_and_sorted(prefix_list):
    space = PrefixSet(prefix_list)
    blocks = space.blocks
    for left, right in zip(blocks, blocks[1:]):
        assert left.last_address < right.network
