"""Property-based tests (hypothesis) on the core data structures.

These pin down the invariants the whole reproduction rests on: the
radix trie must agree with a brute-force oracle, textual round-trips
must be lossless, and aggregation must preserve covered address space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.aggregate import aggregate_prefixes, remove_covered
from repro.net.ipv4 import format_ipv4, mask_bits, parse_ipv4
from repro.net.lpm import LinearLpm, SortedLpm, build_engine
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
lengths = st.integers(min_value=0, max_value=32)
prefixes = st.builds(Prefix, addresses, lengths)
prefix_lists = st.lists(prefixes, min_size=0, max_size=60)


@given(addresses)
def test_ipv4_format_parse_round_trip(address):
    assert parse_ipv4(format_ipv4(address)) == address


@given(prefixes)
def test_prefix_cidr_round_trip(prefix):
    assert Prefix.from_cidr(prefix.cidr) == prefix


@given(prefixes)
def test_prefix_netmask_round_trip(prefix):
    text = prefix.with_netmask
    address, netmask = text.split("/")
    assert Prefix.from_netmask(address, netmask) == prefix


@given(prefixes)
def test_prefix_covers_its_own_range(prefix):
    assert prefix.contains_address(prefix.first_address)
    assert prefix.contains_address(prefix.last_address)
    assert prefix.num_addresses == prefix.last_address - prefix.first_address + 1


@given(prefixes, addresses)
def test_containment_matches_mask_arithmetic(prefix, address):
    expected = (address & mask_bits(prefix.length)) == prefix.network
    assert prefix.contains_address(address) == expected


@settings(max_examples=60)
@given(prefix_lists, st.lists(addresses, min_size=1, max_size=30))
def test_radix_agrees_with_linear_oracle(prefix_list, query_addresses):
    tree = RadixTree()
    oracle = LinearLpm()
    for index, prefix in enumerate(prefix_list):
        tree.insert(prefix, index)
        oracle.insert(prefix, index)
    assert len(tree) == len({p for p in prefix_list})
    for address in query_addresses:
        expected = oracle.longest_match(address)
        got = tree.longest_match(address)
        if expected is None:
            assert got is None
        else:
            # The matched prefix must agree; the value follows from the
            # last-write-wins semantics both engines share.
            assert got is not None and got[0] == expected[0]
            assert got[1] == expected[1]


@settings(max_examples=60)
@given(prefix_lists, st.lists(addresses, min_size=1, max_size=30))
def test_sorted_lpm_agrees_with_linear_oracle(prefix_list, query_addresses):
    engine = SortedLpm()
    oracle = LinearLpm()
    for index, prefix in enumerate(prefix_list):
        engine.insert(prefix, index)
        oracle.insert(prefix, index)
    for address in query_addresses:
        expected = oracle.longest_match(address)
        got = engine.longest_match(address)
        assert (got is None) == (expected is None)
        if expected is not None:
            assert got[0] == expected[0]


@settings(max_examples=60)
@given(prefix_lists, st.lists(addresses, min_size=1, max_size=30))
def test_every_lpm_kind_agrees_on_longest_match(prefix_list, query_addresses):
    """StrideLpm, PackedLpm, RadixTree and SortedLpm resolve identical
    longest matches — and identical entry indices where the batch API
    exists — for arbitrary prefix sets.  Duplicate prefixes keep the
    last value under every kind."""
    entries = [(prefix, index) for index, prefix in enumerate(prefix_list)]
    engines = {
        kind: build_engine(kind, entries)
        for kind in ("radix", "sorted", "packed", "stride")
    }
    oracle = engines["radix"]
    for address in query_addresses:
        expected = oracle.longest_match(address)
        for kind in ("sorted", "packed", "stride"):
            got = engines[kind].longest_match(address)
            if expected is None:
                assert got is None, kind
            else:
                assert got == expected, kind
    # The batch surface: indices agree entry-for-entry across kinds,
    # because every kind snapshots the deduplicated entry set in the
    # same sort_key order — and so do the digests.
    batch = {
        kind: engines[kind].lookup_many(query_addresses)
        for kind in ("sorted", "packed", "stride")
    }
    assert batch["sorted"] == batch["packed"] == batch["stride"]
    assert (engines["sorted"].digest() == engines["packed"].digest()
            == engines["stride"].digest())


@settings(max_examples=60)
@given(prefix_lists)
def test_radix_delete_restores_oracle_agreement(prefix_list):
    tree = RadixTree()
    unique = list({p for p in prefix_list})
    for prefix in unique:
        tree.insert(prefix, prefix.cidr)
    # Delete every other prefix, then check the survivors still match.
    survivors = []
    for index, prefix in enumerate(unique):
        if index % 2 == 0:
            assert tree.delete(prefix)
        else:
            survivors.append(prefix)
    assert len(tree) == len(survivors)
    for prefix in survivors:
        assert tree.get(prefix) == prefix.cidr
        # The network address of a surviving entry must match something
        # at least as specific as that entry (possibly a longer
        # surviving prefix nested at the same address).
        match = tree.longest_match(prefix.network)
        assert match is not None
        assert match[0].length >= prefix.length


@settings(max_examples=80)
@given(prefix_lists)
def test_aggregation_preserves_coverage(prefix_list):
    merged = aggregate_prefixes(prefix_list)
    # Every original block is covered by exactly one merged block.
    for original in prefix_list:
        covers = [m for m in merged if m.contains_prefix(original)]
        assert len(covers) == 1
    # No two merged blocks overlap.
    ordered = sorted(merged)
    for left, right in zip(ordered, ordered[1:]):
        assert not left.overlaps(right)


@settings(max_examples=80)
@given(prefix_lists)
def test_aggregation_is_minimal(prefix_list):
    merged = aggregate_prefixes(prefix_list)
    # Minimality: no sibling pair remains, and no block is covered.
    as_set = set(merged)
    for prefix in merged:
        sibling = prefix.sibling()
        assert sibling is None or sibling not in as_set


@settings(max_examples=80)
@given(prefix_lists)
def test_aggregation_idempotent(prefix_list):
    once = aggregate_prefixes(prefix_list)
    twice = aggregate_prefixes(once)
    assert sorted(once) == sorted(twice)


@settings(max_examples=80)
@given(prefix_lists)
def test_remove_covered_keeps_maximal_blocks_verbatim(prefix_list):
    kept = remove_covered(prefix_list)
    originals = set(prefix_list)
    # Every kept block appeared in the input (no merging happened).
    assert all(prefix in originals for prefix in kept)
    # Every input block is covered by some kept block.
    for original in prefix_list:
        assert any(k.contains_prefix(original) for k in kept)
    # Kept blocks are mutually non-nested.
    for a in kept:
        for b in kept:
            if a != b:
                assert not a.contains_prefix(b)
