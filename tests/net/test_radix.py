"""Unit tests for the radix (Patricia) trie."""

import random


from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix
from repro.net.radix import RadixTree


def p(cidr: str) -> Prefix:
    return Prefix.from_cidr(cidr)


class TestInsertGet:
    def test_empty_tree(self):
        tree = RadixTree()
        assert len(tree) == 0
        assert not tree
        assert tree.longest_match(parse_ipv4("1.2.3.4")) is None
        assert tree.get(p("10.0.0.0/8")) is None

    def test_single_entry(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "ten")
        assert len(tree) == 1
        assert tree.get(p("10.0.0.0/8")) == "ten"
        assert p("10.0.0.0/8") in tree

    def test_overwrite_keeps_size(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "a")
        tree.insert(p("10.0.0.0/8"), "b")
        assert len(tree) == 1
        assert tree.get(p("10.0.0.0/8")) == "b"

    def test_get_returns_default_for_prefix_on_path(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "eight")
        # /16 lies on the path below the /8 node but stores no value.
        assert tree.get(p("10.0.0.0/16"), "missing") == "missing"

    def test_nested_prefixes_all_retrievable(self):
        tree = RadixTree()
        entries = ["10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "10.0.0.0/32"]
        for cidr in entries:
            tree.insert(p(cidr), cidr)
        for cidr in entries:
            assert tree.get(p(cidr)) == cidr
        assert len(tree) == 4

    def test_fork_point_prefix_insertion(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/24"), "left")
        tree.insert(p("10.0.1.0/24"), "right")
        # The fork covering both is 10.0.0.0/23; inserting it stores a
        # value at the existing structural node.
        tree.insert(p("10.0.0.0/23"), "fork")
        assert tree.get(p("10.0.0.0/23")) == "fork"
        assert len(tree) == 3


class TestLongestMatch:
    def test_paper_example(self):
        """§3.2.1's worked example: four clients match 12.65.128.0/19,
        two match 24.48.2.0/23."""
        tree = RadixTree()
        tree.insert(p("12.65.128.0/19"), "c1")
        tree.insert(p("24.48.2.0/23"), "c2")
        group1 = ["12.65.147.94", "12.65.147.149", "12.65.146.207",
                  "12.65.144.247"]
        group2 = ["24.48.3.87", "24.48.2.166"]
        for text in group1:
            match = tree.longest_match(parse_ipv4(text))
            assert match is not None and match[0] == p("12.65.128.0/19")
        for text in group2:
            match = tree.longest_match(parse_ipv4(text))
            assert match is not None and match[0] == p("24.48.2.0/23")

    def test_most_specific_wins(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "coarse")
        tree.insert(p("10.1.0.0/16"), "fine")
        match = tree.longest_match(parse_ipv4("10.1.2.3"))
        assert match == (p("10.1.0.0/16"), "fine")
        match = tree.longest_match(parse_ipv4("10.2.0.1"))
        assert match == (p("10.0.0.0/8"), "coarse")

    def test_no_match_outside_all_prefixes(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "x")
        assert tree.longest_match(parse_ipv4("11.0.0.1")) is None

    def test_default_route_matches_all(self):
        tree = RadixTree()
        tree.insert(p("0.0.0.0/0"), "default")
        assert tree.longest_match(0)[1] == "default"
        assert tree.longest_match(parse_ipv4("203.0.113.9"))[1] == "default"

    def test_host_route(self):
        tree = RadixTree()
        tree.insert(p("1.2.3.4/32"), "host")
        tree.insert(p("1.2.3.0/24"), "net")
        assert tree.longest_match(parse_ipv4("1.2.3.4"))[1] == "host"
        assert tree.longest_match(parse_ipv4("1.2.3.5"))[1] == "net"

    def test_all_matches_shortest_first(self):
        tree = RadixTree()
        for cidr in ("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"):
            tree.insert(p(cidr), cidr)
        matches = tree.all_matches(parse_ipv4("10.1.2.3"))
        assert [m[0].cidr for m in matches] == [
            "10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"
        ]


class TestDelete:
    def test_delete_present(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "x")
        assert tree.delete(p("10.0.0.0/8"))
        assert len(tree) == 0
        assert tree.longest_match(parse_ipv4("10.0.0.1")) is None

    def test_delete_absent_returns_false(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "x")
        assert not tree.delete(p("11.0.0.0/8"))
        assert not tree.delete(p("10.0.0.0/16"))
        assert len(tree) == 1

    def test_delete_keeps_structure(self):
        tree = RadixTree()
        for cidr in ("10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24", "10.0.2.0/24"):
            tree.insert(p(cidr), cidr)
        assert tree.delete(p("10.0.0.0/16"))
        assert tree.get(p("10.0.1.0/24")) == "10.0.1.0/24"
        assert tree.get(p("10.0.2.0/24")) == "10.0.2.0/24"
        assert tree.longest_match(parse_ipv4("10.0.1.7"))[0] == p("10.0.1.0/24")
        assert tree.longest_match(parse_ipv4("10.9.9.9"))[0] == p("10.0.0.0/8")

    def test_clear(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), "x")
        tree.clear()
        assert len(tree) == 0


class TestIteration:
    def test_items_in_address_order(self):
        tree = RadixTree()
        cidrs = ["192.168.1.0/24", "10.0.0.0/8", "10.0.0.0/16", "172.16.0.0/12"]
        for cidr in cidrs:
            tree.insert(p(cidr), cidr)
        ordered = [prefix.cidr for prefix, _ in tree.items()]
        assert ordered == sorted(cidrs, key=lambda c: p(c).sort_key())

    def test_iter_yields_prefixes(self):
        tree = RadixTree()
        tree.insert(p("10.0.0.0/8"), 1)
        assert list(tree) == [p("10.0.0.0/8")]

    def test_covered(self):
        tree = RadixTree()
        for cidr in ("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"):
            tree.insert(p(cidr), cidr)
        inside = [prefix.cidr for prefix, _ in tree.covered(p("10.0.0.0/8"))]
        assert inside == ["10.0.0.0/8", "10.1.0.0/16"]


class TestRandomisedAgainstBruteForce:
    def test_matches_linear_scan(self):
        """Seeded randomised cross-check of the trie against an O(n)
        oracle (the deeper hypothesis checks live in
        test_properties.py)."""
        rng = random.Random(7)
        tree = RadixTree()
        reference = {}
        for _ in range(300):
            length = rng.randint(4, 32)
            network = rng.getrandbits(32)
            prefix = Prefix(network, length)
            tree.insert(prefix, prefix.cidr)
            reference[prefix] = prefix.cidr
        assert len(tree) == len(reference)
        for _ in range(500):
            address = rng.getrandbits(32)
            expected = None
            for prefix in reference:
                if prefix.contains_address(address):
                    if expected is None or prefix.length > expected.length:
                        expected = prefix
            got = tree.longest_match(address)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got[0] == expected
