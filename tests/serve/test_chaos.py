"""Chaos tests: kill the daemon mid-delta, resume, prove equivalence.

Reuses the :mod:`repro.faults` injection machinery: a planned
``serve.crash`` fault fires just before a delta batch mutates the
table, so the on-disk checkpoint always predates the interrupted
batch — exactly the state a real crash leaves behind.  Resuming and
replaying the same stream must land on clusters identical to an
uninterrupted run.
"""

import pytest

from repro.errors import InjectedFault
from repro.faults import (
    SITE_SERVE_CRASH,
    SITE_SERVE_WAL_ENOSPC,
    SITE_SERVE_WAL_TORN,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.wal import recover_wal

from .test_daemon import fresh_table, mixed_stream


def crash_plan(at):
    return FaultPlan.build(FaultSpec(site=SITE_SERVE_CRASH, at=at))


def wal_config(tmp_path, **overrides):
    settings = dict(
        batch_size=2,
        checkpoint_path=str(tmp_path / "wal.ckpt"),
        checkpoint_every=3,
        wal_dir=str(tmp_path / "wal"),
        wal_sync_every=1,
        wal_segment_bytes=512,
    )
    settings.update(overrides)
    return ServeConfig(**settings)


class TestCrashResume:
    @pytest.mark.parametrize("crash_at", [0, 1, 2])
    def test_resume_after_crash_matches_uninterrupted_run(
        self, tmp_path, crash_at
    ):
        stream = mixed_stream()
        path = str(tmp_path / "crash.ckpt")

        reference = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        for event in stream:
            reference.feed(event)
        reference.finish()
        expected = reference.snapshot(name="run")

        crashing = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=3
            ),
            injector=FaultInjector(crash_plan(crash_at)),
        )
        with pytest.raises(InjectedFault):
            for event in stream:
                crashing.feed(event)
            crashing.finish()
        survived = crashing.events_consumed
        assert survived < len(stream)

        resumed = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=3
            ),
        )
        resumed.resume_from(path)
        assert 0 < resumed.resume_skip <= survived
        for event in stream:
            resumed.feed(event)
        resumed.finish()
        assert resumed.snapshot(name="run") == expected

    def test_crash_loses_no_checkpointed_work(self, tmp_path):
        """The checkpoint the crash leaves behind is itself verified:
        loading it yields the store as of its stream position."""
        stream = mixed_stream()
        path = str(tmp_path / "verify.ckpt")
        crashing = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=4
            ),
            injector=FaultInjector(crash_plan(2)),
        )
        with pytest.raises(InjectedFault):
            for event in stream:
                crashing.feed(event)

        clean = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        resumed = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        resumed.resume_from(path)
        skip = resumed.resume_skip
        for event in stream[:skip]:
            clean.feed(event)
            resumed.feed(event)
        clean.finish()
        # finish() on the resumed daemon at the exact boundary is legal
        # (replay is complete) and must agree with the clean run.
        resumed.finish()
        assert resumed.snapshot(name="boundary") == clean.snapshot(
            name="boundary"
        )


class TestWalRecovery:
    """Kill-and-recover from checkpoint + WAL tail alone — no upstream
    replay.  Only the events the crashed daemon never accepted are fed
    to the recovered one; everything it *did* accept must come back
    from the checkpoint and the WAL."""

    @pytest.mark.parametrize(
        "site,at",
        [
            (SITE_SERVE_CRASH, 0),
            (SITE_SERVE_CRASH, 2),
            (SITE_SERVE_WAL_TORN, 2),
            (SITE_SERVE_WAL_TORN, 11),
        ],
        ids=[
            "serve_crash_first_flush",
            "serve_crash_mid_stream",
            "serve_wal_torn_early",
            "serve_wal_torn_late",
        ],
    )
    def test_kill_and_recover_matches_uninterrupted_run(
        self, tmp_path, site, at
    ):
        stream = mixed_stream()

        reference = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        for event in stream:
            reference.feed(event)
        reference.finish()
        expected = reference.snapshot(name="run")

        plan = FaultPlan.build(FaultSpec(site=site, at=at))
        crashing = ServeDaemon(
            fresh_table(), wal_config(tmp_path), injector=FaultInjector(plan)
        )
        crashing.attach_wal()
        with pytest.raises(InjectedFault):
            for event in stream:
                crashing.feed(event)
            crashing.finish()
        survived = crashing.events_consumed
        assert survived < len(stream)
        crashing.abort()

        recovered = ServeDaemon(fresh_table(), wal_config(tmp_path))
        refed = recovered.recover()
        # Every event the crashed daemon accepted is back, none was
        # checkpointed-and-lost, and at least the in-flight one had to
        # come from the WAL tail.
        assert recovered.events_consumed == survived
        assert refed >= 1
        assert recovered.metrics.wal_recovered_events == refed
        if site == SITE_SERVE_WAL_TORN:
            assert recovered.metrics.wal_truncated_frames == 1

        for event in stream[survived:]:
            recovered.feed(event)
        recovered.finish()
        assert recovered.snapshot(name="run") == expected

    def test_recover_after_graceful_finish_refeeds_nothing(self, tmp_path):
        stream = mixed_stream()
        daemon = ServeDaemon(fresh_table(), wal_config(tmp_path))
        daemon.attach_wal()
        for event in stream:
            daemon.feed(event)
        daemon.finish()
        expected = daemon.snapshot(name="run")
        assert recover_wal(wal_config(tmp_path).wal_dir, repair=False).sealed

        recovered = ServeDaemon(fresh_table(), wal_config(tmp_path))
        assert recovered.recover() == 0
        assert recovered.events_consumed == len(stream)
        assert recovered.snapshot(name="run") == expected
        # The recovered daemon keeps serving: extend the stream, finish,
        # and a third recovery still agrees with a clean end-to-end run.
        extension = mixed_stream()
        for event in extension:
            recovered.feed(event)
        recovered.finish()

        clean = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        for event in stream + extension:
            clean.feed(event)
        clean.finish()
        third = ServeDaemon(fresh_table(), wal_config(tmp_path))
        third.recover()
        third.finish()
        assert third.snapshot(name="full") == clean.snapshot(name="full")

    def test_crash_before_any_checkpoint_recovers_from_wal_alone(
        self, tmp_path
    ):
        """No checkpoint file ever written: recovery legally starts from
        scratch because the WAL still holds every accepted event."""
        stream = mixed_stream()
        config = wal_config(tmp_path, checkpoint_every=0)
        plan = FaultPlan.build(FaultSpec(site=SITE_SERVE_WAL_TORN, at=5))
        crashing = ServeDaemon(
            fresh_table(), config, injector=FaultInjector(plan)
        )
        crashing.attach_wal()
        with pytest.raises(InjectedFault):
            for event in stream:
                crashing.feed(event)
        survived = crashing.events_consumed
        crashing.abort()

        recovered = ServeDaemon(fresh_table(), wal_config(tmp_path))
        assert recovered.recover() == survived
        for event in stream[survived:]:
            recovered.feed(event)
        recovered.finish()

        reference = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        for event in stream:
            reference.feed(event)
        reference.finish()
        assert recovered.snapshot(name="run") == reference.snapshot(
            name="run"
        )

    def test_enospc_recovers_once_via_checkpoint_and_truncation(
        self, tmp_path
    ):
        stream = mixed_stream()
        plan = FaultPlan.build(FaultSpec(site=SITE_SERVE_WAL_ENOSPC, at=8))
        daemon = ServeDaemon(
            fresh_table(), wal_config(tmp_path), injector=FaultInjector(plan)
        )
        daemon.attach_wal()
        for event in stream:
            daemon.feed(event)
        daemon.finish()
        assert daemon.metrics.wal_enospc_recoveries == 1
        assert daemon.events_consumed == len(stream)

        reference = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        for event in stream:
            reference.feed(event)
        reference.finish()
        assert daemon.snapshot(name="run") == reference.snapshot(name="run")

    def test_persistent_enospc_propagates(self, tmp_path):
        plan = FaultPlan.build(
            FaultSpec(site=SITE_SERVE_WAL_ENOSPC, at=3, count=-1)
        )
        daemon = ServeDaemon(
            fresh_table(), wal_config(tmp_path), injector=FaultInjector(plan)
        )
        daemon.attach_wal()
        with pytest.raises(OSError) as excinfo:
            for event in mixed_stream():
                daemon.feed(event)
        assert excinfo.value.errno == 28
        assert daemon.metrics.wal_enospc_recoveries == 0
