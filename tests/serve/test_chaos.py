"""Chaos tests: kill the daemon mid-delta, resume, prove equivalence.

Reuses the :mod:`repro.faults` injection machinery: a planned
``serve.crash`` fault fires just before a delta batch mutates the
table, so the on-disk checkpoint always predates the interrupted
batch — exactly the state a real crash leaves behind.  Resuming and
replaying the same stream must land on clusters identical to an
uninterrupted run.
"""

import pytest

from repro.errors import InjectedFault
from repro.faults import SITE_SERVE_CRASH, FaultInjector, FaultPlan, FaultSpec
from repro.serve.daemon import ServeConfig, ServeDaemon

from .test_daemon import fresh_table, mixed_stream


def crash_plan(at):
    return FaultPlan.build(FaultSpec(site=SITE_SERVE_CRASH, at=at))


class TestCrashResume:
    @pytest.mark.parametrize("crash_at", [0, 1, 2])
    def test_resume_after_crash_matches_uninterrupted_run(
        self, tmp_path, crash_at
    ):
        stream = mixed_stream()
        path = str(tmp_path / "crash.ckpt")

        reference = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        for event in stream:
            reference.feed(event)
        reference.finish()
        expected = reference.snapshot(name="run")

        crashing = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=3
            ),
            injector=FaultInjector(crash_plan(crash_at)),
        )
        with pytest.raises(InjectedFault):
            for event in stream:
                crashing.feed(event)
            crashing.finish()
        survived = crashing.events_consumed
        assert survived < len(stream)

        resumed = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=3
            ),
        )
        resumed.resume_from(path)
        assert 0 < resumed.resume_skip <= survived
        for event in stream:
            resumed.feed(event)
        resumed.finish()
        assert resumed.snapshot(name="run") == expected

    def test_crash_loses_no_checkpointed_work(self, tmp_path):
        """The checkpoint the crash leaves behind is itself verified:
        loading it yields the store as of its stream position."""
        stream = mixed_stream()
        path = str(tmp_path / "verify.ckpt")
        crashing = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=4
            ),
            injector=FaultInjector(crash_plan(2)),
        )
        with pytest.raises(InjectedFault):
            for event in stream:
                crashing.feed(event)

        clean = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        resumed = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        resumed.resume_from(path)
        skip = resumed.resume_skip
        for event in stream[:skip]:
            clean.feed(event)
            resumed.feed(event)
        clean.finish()
        # finish() on the resumed daemon at the exact boundary is legal
        # (replay is complete) and must agree with the clean run.
        resumed.finish()
        assert resumed.snapshot(name="boundary") == clean.snapshot(
            name="boundary"
        )
