"""Process-level tests for ``repro-engine serve``: signals, exit
codes, socket robustness, and kill-9 recovery through the real CLI.

Each test drives a subprocess the way an operator (or init system)
would: real SIGTERM/SIGINT/SIGKILL, real unix sockets, real WAL
directories.  Durability is observed from outside by reading the WAL
with ``repair=False`` — never mutating files the daemon holds open.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.bgp.archive import save_snapshot
from repro.bgp.table import RoutingTable
from repro.faults import SITE_SERVE_DISCONNECT, FaultPlan, FaultSpec
from repro.net.prefix import Prefix
from repro.serve.wal import recover_wal

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

EVENT_LINES = [
    json.dumps({"type": "log", "client": f"10.1.0.{host}", "url": "/a"})
    for host in range(1, 7)
]


def make_dump(tmp_path):
    table = RoutingTable("AADS")
    for cidr in ("10.0.0.0/8", "10.1.0.0/16", "12.0.0.0/8"):
        table.add_prefix(Prefix.from_cidr(cidr))
    path = tmp_path / "aads.dump"
    save_snapshot(table, path)
    return str(path)


def serve_command(dump, *extra):
    return [
        sys.executable,
        "-m",
        "repro.serve.cli",
        "--table",
        dump,
        *extra,
    ]


def spawn(dump, *extra, stdin=subprocess.PIPE):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        serve_command(dump, *extra),
        stdin=stdin,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=REPO_ROOT,
    )


def wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def durable_events(wal_dir):
    try:
        return recover_wal(wal_dir, repair=False).next_index
    except Exception:
        return 0


def feed_lines(proc, lines):
    proc.stdin.write(("\n".join(lines) + "\n").encode("ascii"))
    proc.stdin.flush()


class TestSignals:
    @pytest.mark.parametrize(
        "signum,expected",
        [(signal.SIGTERM, 3), (signal.SIGINT, 4)],
        ids=["sigterm_exit_3", "sigint_exit_4"],
    )
    def test_graceful_drain_exit_code_and_sealed_wal(
        self, tmp_path, signum, expected
    ):
        dump = make_dump(tmp_path)
        wal_dir = str(tmp_path / "wal")
        proc = spawn(
            dump,
            "--stdin",
            "--checkpoint",
            str(tmp_path / "serve.ckpt"),
            "--wal",
            wal_dir,
            "--wal-sync-every",
            "1",
        )
        try:
            feed_lines(proc, EVENT_LINES)
            wait_for(
                lambda: durable_events(wal_dir) >= len(EVENT_LINES),
                message="events to reach the WAL",
            )
            proc.send_signal(signum)
            stdout, stderr = proc.communicate(timeout=20)
        finally:
            proc.kill()
        assert proc.returncode == expected, stderr.decode()
        name = signal.Signals(signum).name
        assert f"graceful drain after {name}".encode() in stderr
        assert b"WAL sealed" in stderr
        recovery = recover_wal(wal_dir, repair=False)
        assert recovery.sealed
        assert recovery.next_index == len(EVENT_LINES)
        assert b"checkpoint written" in stdout

    def test_resume_after_drain_needs_no_stream(self, tmp_path):
        dump = make_dump(tmp_path)
        wal_dir = str(tmp_path / "wal")
        checkpoint = str(tmp_path / "serve.ckpt")
        proc = spawn(
            dump,
            "--stdin",
            "--checkpoint",
            checkpoint,
            "--wal",
            wal_dir,
            "--wal-sync-every",
            "1",
        )
        try:
            feed_lines(proc, EVENT_LINES)
            wait_for(
                lambda: durable_events(wal_dir) >= len(EVENT_LINES),
                message="events to reach the WAL",
            )
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=20)
        finally:
            proc.kill()
        assert proc.returncode == 3

        resumed = spawn(
            dump,
            "--stdin",
            "--resume",
            "--checkpoint",
            checkpoint,
            "--wal",
            wal_dir,
            stdin=subprocess.DEVNULL,
        )
        stdout, stderr = resumed.communicate(timeout=20)
        assert resumed.returncode == 0, stderr.decode()
        assert b"recovered from checkpoint + WAL" in stdout
        assert f"stream complete: {len(EVENT_LINES)} events".encode() in stdout


class TestKillNine:
    def test_sigkill_then_recover_matches_clean_run(self, tmp_path):
        dump = make_dump(tmp_path)
        wal_dir = str(tmp_path / "wal")
        checkpoint = str(tmp_path / "serve.ckpt")
        proc = spawn(
            dump,
            "--stdin",
            "--checkpoint",
            checkpoint,
            "--wal",
            wal_dir,
            "--wal-sync-every",
            "1",
        )
        try:
            feed_lines(proc, EVENT_LINES)
            wait_for(
                lambda: durable_events(wal_dir) >= len(EVENT_LINES),
                message="events to reach the WAL",
            )
        finally:
            proc.kill()
        proc.communicate(timeout=20)
        assert proc.returncode == -signal.SIGKILL

        recovered = spawn(
            dump,
            "--stdin",
            "--resume",
            "--checkpoint",
            checkpoint,
            "--wal",
            wal_dir,
            stdin=subprocess.DEVNULL,
        )
        rec_out, rec_err = recovered.communicate(timeout=20)
        assert recovered.returncode == 0, rec_err.decode()
        assert b"recovered from checkpoint + WAL" in rec_out

        clean = spawn(dump, "--stdin")
        clean_out, _ = clean.communicate(
            input=("\n".join(EVENT_LINES) + "\n").encode("ascii"), timeout=20
        )
        assert clean.returncode == 0

        def report_after_complete(blob):
            text = blob.decode()
            lines = text[text.index("stream complete:"):].splitlines()
            # The recovered run checkpoints; the clean reference run
            # does not — the clusters themselves must still be equal.
            return [
                line
                for line in lines
                if not line.startswith("checkpoint written:")
            ]

        # Byte-identical clusters through the whole CLI surface: the
        # recovered run's report equals a clean uninterrupted run's.
        assert report_after_complete(rec_out) == report_after_complete(
            clean_out
        )


class TestSocket:
    def test_disconnect_mid_frame_is_counted_and_loop_survives(
        self, tmp_path
    ):
        dump = make_dump(tmp_path)
        sock_path = str(tmp_path / "serve.sock")
        plan_path = str(tmp_path / "plan.json")
        FaultPlan.build(
            FaultSpec(site=SITE_SERVE_DISCONNECT, at=0, count=1)
        ).save(plan_path)
        wal_dir = str(tmp_path / "wal")
        proc = spawn(
            dump,
            "--socket",
            sock_path,
            "--max-errors",
            "10",
            "--inject",
            plan_path,
            "--wal",
            wal_dir,
            "--wal-sync-every",
            "1",
        )
        try:
            wait_for(
                lambda: os.path.exists(sock_path),
                message="the socket to be bound",
            )
            # Connection 1: the injected fault tears the first chunk in
            # half — a short line followed by a long one guarantees the
            # midpoint lands inside the second line, so exactly one
            # event survives and one torn fragment is abandoned.
            short = EVENT_LINES[0]
            long = json.dumps(
                {"type": "log", "client": "10.1.0.9", "url": "/" + "b" * 200}
            )
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as first:
                first.connect(sock_path)
                first.sendall((short + "\n" + long + "\n").encode("ascii"))
            # Connection 2 proves the accept loop survived.
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as second:
                second.connect(sock_path)
                second.sendall(
                    ("\n".join(EVENT_LINES[2:4]) + "\n").encode("ascii")
                )
            wait_for(
                lambda: durable_events(wal_dir) >= 3,
                message="post-disconnect events to reach the WAL",
            )
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=20)
        finally:
            proc.kill()
        assert proc.returncode == 3, stderr.decode()
        # First chunk was torn in half: one complete line got through,
        # the fragment was abandoned; connection 2 delivered both lines.
        assert b"stream complete: 3 events" in stdout
        assert b"skipped 1 undecodable event line(s)" in stderr
