"""Unit tests for the serve event loop (batching, patching, resume)."""

import pytest

from repro.bgp.synth import RouteDelta
from repro.engine.packed import PackedLpm
from repro.engine.state import CheckpointTableMismatchError
from repro.errors import OverloadShedWarning
from repro.net.prefix import Prefix
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import LogEvent

P8 = Prefix.from_cidr("10.0.0.0/8")
P16 = Prefix.from_cidr("10.1.0.0/16")
Q8 = Prefix.from_cidr("12.0.0.0/8")

#: Clients inside the tiny table (10.1/16 covers A and B; 10.2.0.5
#: falls through to 10/8; 12.0.0.9 lands in 12/8; 99/8 is unrouted).
CLIENT_A = (10 << 24) | (1 << 16) | 5
CLIENT_B = (10 << 24) | (1 << 16) | 6
CLIENT_P = (10 << 24) | (2 << 16) | 5
CLIENT_Q = (12 << 24) | 9
CLIENT_X = (99 << 24) | 1


def fresh_table():
    return PackedLpm.from_items(
        sorted(
            {P8: "ten", P16: "ten-one", Q8: "twelve"}.items(),
            key=lambda kv: kv[0].sort_key(),
        )
    )


def log(client, url="/", size=100):
    return LogEvent(client=client, url=url, size=size)


def announce(prefix, origin_asn=64500):
    return RouteDelta(
        op=RouteDelta.OP_ANNOUNCE,
        prefix=prefix,
        origin_asn=origin_asn,
        source="AADS",
        reason="test",
    )


def withdraw(prefix):
    return RouteDelta(
        op=RouteDelta.OP_WITHDRAW, prefix=prefix, source="AADS", reason="test"
    )


def run(events, **config):
    daemon = ServeDaemon(fresh_table(), ServeConfig(**config))
    for event in events:
        daemon.feed(event)
    daemon.finish()
    return daemon


def clusters_by_prefix(daemon):
    snapshot = daemon.snapshot(name="test")
    return {cluster.identifier: cluster for cluster in snapshot.clusters}


class TestClustering:
    def test_log_events_accumulate_into_clusters(self):
        daemon = run([log(CLIENT_A, "/a"), log(CLIENT_B, "/b"), log(CLIENT_Q)])
        clusters = clusters_by_prefix(daemon)
        assert sorted(clusters[P16].clients) == [CLIENT_A, CLIENT_B]
        assert clusters[P16].requests == 2
        assert clusters[Q8].clients == [CLIENT_Q]

    def test_unrouted_client_is_unclustered(self):
        daemon = run([log(CLIENT_X)])
        assert daemon.snapshot().unclustered_clients == [CLIENT_X]

    def test_withdraw_moves_clients_to_covering_prefix(self):
        daemon = run([log(CLIENT_A), log(CLIENT_A), withdraw(P16)])
        clusters = clusters_by_prefix(daemon)
        assert P16 not in clusters  # emptied and swept
        assert clusters[P8].clients == [CLIENT_A]
        assert clusters[P8].requests == 2
        assert daemon.metrics.clients_reclustered == 1
        assert daemon.metrics.routes_withdrawn == 1

    def test_announce_moves_clients_to_more_specific(self):
        new = Prefix.from_cidr("10.2.0.0/16")
        daemon = run([log(CLIENT_P), announce(new)])
        clusters = clusters_by_prefix(daemon)
        assert clusters[new].clients == [CLIENT_P]
        assert P8 not in clusters
        assert daemon.metrics.routes_announced == 1

    def test_event_order_is_serialization_order(self):
        """A delta applies between the requests around it: requests
        after the withdraw resolve straight to the parent while the
        earlier client is migrated there."""
        daemon = run(
            [log(CLIENT_A), withdraw(P16), log(CLIENT_B)], batch_size=1000
        )
        clusters = clusters_by_prefix(daemon)
        assert sorted(clusters[P8].clients) == [CLIENT_A, CLIENT_B]
        assert clusters[P8].requests == 2

    def test_withdraw_all_routes_unclusters(self):
        daemon = run(
            [log(CLIENT_A), withdraw(P16), withdraw(P8), withdraw(Q8)]
        )
        snapshot = daemon.snapshot()
        assert snapshot.clusters == []
        assert snapshot.unclustered_clients == [CLIENT_A]

    def test_patch_metrics_accumulate(self):
        daemon = run(
            [log(CLIENT_A), withdraw(P16), log(CLIENT_B), announce(P16)]
        )
        assert daemon.metrics.patches_applied == 2
        assert daemon.metrics.routes_announced == 1
        assert daemon.metrics.routes_withdrawn == 1
        assert daemon.metrics.patch_rebuild_fallbacks == 0
        assert daemon.metrics.patch_seconds >= 0.0


def mixed_stream():
    """A deterministic 16-event stream mixing requests and deltas."""
    new = Prefix.from_cidr("10.2.0.0/16")
    return [
        log(CLIENT_A, "/1"),
        log(CLIENT_B, "/2"),
        log(CLIENT_P, "/3"),
        withdraw(P16),
        log(CLIENT_A, "/4"),
        log(CLIENT_Q, "/5"),
        announce(new),
        log(CLIENT_P, "/6"),
        log(CLIENT_X, "/7"),
        announce(P16),
        log(CLIENT_B, "/8"),
        log(CLIENT_A, "/9"),
        withdraw(new),
        log(CLIENT_P, "/10"),
        log(CLIENT_Q, "/11"),
        log(CLIENT_B, "/12"),
    ]


class TestResume:
    def test_resume_replays_to_identical_clusters(self, tmp_path):
        stream = mixed_stream()
        path = str(tmp_path / "serve.ckpt")

        first = ServeDaemon(
            fresh_table(), ServeConfig(batch_size=2, checkpoint_path=path)
        )
        for event in stream[:11]:
            first.feed(event)
        first.checkpoint_now()
        for event in stream[11:]:
            first.feed(event)
        first.finish()
        reference = first.snapshot(name="run")

        # The final checkpoint covers the whole stream; resume from the
        # mid-stream one instead to exercise the replay path.
        resumed = ServeDaemon(
            fresh_table(), ServeConfig(batch_size=2, checkpoint_path=path)
        )
        resumed.resume_from(path)
        assert resumed.resume_skip == len(stream)
        for event in stream:
            resumed.feed(event)
        resumed.finish()
        assert resumed.snapshot(name="run") == reference

    def test_resume_from_midstream_checkpoint(self, tmp_path):
        stream = mixed_stream()
        path = str(tmp_path / "mid.ckpt")

        reference = run(list(stream), batch_size=2).snapshot(name="run")

        first = ServeDaemon(
            fresh_table(), ServeConfig(batch_size=2, checkpoint_path=path)
        )
        for event in stream[:9]:
            first.feed(event)
        first.checkpoint_now()
        # The process "dies" here: nothing after the checkpoint lands.

        resumed = ServeDaemon(
            fresh_table(), ServeConfig(batch_size=2, checkpoint_path=None)
        )
        resumed.resume_from(path)
        assert resumed.resume_skip == 9
        assert resumed.replaying
        for event in stream:
            resumed.feed(event)
        assert not resumed.replaying
        resumed.finish()
        assert resumed.snapshot(name="run") == reference

    def test_resume_with_diverged_stream_raises(self, tmp_path):
        stream = mixed_stream()
        path = str(tmp_path / "diverge.ckpt")
        first = ServeDaemon(
            fresh_table(), ServeConfig(batch_size=2, checkpoint_path=path)
        )
        for event in stream[:9]:
            first.feed(event)
        first.checkpoint_now()

        resumed = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        resumed.resume_from(path)
        # Replay a different prefix history: the boundary check sees a
        # diverged routing generation and refuses to continue.
        diverged = [withdraw(Q8)] + stream[1:]
        with pytest.raises(CheckpointTableMismatchError):
            for event in diverged:
                resumed.feed(event)

    def test_stream_ending_mid_replay_raises(self, tmp_path):
        stream = mixed_stream()
        path = str(tmp_path / "short.ckpt")
        first = ServeDaemon(
            fresh_table(), ServeConfig(batch_size=2, checkpoint_path=path)
        )
        for event in stream:
            first.feed(event)
        first.finish()

        resumed = ServeDaemon(fresh_table(), ServeConfig(batch_size=2))
        resumed.resume_from(path)
        for event in stream[:5]:
            resumed.feed(event)
        with pytest.raises(CheckpointTableMismatchError):
            resumed.finish()


class TestCheckpointCountdown:
    def test_direct_checkpoint_resets_periodic_countdown(self, tmp_path):
        """A checkpoint_now() call restarts the --checkpoint-every
        countdown: the next periodic checkpoint lands a full interval
        later, not on the stale schedule."""
        path = str(tmp_path / "count.ckpt")
        daemon = ServeDaemon(
            fresh_table(),
            ServeConfig(
                batch_size=2, checkpoint_path=path, checkpoint_every=4
            ),
        )
        for event in [log(CLIENT_A), log(CLIENT_B), log(CLIENT_A)]:
            daemon.feed(event)
        daemon.checkpoint_now()
        written = daemon.metrics.checkpoints_written
        # One more event reaches the old schedule's 4th slot — with the
        # countdown reset it must NOT checkpoint early...
        daemon.feed(log(CLIENT_B))
        assert daemon.metrics.checkpoints_written == written
        # ...but a full interval after the manual checkpoint, it must.
        for event in [log(CLIENT_A), log(CLIENT_B), log(CLIENT_A)]:
            daemon.feed(event)
        assert daemon.metrics.checkpoints_written == written + 1


class TestOverload:
    def overloaded(self, watermark, **extra):
        return ServeDaemon(
            fresh_table(),
            ServeConfig(batch_size=4, shed_watermark=watermark, **extra),
        )

    def test_sheds_only_log_events_and_counts_every_drop(self):
        """The issue's acceptance scenario: feed at batch_size * 100
        without draining; only log events are shed, never deltas, and
        shed_events accounts for every drop."""
        daemon = self.overloaded(watermark=16)
        total = daemon.config.batch_size * 100
        deltas = accepted = dropped = 0
        with pytest.warns(OverloadShedWarning):
            for index in range(total):
                if index % 10 == 9:
                    event = announce(P16, origin_asn=64500 + index)
                    assert daemon.submit(event), "a delta was shed"
                    deltas += 1
                elif daemon.submit(log(CLIENT_A, url=f"/u{index}")):
                    accepted += 1
                else:
                    dropped += 1
        assert dropped > 0
        assert daemon.metrics.shed_events == dropped
        assert accepted + dropped + deltas == total
        # Everything accepted — including every delta — drains intact.
        daemon.finish()
        assert daemon.events_consumed == total - dropped
        assert daemon.deltas_received == deltas
        assert daemon.metrics.shed_events == dropped

    def test_hysteresis_reopens_after_drain(self):
        daemon = self.overloaded(watermark=8)
        with pytest.warns(OverloadShedWarning):
            for index in range(9):
                daemon.submit(log(CLIENT_A))
        assert daemon.shedding
        assert not daemon.submit(log(CLIENT_A))
        pumped = daemon.pump()
        assert pumped == 8
        assert daemon.submit(log(CLIENT_B))
        assert not daemon.shedding
        assert daemon.metrics.shed_events == 2

    def test_warns_once_per_overload_episode(self):
        daemon = self.overloaded(watermark=4)
        with pytest.warns(OverloadShedWarning) as caught:
            for index in range(8):
                daemon.submit(log(CLIENT_A))
        assert len(caught) == 1

    def test_zero_watermark_feeds_directly(self):
        daemon = self.overloaded(watermark=0)
        for index in range(50):
            assert daemon.submit(log(CLIENT_A))
        assert daemon.ingress_depth == 0
        assert daemon.metrics.shed_events == 0

    def test_health_reports_ingress_and_shed_state(self):
        daemon = self.overloaded(watermark=8)
        for index in range(3):
            daemon.submit(log(CLIENT_A))
        health = daemon.health()
        assert health["ingress"] == 3
        assert health["shedding"] is False
        assert health["shed_events"] == 0
        for key in ("events", "deltas", "clusters", "epoch", "wal_appends"):
            assert key in health
