"""Unit tests for the serve ndjson wire format."""

import json

import pytest

from repro.bgp.synth import RouteDelta
from repro.errors import (
    ReproError,
    ServeDisconnectError,
    ServeLineTooLongError,
    ServeProtocolError,
)
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix
from repro.serve.protocol import LineSplitter, LogEvent, parse_event


class TestParseEvent:
    def test_blank_line_is_none(self):
        assert parse_event("") is None
        assert parse_event("   \n") is None

    def test_log_event_with_dotted_quad(self):
        event = parse_event(
            '{"type": "log", "client": "12.65.147.9", "url": "/a", "size": 512}'
        )
        assert isinstance(event, LogEvent)
        assert event.client == parse_ipv4("12.65.147.9")
        assert event.url == "/a"
        assert event.size == 512

    def test_log_event_with_integer_client(self):
        event = parse_event('{"type": "log", "client": 167772161}')
        assert isinstance(event, LogEvent)
        assert event.client == 167772161
        assert event.size == 0

    def test_route_events_decode_to_route_delta(self):
        for op in ("announce", "withdraw"):
            event = parse_event(
                json.dumps(
                    {
                        "type": op,
                        "prefix": "12.65.128.0/19",
                        "origin_asn": 7018,
                        "source": "AADS",
                        "reason": "churn",
                    }
                )
            )
            assert isinstance(event, RouteDelta)
            assert event.op == op
            assert event.prefix == Prefix.from_cidr("12.65.128.0/19")
            assert event.origin_asn == 7018

    def test_log_event_round_trip(self):
        event = LogEvent(client=parse_ipv4("10.1.2.3"), url="/x", size=9)
        assert parse_event(event.to_json()) == event

    def test_route_delta_round_trip(self):
        delta = RouteDelta(
            op=RouteDelta.OP_WITHDRAW,
            prefix=Prefix.from_cidr("10.0.0.0/8"),
            source="AADS",
        )
        assert parse_event(delta.to_json()) == delta

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            "[1, 2, 3]",
            '{"type": "teleport"}',
            '{"url": "/missing-type"}',
            '{"type": "log"}',
            '{"type": "log", "client": "999.1.2.3"}',
            '{"type": "announce", "prefix": "not-a-cidr"}',
            '{"type": "withdraw"}',
        ],
    )
    def test_malformed_lines_raise_protocol_error(self, line):
        with pytest.raises(ServeProtocolError):
            parse_event(line)

    def test_protocol_error_is_repro_and_value_error(self):
        """Taxonomy contract: callers may catch either family."""
        assert issubclass(ServeProtocolError, ReproError)
        assert issubclass(ServeProtocolError, ValueError)


class TestLineSplitter:
    def drain(self, splitter):
        lines = []
        while True:
            line = splitter.next_line()
            if line is None:
                return lines
            lines.append(line)

    def test_reassembles_lines_across_arbitrary_chunks(self):
        splitter = LineSplitter()
        payload = b"alpha\nbravo\ncharlie\n"
        collected = []
        for cut in range(0, len(payload), 3):
            splitter.push(payload[cut : cut + 3])
            collected.extend(self.drain(splitter))
        assert collected == ["alpha", "bravo", "charlie"]
        assert splitter.pending == 0

    def test_partial_frame_stays_pending(self):
        splitter = LineSplitter()
        splitter.push(b'{"type": "log"')
        assert splitter.next_line() is None
        assert splitter.pending == 14
        splitter.push(b"}\n")
        assert splitter.next_line() == '{"type": "log"}'

    def test_flush_returns_unterminated_tail_at_clean_eof(self):
        splitter = LineSplitter()
        splitter.push(b"first\nlast-no-newline")
        assert splitter.next_line() == "first"
        assert splitter.flush() == "last-no-newline"
        assert splitter.flush() is None

    def test_oversized_terminated_line_raises_once_then_continues(self):
        splitter = LineSplitter(max_line_bytes=8)
        splitter.push(b"x" * 20 + b"\nok\n")
        with pytest.raises(ServeLineTooLongError):
            splitter.next_line()
        assert splitter.next_line() == "ok"

    def test_oversized_unterminated_line_raises_once_then_discards(self):
        splitter = LineSplitter(max_line_bytes=8)
        splitter.push(b"y" * 20)
        with pytest.raises(ServeLineTooLongError):
            splitter.next_line()
        # More of the same monster line: silently discarded, no second
        # error, bounded memory.
        splitter.push(b"y" * 50)
        assert splitter.next_line() is None
        assert splitter.pending == 0
        splitter.push(b"y\nafter\n")
        assert splitter.next_line() == "after"

    def test_abandon_with_partial_frame_raises_disconnect(self):
        splitter = LineSplitter()
        splitter.push(b"complete\ntorn-fragme")
        assert splitter.next_line() == "complete"
        with pytest.raises(ServeDisconnectError):
            splitter.abandon()
        # The splitter is clean for the next connection.
        splitter.push(b"fresh\n")
        assert splitter.next_line() == "fresh"

    def test_abandon_with_empty_buffer_is_silent(self):
        splitter = LineSplitter()
        splitter.push(b"done\n")
        assert splitter.next_line() == "done"
        splitter.abandon()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            LineSplitter(max_line_bytes=0)
