"""Unit tests for the serve ndjson wire format."""

import json

import pytest

from repro.bgp.synth import RouteDelta
from repro.errors import ReproError, ServeProtocolError
from repro.net.ipv4 import parse_ipv4
from repro.net.prefix import Prefix
from repro.serve.protocol import LogEvent, parse_event


class TestParseEvent:
    def test_blank_line_is_none(self):
        assert parse_event("") is None
        assert parse_event("   \n") is None

    def test_log_event_with_dotted_quad(self):
        event = parse_event(
            '{"type": "log", "client": "12.65.147.9", "url": "/a", "size": 512}'
        )
        assert isinstance(event, LogEvent)
        assert event.client == parse_ipv4("12.65.147.9")
        assert event.url == "/a"
        assert event.size == 512

    def test_log_event_with_integer_client(self):
        event = parse_event('{"type": "log", "client": 167772161}')
        assert isinstance(event, LogEvent)
        assert event.client == 167772161
        assert event.size == 0

    def test_route_events_decode_to_route_delta(self):
        for op in ("announce", "withdraw"):
            event = parse_event(
                json.dumps(
                    {
                        "type": op,
                        "prefix": "12.65.128.0/19",
                        "origin_asn": 7018,
                        "source": "AADS",
                        "reason": "churn",
                    }
                )
            )
            assert isinstance(event, RouteDelta)
            assert event.op == op
            assert event.prefix == Prefix.from_cidr("12.65.128.0/19")
            assert event.origin_asn == 7018

    def test_log_event_round_trip(self):
        event = LogEvent(client=parse_ipv4("10.1.2.3"), url="/x", size=9)
        assert parse_event(event.to_json()) == event

    def test_route_delta_round_trip(self):
        delta = RouteDelta(
            op=RouteDelta.OP_WITHDRAW,
            prefix=Prefix.from_cidr("10.0.0.0/8"),
            source="AADS",
        )
        assert parse_event(delta.to_json()) == delta

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            "[1, 2, 3]",
            '{"type": "teleport"}',
            '{"url": "/missing-type"}',
            '{"type": "log"}',
            '{"type": "log", "client": "999.1.2.3"}',
            '{"type": "announce", "prefix": "not-a-cidr"}',
            '{"type": "withdraw"}',
        ],
    )
    def test_malformed_lines_raise_protocol_error(self, line):
        with pytest.raises(ServeProtocolError):
            parse_event(line)

    def test_protocol_error_is_repro_and_value_error(self):
        """Taxonomy contract: callers may catch either family."""
        assert issubclass(ServeProtocolError, ReproError)
        assert issubclass(ServeProtocolError, ValueError)
