"""Unit and property tests for the segmented write-ahead log.

The torn-tail property here is the acceptance gate from the issue:
truncate a frame stream at *any* byte offset and decoding returns
exactly the complete frames before the cut — never a partial frame,
never a lost complete one.
"""

import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InjectedFault, WalCorruptError, WalSealedError
from repro.faults import (
    SITE_SERVE_WAL_ENOSPC,
    SITE_SERVE_WAL_TORN,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.serve.wal import (
    FRAME_EVENT,
    FRAME_SEAL,
    WAL_MAGIC,
    WAL_VERSION,
    WalWriter,
    decode_frames,
    encode_frame,
    list_segments,
    recover_wal,
)

PAYLOADS = [b'{"type":"log","client":1}', b"x", b"", b"a" * 300, b'{"k":2}']


def segment_blob(payloads, sealed=False):
    blob = b"".join(encode_frame(payload) for payload in payloads)
    if sealed:
        blob += encode_frame(b"", kind=FRAME_SEAL)
    return blob


class TestFrameCodec:
    def test_round_trip(self):
        frames, consumed, clean = decode_frames(segment_blob(PAYLOADS))
        assert [payload for _, payload in frames] == PAYLOADS
        assert all(kind == FRAME_EVENT for kind, _ in frames)
        assert clean and consumed == len(segment_blob(PAYLOADS))

    def test_seal_frame_decodes(self):
        frames, _, clean = decode_frames(segment_blob([b"one"], sealed=True))
        assert frames[-1][0] == FRAME_SEAL
        assert clean

    def test_crc_flip_stops_decoding(self):
        blob = bytearray(segment_blob(PAYLOADS))
        first = len(encode_frame(PAYLOADS[0]))
        blob[first + 9] ^= 0xFF  # the payload byte of the second frame
        frames, consumed, clean = decode_frames(bytes(blob))
        assert [payload for _, payload in frames] == PAYLOADS[:1]
        assert consumed == first
        assert not clean

    def test_unknown_kind_stops_decoding(self):
        blob = segment_blob([b"ok"]) + struct.pack("<BII", 0x7A, 0, 0)
        frames, consumed, clean = decode_frames(blob)
        assert [payload for _, payload in frames] == [b"ok"]
        assert not clean

    def test_every_truncation_point_yields_exact_prefix(self):
        """Exhaustive form of the acceptance property on a fixed
        multi-frame segment: every byte offset."""
        blob = segment_blob(PAYLOADS)
        boundaries = []
        offset = 0
        for payload in PAYLOADS:
            offset += len(encode_frame(payload))
            boundaries.append(offset)
        for cut in range(len(blob) + 1):
            frames, consumed, clean = decode_frames(blob[:cut])
            complete = sum(1 for boundary in boundaries if boundary <= cut)
            assert [p for _, p in frames] == PAYLOADS[:complete], cut
            assert clean == (cut == consumed)

    @given(
        payloads=st.lists(st.binary(max_size=64), min_size=1, max_size=8),
        cut_seed=st.integers(min_value=0),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncation_property(self, payloads, cut_seed):
        blob = segment_blob(payloads)
        cut = cut_seed % (len(blob) + 1)
        frames, consumed, clean = decode_frames(blob[:cut])
        decoded = [payload for _, payload in frames]
        assert decoded == payloads[: len(decoded)]  # a strict prefix
        boundary = len(segment_blob(payloads[: len(decoded)]))
        assert consumed == boundary
        # Clean exactly when the cut landed on a frame boundary.
        assert clean == (cut == boundary)

    @given(payloads=st.lists(st.binary(max_size=128), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_round_trip_property(self, payloads):
        frames, _, clean = decode_frames(segment_blob(payloads))
        assert clean
        assert [payload for _, payload in frames] == payloads


class TestWriterAndRecovery:
    def test_append_recover_round_trip(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=2, segment_bytes=4 << 20)
        for payload in PAYLOADS:
            writer.append(payload)
        writer.close()
        recovery = recover_wal(directory)
        assert [payload for _, payload in recovery.events] == PAYLOADS
        assert [index for index, _ in recovery.events] == list(
            range(len(PAYLOADS))
        )
        assert recovery.next_index == len(PAYLOADS)
        assert recovery.truncated_frames == 0
        assert not recovery.sealed

    def test_rotation_and_checkpoint_truncation(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=1, segment_bytes=128)
        rotations = 0
        for index in range(20):
            receipt = writer.append(b"p" * 40)
            rotations += int(receipt.rotated)
        assert rotations >= 3
        assert len(list_segments(directory)) >= 4
        removed = writer.truncate_covered(10)
        assert removed >= 1
        writer.close()
        # Recovery after truncation still yields a contiguous tail.
        recovery = recover_wal(directory)
        assert recovery.next_index == 20
        indices = [index for index, _ in recovery.events]
        assert indices == list(range(indices[0], 20))
        assert indices[0] <= 10

    def test_seal_then_append_raises(self, tmp_path):
        writer = WalWriter(str(tmp_path / "wal"))
        writer.append(b"one")
        writer.seal()
        assert writer.sealed
        with pytest.raises(WalSealedError):
            writer.append(b"two")
        with pytest.raises(WalSealedError):
            writer.seal()

    def test_sealed_log_recovers_sealed_and_resumes(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=1)
        writer.append(b"one")
        writer.seal()
        recovery = recover_wal(directory)
        assert recovery.sealed
        assert recovery.next_index == 1
        resumed = WalWriter.resume(directory, recovery, sync_every=1)
        resumed.append(b"two")
        resumed.close()
        # A seal mid-log (earlier graceful shutdown) is legal history;
        # only the newest segment decides the log's sealed status.
        second = recover_wal(directory)
        assert [payload for _, payload in second.events] == [b"one", b"two"]
        assert not second.sealed

    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=1)
        for payload in PAYLOADS:
            writer.append(payload)
        writer.close()
        (_, path), = list_segments(directory)
        with open(path, "ab") as handle:
            handle.write(encode_frame(b"doomed")[:7])
        recovery = recover_wal(directory)
        assert [payload for _, payload in recovery.events] == PAYLOADS
        assert recovery.truncated_frames == 1
        # The repair was physical: a second pass reads a clean log.
        assert recover_wal(directory).truncated_frames == 0

    def test_repair_false_leaves_bytes(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=1)
        writer.append(b"kept")
        writer.close()
        (_, path), = list_segments(directory)
        with open(path, "ab") as handle:
            handle.write(b"\x45garbage")
        size = os.path.getsize(path)
        recovery = recover_wal(directory, repair=False)
        assert recovery.truncated_frames == 1
        assert os.path.getsize(path) == size

    def test_mid_log_damage_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=1, segment_bytes=96)
        for index in range(8):
            writer.append(b"x" * 40)
        writer.close()
        segments = list_segments(directory)
        assert len(segments) >= 3
        _, first_path = segments[0]
        with open(first_path, "r+b") as handle:
            handle.seek(-3, os.SEEK_END)
            handle.truncate()
        with pytest.raises(WalCorruptError):
            recover_wal(directory)

    def test_segment_gap_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        writer = WalWriter(directory, sync_every=1, segment_bytes=96)
        for index in range(8):
            writer.append(b"x" * 40)
        writer.close()
        segments = list_segments(directory)
        os.unlink(segments[1][1])
        with pytest.raises(WalCorruptError):
            recover_wal(directory)

    def test_foreign_file_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        os.makedirs(directory)
        with open(os.path.join(directory, "wal-00000000.seg"), "wb") as handle:
            handle.write(b"NOTAWAL!" + b"\x00" * 32)
        with pytest.raises(WalCorruptError):
            recover_wal(directory)

    def test_version_skew_raises(self, tmp_path):
        directory = str(tmp_path / "wal")
        os.makedirs(directory)
        header = struct.pack("<8sBQ", WAL_MAGIC, WAL_VERSION + 1, 0)
        with open(os.path.join(directory, "wal-00000000.seg"), "wb") as handle:
            handle.write(header + encode_frame(b"x"))
        with pytest.raises(WalCorruptError):
            recover_wal(directory)

    def test_event_frames_after_seal_in_segment_raise(self, tmp_path):
        directory = str(tmp_path / "wal")
        os.makedirs(directory)
        header = struct.pack("<8sBQ", WAL_MAGIC, WAL_VERSION, 0)
        blob = (
            header
            + encode_frame(b"ok")
            + encode_frame(b"", kind=FRAME_SEAL)
            + encode_frame(b"smuggled")
        )
        with open(os.path.join(directory, "wal-00000000.seg"), "wb") as handle:
            handle.write(blob)
        with pytest.raises(WalCorruptError):
            recover_wal(directory)

    def test_empty_or_missing_directory_is_a_fresh_log(self, tmp_path):
        recovery = recover_wal(str(tmp_path / "never-created"))
        assert recovery.events == []
        assert recovery.next_index == 0
        assert not recovery.sealed


class TestInjectedFaults:
    def test_enospc_site_raises_oserror(self, tmp_path):
        plan = FaultPlan.build(FaultSpec(site=SITE_SERVE_WAL_ENOSPC, at=1))
        writer = WalWriter(
            str(tmp_path / "wal"), sync_every=1, injector=FaultInjector(plan)
        )
        writer.append(b"fine")
        with pytest.raises(OSError) as excinfo:
            writer.append(b"full")
        assert excinfo.value.errno == 28
        # The failed append reached the platter not at all.
        writer.close()
        recovery = recover_wal(str(tmp_path / "wal"))
        assert [payload for _, payload in recovery.events] == [b"fine"]

    def test_torn_site_leaves_half_a_frame(self, tmp_path):
        directory = str(tmp_path / "wal")
        plan = FaultPlan.build(FaultSpec(site=SITE_SERVE_WAL_TORN, at=2))
        writer = WalWriter(directory, sync_every=1, injector=FaultInjector(plan))
        writer.append(b"one")
        writer.append(b"two")
        with pytest.raises(InjectedFault):
            writer.append(b"torn-away")
        recovery = recover_wal(directory)
        assert [payload for _, payload in recovery.events] == [b"one", b"two"]
        assert recovery.truncated_frames == 1
        assert recovery.next_index == 2


class TestSegmentHandleCleanup:
    """Regression: a failed header write must close the descriptor.

    ``_SegmentHandle.__init__`` opens the file before writing the
    header; if the write raises (ENOSPC, a signal) nobody holds a
    reference to the half-constructed handle, so the constructor is
    the only place the descriptor can ever be closed.
    """

    def test_failed_header_write_closes_the_descriptor(
        self, tmp_path, monkeypatch
    ):
        import builtins

        from repro.serve import wal as wal_mod

        real_open = builtins.open
        opened = []

        def recording_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            opened.append(handle)
            return handle

        class ExplodingHeader:
            def pack(self, *args):
                raise OSError(28, "No space left on device")

        monkeypatch.setattr(builtins, "open", recording_open)
        monkeypatch.setattr(wal_mod, "_SEGMENT_HEADER", ExplodingHeader())
        with pytest.raises(OSError):
            wal_mod._SegmentHandle(str(tmp_path / "seg.wal"), 0, 0)
        assert len(opened) == 1
        assert opened[0].closed
