"""Unit tests for the simulated reverse DNS."""

import random

import pytest

from repro.simnet.dns import (
    SimulatedDns,
    name_components,
    nontrivial_suffix,
    shared_suffix_length,
)
from repro.simnet.entities import EntityKind


class TestSuffixRules:
    def test_components(self):
        assert name_components("foo.dummy.com") == ("foo", "dummy", "com")
        assert name_components("macbeth.cs.wits.ac.za") == (
            "macbeth", "cs", "wits", "ac", "za"
        )

    def test_paper_rule_n3_for_long_names(self):
        # m >= 4 -> n = 3
        assert shared_suffix_length("macbeth.cs.wits.ac.za") == 3
        assert shared_suffix_length("a.b.c.d") == 3

    def test_paper_rule_n2_for_short_names(self):
        # m < 4 -> n = 2
        assert shared_suffix_length("foo.dummy.com") == 2
        assert shared_suffix_length("dummy.com") == 2

    def test_nontrivial_suffix(self):
        assert nontrivial_suffix("macbeth.cs.wits.ac.za") == ("wits", "ac", "za")
        assert nontrivial_suffix("mailsrv1.wakefern.com") == ("wakefern", "com")


class TestResolution:
    def test_deterministic(self, topology):
        a = SimulatedDns(topology)
        b = SimulatedDns(topology)
        rng = random.Random(1)
        leaf = rng.choice(topology.leaf_networks)
        for host in topology.hosts_in_leaf(leaf, 5, rng):
            assert a.resolve(host) == b.resolve(host)

    def test_resolve_consistent_with_is_resolvable(self, topology, dns):
        rng = random.Random(2)
        for leaf in rng.sample(topology.leaf_networks, 40):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            assert (dns.resolve(host) is not None) == dns.is_resolvable(host)

    def test_names_end_with_entity_domain(self, topology, dns):
        rng = random.Random(3)
        found = 0
        for leaf in rng.sample(topology.leaf_networks, 80):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            name = dns.resolve(host)
            if name is None:
                continue
            entity = topology.entities[leaf.entity_id]
            assert name.endswith("." + entity.domain)
            found += 1
        assert found > 0

    def test_pool_hosts_get_dialup_style_names(self, topology, dns):
        from repro.net.ipv4 import format_ipv4

        rng = random.Random(4)
        pools = [
            leaf for leaf in topology.leaf_networks
            if topology.entities[leaf.entity_id].kind == EntityKind.ISP_POOL
        ]
        checked = 0
        for leaf in pools[:50]:
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            name = dns.resolve(host)
            if name is None:
                continue
            expected = "client-" + format_ipv4(host).replace(".", "-")
            assert name.startswith(expected)
            checked += 1
        assert checked > 0

    def test_unresolvable_entity_hides_all_hosts(self, topology, dns):
        rng = random.Random(5)
        hidden = [
            leaf for leaf in topology.leaf_networks
            if not topology.entities[leaf.entity_id].resolvable
        ]
        assert hidden, "expected some unresolvable entities"
        leaf = hidden[0]
        for host in topology.hosts_in_leaf(leaf, 5, rng):
            assert dns.resolve(host) is None

    def test_unallocated_address_unresolvable(self, topology, dns):
        rng = random.Random(6)
        assert dns.resolve(topology.unallocated_address(rng)) is None

    def test_overall_resolvability_near_half(self, topology, dns):
        """The paper's ~50% nslookup resolvability (§3.3)."""
        rng = random.Random(7)
        resolved = total = 0
        for leaf in rng.sample(topology.leaf_networks, 250):
            for host in topology.hosts_in_leaf(leaf, 2, rng):
                total += 1
                if dns.is_resolvable(host):
                    resolved += 1
        assert 0.3 < resolved / total < 0.8

    def test_rejects_out_of_range_address(self, dns):
        with pytest.raises(ValueError):
            dns.resolve(-1)

    def test_lookup_counter_increments(self, topology):
        dns = SimulatedDns(topology)
        rng = random.Random(8)
        leaf = rng.choice(topology.leaf_networks)
        host = topology.hosts_in_leaf(leaf, 1, rng)[0]
        dns.resolve(host)
        dns.resolve(host)
        assert dns.lookups_performed == 2
