"""Unit tests for the geography/latency model."""

import pytest

from repro.simnet.geo import GeoModel, Location, haversine_km


class TestLocation:
    def test_validates_ranges(self):
        with pytest.raises(ValueError):
            Location(91.0, 0.0)
        with pytest.raises(ValueError):
            Location(0.0, 181.0)

    def test_valid_extremes(self):
        Location(90.0, 180.0)
        Location(-90.0, -180.0)


class TestHaversine:
    def test_zero_distance(self):
        point = Location(40.0, -75.0)
        assert haversine_km(point, point) == 0.0

    def test_symmetric(self):
        a, b = Location(40.0, -75.0), Location(51.5, -0.1)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_known_distance_new_york_to_london(self):
        new_york = Location(40.71, -74.01)
        london = Location(51.51, -0.13)
        assert haversine_km(new_york, london) == pytest.approx(5570, rel=0.02)

    def test_antipodal_bounded_by_half_circumference(self):
        a, b = Location(0.0, 0.0), Location(0.0, 180.0)
        assert haversine_km(a, b) == pytest.approx(20015, rel=0.01)


class TestGeoModel:
    def test_every_as_located(self, topology):
        geo = GeoModel(topology)
        for asn in topology.ases:
            location = geo.location_of_as(asn)
            assert -90 <= location.latitude <= 90

    def test_deterministic(self, topology):
        a, b = GeoModel(topology), GeoModel(topology)
        asn = next(iter(topology.ases))
        assert a.location_of_as(asn) == b.location_of_as(asn)

    def test_as_near_its_country(self, topology):
        from repro.simnet.geo import _COUNTRY_CENTROIDS

        geo = GeoModel(topology)
        for asn, autonomous_system in topology.ases.items():
            centroid = _COUNTRY_CENTROIDS[autonomous_system.country]
            location = geo.location_of_as(asn)
            assert abs(location.latitude - centroid[0]) <= 5.0
            assert abs(location.longitude - centroid[1]) <= 9.0

    def test_address_location_near_its_as(self, topology):
        import random

        geo = GeoModel(topology)
        rng = random.Random(1)
        leaf = rng.choice(topology.leaf_networks)
        host = topology.hosts_in_leaf(leaf, 1, rng)[0]
        address_location = geo.location_of_address(host)
        as_location = geo.location_of_as(leaf.asn)
        # Allocation-level position: regional jitter around the AS.
        assert abs(address_location.latitude - as_location.latitude) <= 7.5
        assert abs(address_location.longitude - as_location.longitude) <= 14.5
        assert geo.location_of_address(topology.unallocated_address(rng)) is None

    def test_same_allocation_same_location(self, topology):
        import random

        geo = GeoModel(topology)
        rng = random.Random(2)
        leaf = max(topology.leaf_networks, key=lambda l: l.capacity)
        host_a, host_b = topology.hosts_in_leaf(leaf, 2, rng)
        assert geo.location_of_address(host_a) == geo.location_of_address(host_b)


class TestLatencyModel:
    def test_same_as_is_cheapest(self, topology):
        geo = GeoModel(topology)
        asns = list(topology.ases)
        local = geo.latency_ms(asns[0], asns[0])
        for other in asns[1:6]:
            assert geo.latency_ms(asns[0], other) >= local

    def test_latency_grows_with_distance(self, topology):
        geo = GeoModel(topology)
        asns = sorted(topology.ases)
        anchor = asns[0]
        pairs = sorted(
            ((geo.distance_km(anchor, other), geo.latency_ms(anchor, other))
             for other in asns[1:]),
        )
        distances = [d for d, _ in pairs]
        latencies = [l for _, l in pairs]
        assert latencies == sorted(latencies)
        assert distances == sorted(distances)

    def test_hops_add_latency(self, topology):
        geo = GeoModel(topology)
        asn = next(iter(topology.ases))
        assert geo.latency_ms(asn, asn, hops=10) > geo.latency_ms(asn, asn, hops=2)

    def test_rejects_negative_hops(self, topology):
        geo = GeoModel(topology)
        asn = next(iter(topology.ases))
        with pytest.raises(ValueError):
            geo.latency_ms(asn, asn, hops=-1)

    def test_client_latency(self, topology):
        import random

        geo = GeoModel(topology)
        rng = random.Random(2)
        leaf = rng.choice(topology.leaf_networks)
        host = topology.hosts_in_leaf(leaf, 1, rng)[0]
        assert geo.client_latency_ms(host, leaf.asn) is not None
        assert geo.client_latency_ms(
            topology.unallocated_address(rng), leaf.asn
        ) is None
