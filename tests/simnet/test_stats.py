"""Unit tests for topology statistics."""

from repro.simnet.entities import AsKind, EntityKind
from repro.simnet.stats import summarize_topology


class TestSummarizeTopology:
    def test_counts_match_topology(self, topology):
        stats = summarize_topology(topology)
        assert stats.num_ases == len(topology.ases)
        assert stats.num_allocations == len(topology.allocations)
        assert stats.num_leaf_networks == len(topology.leaf_networks)
        assert stats.num_entities == len(topology.entities)

    def test_kind_breakdowns_complete(self, topology):
        stats = summarize_topology(topology)
        assert sum(stats.ases_by_kind.values()) == stats.num_ases
        assert sum(stats.entities_by_kind.values()) == stats.num_entities
        assert AsKind.REGIONAL_ISP in stats.ases_by_kind
        assert EntityKind.ISP_POOL in stats.entities_by_kind

    def test_histograms_cover_all_items(self, topology):
        stats = summarize_topology(topology)
        assert sum(stats.leaf_length_histogram.values()) == (
            stats.num_leaf_networks
        )
        assert sum(stats.allocation_length_histogram.values()) == (
            stats.num_allocations
        )

    def test_fractions_in_range(self, topology):
        stats = summarize_topology(topology)
        assert 0.0 < stats.announced_leaf_fraction < 1.0
        assert 0.0 < stats.non_us_as_fraction < 1.0

    def test_pool_entities_own_many_leafs(self, topology):
        """ISP pool entities span many chunks; the max leafs-per-entity
        must reflect that concentration."""
        stats = summarize_topology(topology)
        assert stats.leafs_per_entity_max > 5

    def test_describe(self, topology):
        assert "ASes" in summarize_topology(topology).describe()
