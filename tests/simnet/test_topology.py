"""Unit/integration tests for the ground-truth topology."""

import random

import pytest

from repro.simnet.entities import AsKind, EntityKind
from repro.simnet.topology import generate_topology


class TestGeneration:
    def test_deterministic_in_seed(self, small_config):
        a = generate_topology(small_config)
        b = generate_topology(small_config)
        assert [l.prefix for l in a.leaf_networks] == [
            l.prefix for l in b.leaf_networks
        ]
        assert {e.domain for e in a.entities.values()} == {
            e.domain for e in b.entities.values()
        }

    def test_different_seed_different_world(self, small_config, topology):
        import dataclasses

        other = generate_topology(
            dataclasses.replace(small_config, seed=small_config.seed + 1)
        )
        assert {e.domain for e in other.entities.values()} != {
            e.domain for e in topology.entities.values()
        }

    def test_counts_match_config(self, topology, small_config):
        kinds = {}
        for autonomous_system in topology.ases.values():
            kinds[autonomous_system.kind] = kinds.get(autonomous_system.kind, 0) + 1
        assert kinds[AsKind.BACKBONE] == small_config.num_backbone
        assert kinds[AsKind.REGIONAL_ISP] == small_config.num_regional_isps
        assert kinds[AsKind.NATIONAL_GATEWAY] == small_config.num_gateways
        assert kinds[AsKind.LEGACY_B] == small_config.num_legacy_b


class TestStructuralInvariants:
    def test_leaf_networks_are_disjoint(self, topology):
        ordered = sorted(topology.leaf_networks, key=lambda l: l.prefix.sort_key())
        for left, right in zip(ordered, ordered[1:]):
            assert not left.prefix.overlaps(right.prefix), (
                f"{left.prefix} overlaps {right.prefix}"
            )

    def test_every_leaf_inside_its_allocation(self, topology):
        allocations = {a.prefix: a for a in topology.allocations}
        for leaf in topology.leaf_networks:
            allocation = allocations[leaf.allocation_prefix]
            assert allocation.prefix.contains_prefix(leaf.prefix)
            assert allocation.asn == leaf.asn

    def test_leafs_partition_their_allocation(self, topology):
        by_allocation = {}
        for leaf in topology.leaf_networks:
            by_allocation.setdefault(leaf.allocation_prefix, []).append(leaf)
        for allocation_prefix, leafs in by_allocation.items():
            covered = sum(l.prefix.num_addresses for l in leafs)
            assert covered == allocation_prefix.num_addresses

    def test_entity_references_valid(self, topology):
        for leaf in topology.leaf_networks:
            assert leaf.entity_id in topology.entities
            assert leaf.asn in topology.ases

    def test_gateways_are_non_us(self, topology):
        for autonomous_system in topology.ases.values():
            if autonomous_system.kind == AsKind.NATIONAL_GATEWAY:
                assert autonomous_system.country != "US"

    def test_gateway_leafs_never_announced_into_bgp(self, topology):
        announced = {prefix for prefix, _ in topology.announced_routes()}
        for leaf in topology.leaf_networks:
            if topology.ases[leaf.asn].is_gateway:
                assert leaf.prefix not in announced or (
                    leaf.prefix == leaf.allocation_prefix
                )

    def test_domains_unique_per_entity(self, topology):
        domains = [e.domain for e in topology.entities.values()]
        assert len(domains) == len(set(domains))

    def test_same_entity_same_site_shares_edge_router(self, topology):
        routers = {}
        for leaf in topology.leaf_networks:
            key = (leaf.entity_id, leaf.site)
            routers.setdefault(key, set()).add(leaf.edge_router)
        for key, edge_routers in routers.items():
            assert len(edge_routers) == 1


class TestQueries:
    def test_leaf_for_address_round_trip(self, topology):
        rng = random.Random(3)
        for leaf in rng.sample(topology.leaf_networks, 50):
            for host in topology.hosts_in_leaf(leaf, 2, rng):
                assert topology.leaf_for_address(host) is leaf

    def test_entity_and_as_for_address(self, topology):
        rng = random.Random(4)
        leaf = rng.choice(topology.leaf_networks)
        host = topology.hosts_in_leaf(leaf, 1, rng)[0]
        assert topology.entity_for_address(host).entity_id == leaf.entity_id
        assert topology.as_for_address(host).asn == leaf.asn

    def test_unallocated_address_resolves_to_nothing(self, topology):
        rng = random.Random(5)
        for _ in range(20):
            bogus = topology.unallocated_address(rng)
            assert topology.leaf_for_address(bogus) is None
            assert topology.allocation_for_address(bogus) is None

    def test_hosts_in_leaf_distinct_and_inside(self, topology):
        rng = random.Random(6)
        leaf = max(topology.leaf_networks, key=lambda l: l.capacity)
        hosts = topology.hosts_in_leaf(leaf, 10, rng)
        assert len(set(hosts)) == len(hosts)
        for host in hosts:
            assert leaf.prefix.contains_address(host)

    def test_hosts_request_capped_by_capacity(self, topology):
        rng = random.Random(7)
        leaf = min(topology.leaf_networks, key=lambda l: l.capacity)
        hosts = topology.hosts_in_leaf(leaf, leaf.capacity + 50, rng)
        assert len(hosts) == leaf.capacity


class TestAnnouncementShape:
    def test_about_half_of_announcements_are_24(self, topology):
        """Figure 1's headline: ~50% of visible prefixes are /24."""
        from collections import Counter

        lengths = Counter(p.length for p, _ in topology.announced_routes())
        total = sum(lengths.values())
        assert 0.35 < lengths[24] / total < 0.65

    def test_nap_view_has_more_short_than_long_non24(self, factory):
        """Figure 1's asymmetry is a property of what a NAP route server
        shows (long customer specifics are filtered there); the raw
        announcement set legitimately contains many /25–/29 forwarding
        specifics."""
        from repro.bgp.sources import source_by_name

        snapshot = factory.snapshot(source_by_name("MAE-WEST"))
        histogram = snapshot.prefix_length_histogram()
        shorter = sum(c for length, c in histogram.items() if length < 24)
        longer = sum(c for length, c in histogram.items() if length > 24)
        assert shorter > longer * 5

    def test_registry_blocks_are_allocations(self, topology):
        registry = {prefix for prefix, _ in topology.registry_blocks()}
        assert registry == {a.prefix for a in topology.allocations}


class TestEntityKinds:
    def test_pool_entities_resolvable(self, topology):
        for entity in topology.entities.values():
            if entity.kind == EntityKind.ISP_POOL:
                assert entity.resolvable

    def test_multi_site_entities_exist(self, topology):
        assert any(e.sites > 1 for e in topology.entities.values())

    def test_entity_kind_validation(self):
        from repro.simnet.entities import AdminEntity

        with pytest.raises(ValueError):
            AdminEntity(1, "freelancer", "x.com", True)
        with pytest.raises(ValueError):
            AdminEntity(1, EntityKind.BUSINESS, "x.com", True, sites=0)
