"""Unit tests for the simulated (optimized) traceroute."""

import random

from repro.simnet.traceroute import (
    CLASSIC_PROBES_PER_TTL,
    MAX_TTL,
    ProbeAccounting,
)


class TestPaths:
    def test_same_leaf_same_path(self, topology, traceroute):
        rng = random.Random(1)
        leaf = max(topology.leaf_networks, key=lambda l: l.capacity)
        host_a, host_b = topology.hosts_in_leaf(leaf, 2, rng)
        assert traceroute.path_to(host_a) == traceroute.path_to(host_b)

    def test_last_hop_is_leaf_edge_router(self, topology, traceroute):
        rng = random.Random(2)
        leaf = rng.choice(topology.leaf_networks)
        host = topology.hosts_in_leaf(leaf, 1, rng)[0]
        assert traceroute.path_to(host)[-1] == leaf.edge_router

    def test_different_entities_different_last_hops(self, topology, traceroute):
        rng = random.Random(3)
        leafs = rng.sample(topology.leaf_networks, 40)
        pairs = [
            (a, b)
            for a in leafs for b in leafs
            if a.entity_id != b.entity_id
        ]
        a, b = pairs[0]
        host_a = topology.hosts_in_leaf(a, 1, rng)[0]
        host_b = topology.hosts_in_leaf(b, 1, rng)[0]
        assert traceroute.path_to(host_a)[-1] != traceroute.path_to(host_b)[-1]

    def test_unallocated_address_gets_short_backbone_path(
        self, topology, traceroute
    ):
        rng = random.Random(4)
        bogus = topology.unallocated_address(rng)
        path = traceroute.path_to(bogus)
        assert len(path) == 2


class TestOptimizedProbe:
    def test_resolvable_host_costs_one_probe(self, topology, dns, traceroute):
        rng = random.Random(5)
        for leaf in rng.sample(topology.leaf_networks, 60):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            result = traceroute.optimized(host)
            if dns.is_resolvable(host):
                assert result.probes_sent == 1
                assert result.name is not None
                assert result.rtt_ms is not None
                return
        raise AssertionError("no resolvable host found in sample")

    def test_silent_host_walks_path(self, topology, dns, traceroute):
        rng = random.Random(6)
        for leaf in rng.sample(topology.leaf_networks, 60):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            result = traceroute.optimized(host)
            if not dns.is_resolvable(host):
                assert result.name is None
                assert result.probes_sent > 1
                assert result.path  # path discovered instead
                assert result.resolved
                return
        raise AssertionError("no silent host found in sample")

    def test_every_host_resolves_name_or_path(self, topology, traceroute):
        """§3.3: optimized traceroute reaches 100% name-or-path."""
        rng = random.Random(7)
        for leaf in rng.sample(topology.leaf_networks, 80):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            assert traceroute.optimized(host).resolved

    def test_last_hops_slice(self, topology, traceroute):
        rng = random.Random(8)
        leaf = rng.choice(topology.leaf_networks)
        host = topology.hosts_in_leaf(leaf, 1, rng)[0]
        result = traceroute.optimized(host)
        assert result.last_hops(2) == result.path[-2:]
        assert result.last_hops(99) == result.path


class TestCostAccounting:
    def test_classic_silent_host_probes_to_max_ttl(
        self, topology, dns, traceroute
    ):
        rng = random.Random(9)
        for leaf in rng.sample(topology.leaf_networks, 60):
            host = topology.hosts_in_leaf(leaf, 1, rng)[0]
            if not dns.is_resolvable(host):
                result = traceroute.classic(host)
                assert result.probes_sent == MAX_TTL * CLASSIC_PROBES_PER_TTL
                return
        raise AssertionError("no silent host found")

    def test_optimized_saves_most_probes_and_wait(self, topology, traceroute):
        """§3.3's headline: ~90% probe and ~80% wait savings."""
        rng = random.Random(10)
        hosts = [
            topology.hosts_in_leaf(leaf, 1, rng)[0]
            for leaf in rng.sample(topology.leaf_networks, 150)
        ]
        _, optimized_cost = traceroute.probe_batch(hosts, optimized=True)
        _, classic_cost = traceroute.probe_batch(hosts, optimized=False)
        probe_saving, wait_saving = optimized_cost.savings_vs(classic_cost)
        assert probe_saving > 0.7
        assert wait_saving > 0.7

    def test_probe_batch_accounting_sums(self, topology, traceroute):
        rng = random.Random(11)
        leaf = rng.choice(topology.leaf_networks)
        hosts = topology.hosts_in_leaf(leaf, 3, rng)
        results, accounting = traceroute.probe_batch(hosts)
        assert accounting.destinations == len(results) == len(hosts)
        assert accounting.probes == sum(r.probes_sent for r in results)

    def test_savings_vs_empty_is_zero(self):
        empty = ProbeAccounting()
        assert empty.savings_vs(ProbeAccounting()) == (0.0, 0.0)
