"""Unit tests for the repro-cluster command-line front end."""

import pytest

from repro.cli import main

ACCESS_LOG = """\
12.65.147.94 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 100
12.65.147.149 - - [13/Feb/1998:09:12:07 +0000] "GET /b HTTP/1.0" 200 200
24.48.3.87 - - [13/Feb/1998:09:16:33 +0000] "GET /a HTTP/1.0" 200 100
24.48.2.166 - - [13/Feb/1998:09:17:20 +0000] "GET /c HTTP/1.0" 200 300
0.0.0.0 - - [13/Feb/1998:09:18:30 +0000] "GET /noise HTTP/1.0" 400 -
garbage line
"""

DUMP = """\
12.65.128.0/19\thop1\t7018
24.48.2.0/255.255.254.0\thop2\t64500
"""


@pytest.fixture()
def files(tmp_path):
    log = tmp_path / "access.log"
    log.write_text(ACCESS_LOG)
    dump = tmp_path / "routes.txt"
    dump.write_text(DUMP)
    return str(log), str(dump)


class TestNetworkAware:
    def test_clusters_and_prints(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump]) == 0
        out = capsys.readouterr().out
        assert "12.65.128.0/19" in out
        assert "24.48.2.0/23" in out
        assert "parsed 4" in out
        assert "1 malformed" in out

    def test_busy_threshold_option(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump, "--busy", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "busy" in out

    def test_top_limits_rows(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "top 1 clusters" in out


class TestSimpleMode:
    def test_simple_needs_no_table(self, files, capsys):
        log, _ = files
        assert main([log, "--simple"]) == 0
        out = capsys.readouterr().out
        assert "/24" in out

    def test_network_aware_without_table_errors(self, files):
        log, _ = files
        with pytest.raises(SystemExit):
            main([log])


class TestEngineMode:
    def test_engine_matches_single_pass_clusters(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump]) == 0
        single = capsys.readouterr().out
        assert main([log, "--table", dump, "--engine", "--shards", "2",
                     "--chunk-size", "2"]) == 0
        engine = capsys.readouterr().out
        # Same cluster rows either way; the engine line is extra.
        for row in ("12.65.128.0/19", "24.48.2.0/23"):
            assert row in single and row in engine
        assert "entries/sec" in engine
        assert "parsed 4" in engine

    def test_chunk_size_flag_accepted_on_default_path(self, files, capsys):
        log, dump = files
        assert main([log, "--table", dump, "--chunk-size", "1000"]) == 0
        assert "12.65.128.0/19" in capsys.readouterr().out

    def test_engine_rejects_simple(self, files):
        log, dump = files
        with pytest.raises(SystemExit):
            main([log, "--simple", "--engine"])

    def test_engine_max_errors_aborts(self, tmp_path, files, capsys):
        _, dump = files
        bad = tmp_path / "bad.log"
        bad.write_text("garbage one\ngarbage two\n")
        assert main([str(bad), "--table", dump, "--engine",
                     "--max-errors", "1"]) == 1
        assert "aborting" in capsys.readouterr().err


class TestEdgeCases:
    def test_empty_log_fails_cleanly(self, tmp_path, capsys):
        log = tmp_path / "empty.log"
        log.write_text("")
        assert main([str(log), "--simple"]) == 1
        assert "nothing to cluster" in capsys.readouterr().err

    def test_empty_log_fails_cleanly_in_engine_mode(self, tmp_path, files,
                                                    capsys):
        _, dump = files
        log = tmp_path / "empty.log"
        log.write_text("")
        assert main([str(log), "--table", dump, "--engine"]) == 1
        assert "nothing to cluster" in capsys.readouterr().err
