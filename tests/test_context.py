"""Unit tests for the experiment context's memoisation."""

from repro.experiments.context import ExperimentContext


class TestMemoisation:
    def test_topology_built_once(self):
        ctx = ExperimentContext(seed=5, scale=0.02)
        assert ctx.topology is ctx.topology

    def test_merged_table_cached(self):
        ctx = ExperimentContext(seed=5, scale=0.02)
        assert ctx.merged_table is ctx.merged_table

    def test_logs_cached_per_preset(self):
        ctx = ExperimentContext(seed=5, scale=0.02)
        assert ctx.log("nagano") is ctx.log("nagano")
        assert ctx.log("nagano") is not ctx.log("ew3")

    def test_clusterings_cached_per_method(self):
        from repro.core.clustering import METHOD_SIMPLE

        ctx = ExperimentContext(seed=5, scale=0.02)
        aware = ctx.clusters("nagano")
        assert ctx.clusters("nagano") is aware
        simple = ctx.clusters("nagano", METHOD_SIMPLE)
        assert simple is not aware
        assert simple.method == METHOD_SIMPLE

    def test_oracles_share_topology(self):
        ctx = ExperimentContext(seed=5, scale=0.02)
        assert ctx.dns is ctx.dns
        assert ctx.traceroute is ctx.traceroute

    def test_different_seeds_differ(self):
        a = ExperimentContext(seed=5, scale=0.02)
        b = ExperimentContext(seed=6, scale=0.02)
        assert len(a.topology.leaf_networks) != 0
        assert [l.prefix for l in a.topology.leaf_networks[:20]] != [
            l.prefix for l in b.topology.leaf_networks[:20]
        ]
