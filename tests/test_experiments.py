"""Smoke tests: every paper experiment runs end-to-end at tiny scale
and emits the markers its table/figure needs."""

import pytest

from repro.experiments.context import ExperimentContext
from repro.experiments.runner import EXPERIMENTS, TITLES, run_experiment


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=31, scale=0.06)


#: Per-experiment output markers that must appear.
MARKERS = {
    "fig1": ["/24 share", "prefix-length distribution"],
    "table1": ["OREGON", "merged unique prefix/netmask"],
    "table2": ["next hop"],
    "fig3": ["CDF", "clusters:"],
    "fig4": ["largest clusters"],
    "fig5": ["busiest clusters"],
    "fig6": ["nagano", "apache", "ew3", "sun"],
    "table3": ["nslookup", "traceroute", "pass rate"],
    "fig7": ["network-aware", "simple"],
    "table4": ["AADS", "Maximum effect"],
    "sec32": ["clustered (merged)", "registry"],
    "sec33": ["probe", "saving"],
    "sec35": ["self-correction"],
    "sec36": ["server clustering", "network clusters"],
    "fig9": ["entire server log"],
    "fig10": ["spider"],
    "table5": ["Threshold", "busy"],
    "fig11": ["cache size", "hit"],
    "ext-selective": ["strict", "tolerant"],
    "ext-as": ["AS groups", "merge candidates"],
    "ext-realtime": ["window clusters", "busiest"],
    "ext-placement": ["proxy sites", "reduction"],
    # At the smoke-test scale proxy detection may come up empty, so
    # only the always-present census lines are asserted.
    "ext-census": ["visible", "effective user population"],
    "calib": ["paper target", "measured"],
    "ext-aspath": ["transit hubs", "AS-path length"],
    "ext-coverage": ["cumulative", "registry"],
    "ext-coop": ["sibling", "co-op"],
    "ext-multiserver": ["origin", "overall"],
    "fig12": ["proxies", "hit ratio"],
}


def test_every_experiment_registered():
    assert set(MARKERS) == set(EXPERIMENTS)


@pytest.mark.parametrize("name", sorted(MARKERS))
def test_experiment_runs_and_emits_markers(name, ctx):
    output = run_experiment(name, ctx)
    assert isinstance(output, str) and output
    for marker in MARKERS[name]:
        assert marker in output, f"{name}: missing {marker!r}"
    assert name in TITLES


def test_unknown_experiment_rejected(ctx):
    with pytest.raises(ValueError):
        run_experiment("fig99", ctx)
