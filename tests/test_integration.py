"""End-to-end integration tests over the full pipeline.

These exercise the library the way the paper's §3 pipeline runs: build
the world, collect and merge snapshots, generate a log, cluster,
validate, correct, detect, threshold, simulate caching — asserting the
paper's qualitative claims at every stage.
"""

import random

import pytest

from repro import quick_pipeline
from repro.cache.simulator import CachingSimulator
from repro.core.clustering import METHOD_SIMPLE, cluster_log
from repro.core.metrics import summary
from repro.core.selfcorrect import SelfCorrector
from repro.core.spiders import classify_clients
from repro.core.threshold import threshold_busy_clusters
from repro.core.validation import (
    nslookup_validate,
    sample_clusters,
    traceroute_validate,
)
from repro.simnet.dns import SimulatedDns
from repro.simnet.traceroute import SimulatedTraceroute


@pytest.fixture(scope="module")
def pipeline():
    return quick_pipeline(seed=1337, preset="nagano", scale=0.12)


class TestPipelineHeadlines:
    def test_999_permille_clustered(self, pipeline):
        """§3.2.2: ≥ 99.9 % of clients clusterable (0.1 % bogus)."""
        assert pipeline.cluster_set.clustered_fraction >= 0.99

    def test_cluster_count_order_of_magnitude(self, pipeline):
        stats = summary(pipeline.cluster_set)
        assert 0 < stats.num_clusters < stats.num_clients

    def test_heavy_tailed_requests(self, pipeline):
        requests = sorted(
            (c.requests for c in pipeline.cluster_set.clusters), reverse=True
        )
        top_decile = sum(requests[: max(1, len(requests) // 10)])
        assert top_decile > 0.3 * sum(requests)

    def test_registry_contribution_small_but_positive(self, pipeline):
        registry_clients = pipeline.cluster_set.registry_clustered_clients()
        total = pipeline.cluster_set.num_clients
        assert 0 <= registry_clients / total < 0.2


class TestValidationStage:
    def test_both_validators_pass_most_clusters(self, pipeline):
        dns = SimulatedDns(pipeline.topology)
        traceroute = SimulatedTraceroute(pipeline.topology, dns)
        sample = sample_clusters(
            pipeline.cluster_set, 0.3, random.Random(0), minimum=40
        )
        ns = nslookup_validate(sample, dns, pipeline.topology)
        tr = traceroute_validate(sample, traceroute, pipeline.topology)
        assert ns.pass_rate > 0.8
        assert tr.pass_rate > 0.8
        # Traceroute reaches everyone; nslookup only ~half.
        assert tr.reachable_clients == tr.sampled_clients
        assert ns.reachable_clients < ns.sampled_clients


class TestSelfCorrectionStage:
    def test_correction_clears_unclustered(self, pipeline):
        traceroute = SimulatedTraceroute(pipeline.topology)
        corrector = SelfCorrector(traceroute, samples_per_cluster=3, seed=1)
        corrected, report = corrector.correct(pipeline.cluster_set)
        assert corrected.unclustered_clients == []
        assert report.clusters_before == len(pipeline.cluster_set)


class TestCachingStage:
    def test_simulation_runs_and_orders_methods(self, pipeline):
        log = pipeline.synthetic_log.log
        detections = classify_clients(log, pipeline.cluster_set)
        cleaned = log.without_clients(
            detections.spider_clients() + detections.proxy_clients()
        )
        aware = cluster_log(cleaned, pipeline.table)
        simple = cluster_log(cleaned, method=METHOD_SIMPLE)
        r_aware = CachingSimulator(
            cleaned, pipeline.synthetic_log.catalog, aware, min_url_accesses=5
        ).run(cache_bytes=20_000_000)
        r_simple = CachingSimulator(
            cleaned, pipeline.synthetic_log.catalog, simple, min_url_accesses=5
        ).run(cache_bytes=20_000_000)
        assert 0.0 < r_aware.server_hit_ratio <= 1.0
        assert r_aware.server_hit_ratio >= r_simple.server_hit_ratio - 0.01

    def test_thresholding_after_detection(self, pipeline):
        report = threshold_busy_clusters(pipeline.cluster_set)
        assert report.busy
        assert report.busy_requests >= 0.7 * pipeline.cluster_set.total_requests


class TestDeterminism:
    def test_pipeline_reproducible(self):
        a = quick_pipeline(seed=99, preset="ew3", scale=0.05)
        b = quick_pipeline(seed=99, preset="ew3", scale=0.05)
        assert len(a.cluster_set) == len(b.cluster_set)
        assert [c.identifier for c in a.cluster_set.clusters] == [
            c.identifier for c in b.cluster_set.clusters
        ]

    def test_seed_changes_world(self):
        a = quick_pipeline(seed=99, preset="ew3", scale=0.05)
        b = quick_pipeline(seed=100, preset="ew3", scale=0.05)
        assert [c.identifier for c in a.cluster_set.clusters] != [
            c.identifier for c in b.cluster_set.clusters
        ]
