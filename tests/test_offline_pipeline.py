"""End-to-end offline pipeline: everything through files.

The paper's workflow was file-based: collected dump files plus server
log files in, cluster reports out.  This test drives the same flow:
the synthetic world is serialised to disk (snapshot archive + CLF log),
then the analysis runs purely from those files — through the library
API and through the ``repro-cluster`` CLI.
"""

import pytest

from repro.bgp.archive import SnapshotArchive
from repro.bgp.synth import SnapshotTime
from repro.cli import main as cli_main
from repro.core.clustering import cluster_log
from repro.weblog.writer import load_log, save_log


@pytest.fixture(scope="module")
def on_disk(factory, nagano_log, tmp_path_factory):
    root = tmp_path_factory.mktemp("offline")
    archive = SnapshotArchive(root / "dumps")
    archive.collect(factory, SnapshotTime(0))
    log_path = root / "access.log"
    save_log(nagano_log.log, log_path)
    return archive, log_path


class TestLibraryOfflineFlow:
    def test_disk_pipeline_matches_memory_pipeline(
        self, on_disk, factory, nagano_log
    ):
        archive, log_path = on_disk
        table = archive.merged_table("d0s0")
        log = load_log(log_path)
        from_disk = cluster_log(log, table)
        in_memory = cluster_log(nagano_log.log, factory.merged())
        assert len(from_disk) == len(in_memory)
        assert from_disk.clustered_fraction == pytest.approx(
            in_memory.clustered_fraction
        )
        assert {c.identifier for c in from_disk.clusters} == {
            c.identifier for c in in_memory.clusters
        }


class TestCliOfflineFlow:
    def test_cli_clusters_from_files(self, on_disk, capsys):
        archive, log_path = on_disk
        dump_args = []
        for entry in archive.entries():
            dump_args.extend(["--table", str(entry.path)])
        assert cli_main([str(log_path), *dump_args, "--busy", "0.7"]) == 0
        out = capsys.readouterr().out
        assert "clusters over" in out
        assert "busy" in out

    def test_cli_with_subset_of_dumps_covers_less(self, on_disk, capsys):
        archive, log_path = on_disk
        smallest = min(archive.entries(), key=lambda e: e.size_bytes)
        assert cli_main([str(log_path), "--table", str(smallest.path)]) == 0
        out = capsys.readouterr().out
        assert "unclustered clients:" in out  # one tiny view can't cover all
