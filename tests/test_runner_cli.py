"""Unit tests for the repro-experiments CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, TITLES, main


class TestRegistry:
    def test_all_experiments_titled(self):
        assert set(TITLES) == set(EXPERIMENTS)
        assert all(TITLES.values())

    def test_paper_artifacts_present(self):
        expected = {
            "fig1", "table1", "table2", "fig3", "fig4", "fig5", "fig6",
            "table3", "fig7", "table4", "table5", "fig9", "fig10",
            "fig11", "fig12", "sec32", "sec33", "sec35", "sec36",
        }
        assert expected <= set(EXPERIMENTS)


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2", "--scale", "0.05", "--seed", "17"]) == 0
        out = capsys.readouterr().out
        assert "[table2]" in out
        assert "VBNS" in out

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_output_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main([
            "table2", "--scale", "0.05", "--seed", "17",
            "--output", str(out_dir),
        ]) == 0
        written = out_dir / "table2.txt"
        assert written.exists()
        assert "[table2]" in written.read_text()

    def test_multiple_ids(self, capsys):
        assert main(["table2", "table1", "--scale", "0.05",
                     "--seed", "17"]) == 0
        out = capsys.readouterr().out
        assert out.index("[table2]") < out.index("[table1]")
