"""Unit tests for ASCII plotting helpers."""

import pytest

from repro.util.ascii_plot import ascii_cdf, ascii_histogram, ascii_series


class TestSeries:
    def test_renders_points(self):
        text = ascii_series([1, 10, 100], title="t")
        assert text.startswith("t")
        assert "*" in text

    def test_log_scales_annotated(self):
        text = ascii_series([1, 10, 100], log_x=True, log_y=True)
        assert text.count("(log10)") == 2

    def test_empty(self):
        assert ascii_series([], title="nothing") == "nothing"

    def test_log_filters_nonpositive(self):
        text = ascii_series([0, 0, 5], log_y=True)
        assert "*" in text

    def test_constant_series(self):
        text = ascii_series([5, 5, 5])
        assert "*" in text


class TestHistogram:
    def test_bars_scale(self):
        text = ascii_histogram(["a", "b"], [1, 10], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") < lines[1].count("#")
        assert lines[1].count("#") == 10

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_histogram(["a"], [1, 2])

    def test_zero_counts(self):
        text = ascii_histogram(["a"], [0])
        assert "0" in text


class TestCdf:
    def test_monotone_render(self):
        text = ascii_cdf([1, 2, 2, 3, 10, 100], title="cdf")
        assert text.startswith("cdf")
        assert "*" in text

    def test_empty(self):
        assert ascii_cdf([], title="cdf") == "cdf"
