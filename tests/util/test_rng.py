"""Unit tests for deterministic RNG derivation."""

from repro.util.rng import derive_seed, make_rng, spawn


def test_derive_seed_stable():
    assert derive_seed(1, "x") == derive_seed(1, "x")


def test_derive_seed_varies_with_label_and_parent():
    assert derive_seed(1, "x") != derive_seed(1, "y")
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_spawn_streams_independent():
    a = spawn(5, "clients")
    b = spawn(5, "urls")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_spawn_reproducible():
    assert spawn(5, "s").random() == spawn(5, "s").random()


def test_make_rng_seeded():
    assert make_rng(9).random() == make_rng(9).random()
