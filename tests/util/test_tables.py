"""Unit tests for ASCII table rendering."""

import pytest

from repro.util.tables import format_count, format_ratio, render_table


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            ["name", "count"],
            [["alpha", 5], ["b", 12345]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "12345" in lines[4]

    def test_numeric_columns_right_aligned(self):
        text = render_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


def test_format_count():
    assert format_count(1234567) == "1,234,567"


def test_format_ratio():
    assert format_ratio(0.98765) == "98.77%"
    assert format_ratio(0.5, places=0) == "50%"
