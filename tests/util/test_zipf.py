"""Unit + property tests for Zipf sampling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.zipf import ZipfSampler, weighted_choice, zipf_weights


class TestWeights:
    def test_harmonic_weights(self):
        weights = zipf_weights(4, alpha=1.0)
        assert weights == [1.0, 0.5, 1 / 3, 0.25]

    def test_alpha_zero_uniform(self):
        assert zipf_weights(3, alpha=0.0) == [1.0, 1.0, 1.0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, alpha=-1.0)


class TestSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(10, alpha=1.2)
        total = sum(sampler.probability(rank) for rank in range(10))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_in_rank(self):
        sampler = ZipfSampler(20, alpha=1.0)
        probs = [sampler.probability(rank) for rank in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_rank_zero_most_frequent(self):
        sampler = ZipfSampler(50, alpha=1.0)
        rng = random.Random(1)
        counts = [0] * 50
        for _ in range(20_000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[10]

    def test_sample_many_length(self):
        sampler = ZipfSampler(5)
        assert len(sampler.sample_many(random.Random(2), 17)) == 17

    def test_probability_rank_bounds(self):
        sampler = ZipfSampler(5)
        with pytest.raises(IndexError):
            sampler.probability(5)

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.0, max_value=3.0),
           st.integers(min_value=0, max_value=2**31))
    def test_samples_always_in_range(self, n, alpha, seed):
        sampler = ZipfSampler(n, alpha)
        rng = random.Random(seed)
        for _ in range(20):
            assert 0 <= sampler.sample(rng) < n


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(3)
        counts = [0, 0]
        for _ in range(5000):
            counts[weighted_choice(rng, [9.0, 1.0])] += 1
        assert counts[0] > 5 * counts[1]

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(4), [0.0, 0.0])
