"""Unit + property tests for prefix-preserving anonymization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_log
from repro.net.ipv4 import parse_ipv4
from repro.weblog.anonymize import PrefixPreservingAnonymizer

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


def common_prefix_length(a: int, b: int) -> int:
    diff = a ^ b
    if diff == 0:
        return 32
    return 32 - diff.bit_length()


class TestAddressMapping:
    def test_deterministic(self):
        anonymizer = PrefixPreservingAnonymizer(key=7)
        again = PrefixPreservingAnonymizer(key=7)
        address = parse_ipv4("151.198.194.17")
        assert anonymizer.anonymize_address(address) == (
            again.anonymize_address(address)
        )

    def test_different_keys_differ(self):
        address = parse_ipv4("151.198.194.17")
        a = PrefixPreservingAnonymizer(key=7).anonymize_address(address)
        b = PrefixPreservingAnonymizer(key=8).anonymize_address(address)
        assert a != b

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PrefixPreservingAnonymizer(1).anonymize_address(-1)

    @settings(max_examples=120)
    @given(addresses, addresses, st.integers(min_value=0, max_value=2**31))
    def test_prefix_preservation_property(self, a, b, key):
        """The defining property: common-prefix lengths are invariant."""
        anonymizer = PrefixPreservingAnonymizer(key=key)
        ax = anonymizer.anonymize_address(a)
        bx = anonymizer.anonymize_address(b)
        assert common_prefix_length(a, b) == common_prefix_length(ax, bx)

    @settings(max_examples=80)
    @given(addresses, st.integers(min_value=0, max_value=2**31))
    def test_injective_on_samples(self, a, key):
        """Prefix preservation at 32 bits implies injectivity."""
        anonymizer = PrefixPreservingAnonymizer(key=key)
        b = a ^ 1  # differs in the last bit
        assert anonymizer.anonymize_address(a) != anonymizer.anonymize_address(b)


class TestPrefixMapping:
    def test_length_preserved(self):
        from repro.net.prefix import Prefix

        anonymizer = PrefixPreservingAnonymizer(key=3)
        prefix = Prefix.from_cidr("12.65.128.0/19")
        assert anonymizer.anonymize_prefix(prefix).length == 19

    def test_membership_preserved(self):
        """An address inside a prefix stays inside the anonymized
        prefix — the property clustering depends on."""
        from repro.net.prefix import Prefix

        anonymizer = PrefixPreservingAnonymizer(key=3)
        prefix = Prefix.from_cidr("12.65.128.0/19")
        rng = random.Random(5)
        for _ in range(40):
            inside = prefix.network + rng.randrange(prefix.num_addresses)
            outside = rng.getrandbits(32)
            anonymized_prefix = anonymizer.anonymize_prefix(prefix)
            assert anonymized_prefix.contains_address(
                anonymizer.anonymize_address(inside)
            )
            if not prefix.contains_address(outside):
                assert not anonymized_prefix.contains_address(
                    anonymizer.anonymize_address(outside)
                )


class TestClusteringIsomorphism:
    def test_anonymized_clustering_isomorphic(self, nagano_log, merged_table):
        """The headline guarantee: clustering the anonymized log with
        the anonymized table yields the same structure (same cluster
        sizes, same membership up to the address mapping)."""
        anonymizer = PrefixPreservingAnonymizer(key=99)
        original = cluster_log(nagano_log.log, merged_table)
        anonymized = cluster_log(
            anonymizer.anonymize_log(nagano_log.log),
            anonymizer.anonymize_table(merged_table),
        )
        assert len(anonymized) == len(original)
        assert sorted(c.num_clients for c in anonymized.clusters) == (
            sorted(c.num_clients for c in original.clusters)
        )
        assert sorted(c.requests for c in anonymized.clusters) == (
            sorted(c.requests for c in original.clusters)
        )
        # Membership isomorphism via the mapping itself: the image of
        # every original cluster's client set must be exactly one
        # anonymized cluster's client set.
        anonymized_sets = {
            frozenset(c.clients) for c in anonymized.clusters
        }
        for cluster in original.clusters:
            image = frozenset(
                anonymizer.anonymize_address(client)
                for client in cluster.clients
            )
            assert image in anonymized_sets

    def test_unclustered_clients_preserved(self, nagano_log, merged_table):
        anonymizer = PrefixPreservingAnonymizer(key=99)
        original = cluster_log(nagano_log.log, merged_table)
        anonymized = cluster_log(
            anonymizer.anonymize_log(nagano_log.log),
            anonymizer.anonymize_table(merged_table),
        )
        assert len(anonymized.unclustered_clients) == len(
            original.unclustered_clients
        )
