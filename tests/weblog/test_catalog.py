"""Unit tests for the URL catalog (sizes + modification process)."""

import pytest

from repro.weblog.catalog import UrlCatalog


START = 1000000.0
DAY = 86400.0


@pytest.fixture()
def catalog():
    return UrlCatalog(num_urls=200, seed=5, start_time=START,
                      duration_seconds=DAY)


class TestBasics:
    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            UrlCatalog(0, 1, START, DAY)

    def test_urls_unique_and_indexed(self, catalog):
        urls = catalog.urls()
        assert len(urls) == 200
        assert len(set(urls)) == 200
        for index, url in enumerate(urls):
            assert catalog.index_of(url) == index
            assert catalog.url(index) == url

    def test_unknown_url_handling(self, catalog):
        assert catalog.index_of("/nope.html") is None
        assert catalog.size_of("/nope.html") > 0
        assert not catalog.modified_between("/nope.html", START, START + DAY)

    def test_sizes_positive_and_heavy_tailed(self, catalog):
        sizes = [catalog.size_of(url) for url in catalog.urls()]
        assert all(size >= 64 for size in sizes)
        mean = sum(sizes) / len(sizes)
        median = sorted(sizes)[len(sizes) // 2]
        assert mean > median  # log-normal skew

    def test_total_bytes(self, catalog):
        assert catalog.total_bytes() == sum(
            catalog.size_of(url) for url in catalog.urls()
        )

    def test_deterministic(self):
        a = UrlCatalog(50, 9, START, DAY)
        b = UrlCatalog(50, 9, START, DAY)
        assert [a.size_of(u) for u in a.urls()] == [
            b.size_of(u) for u in b.urls()
        ]


class TestModificationHistory:
    def test_some_urls_immutable_some_not(self, catalog):
        mutable = immutable = 0
        for url in catalog.urls():
            if catalog.modified_between(url, START, START + DAY):
                mutable += 1
            else:
                immutable += 1
        assert mutable > 0 and immutable > 0

    def test_interval_semantics(self, catalog):
        """modified_between(t0, t1) is True iff a change falls in
        (t0, t1]; splitting an interval at any point preserves the OR."""
        for url in catalog.urls()[:50]:
            mid = START + DAY / 2
            whole = catalog.modified_between(url, START, START + DAY)
            first = catalog.modified_between(url, START, mid)
            second = catalog.modified_between(url, mid, START + DAY)
            assert whole == (first or second)

    def test_empty_interval_never_modified(self, catalog):
        for url in catalog.urls()[:20]:
            assert not catalog.modified_between(url, START + 100, START + 100)

    def test_last_modified_monotone(self, catalog):
        for url in catalog.urls()[:50]:
            early = catalog.last_modified(url, START + DAY / 4)
            late = catalog.last_modified(url, START + DAY)
            assert early <= late
            assert late <= START + DAY

    def test_last_modified_consistent_with_modified_between(self, catalog):
        """modified_between(t0, t1) holds exactly when the most recent
        change seen at t1 happened after t0."""
        for url in catalog.urls()[:50]:
            t1 = START + DAY / 3
            t2 = START + 2 * DAY / 3
            changed = catalog.modified_between(url, t1, t2)
            assert changed == (catalog.last_modified(url, t2) > t1)
