"""Unit tests for log entries and CLF parsing."""

import pytest

from repro.net.ipv4 import parse_ipv4
from repro.weblog.entry import (
    LogEntry,
    LogFormatError,
    format_clf_time,
    parse_clf_time,
)


class TestClfTime:
    def test_nagano_epoch(self):
        assert format_clf_time(887328000.0) == "13/Feb/1998:00:00:00 +0000"

    def test_round_trip(self):
        for timestamp in (0.0, 887328000.0, 1234567890.0):
            assert parse_clf_time(format_clf_time(timestamp)) == timestamp

    def test_zone_offset_honoured(self):
        utc = parse_clf_time("13/Feb/1998:00:00:00 +0000")
        plus_two = parse_clf_time("13/Feb/1998:02:00:00 +0200")
        assert utc == plus_two

    def test_negative_zone(self):
        utc = parse_clf_time("13/Feb/1998:00:00:00 +0000")
        minus_five = parse_clf_time("12/Feb/1998:19:00:00 -0500")
        assert utc == minus_five

    @pytest.mark.parametrize(
        "text",
        ["", "13/Feb/1998", "13/Xyz/1998:00:00:00 +0000", "not a date"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(LogFormatError):
            parse_clf_time(text)


class TestLogEntryRoundTrip:
    def _entry(self, **overrides):
        fields = dict(
            client=parse_ipv4("12.65.147.94"),
            timestamp=887328000.0,
            url="/index.html",
            size=2048,
            status=200,
            method="GET",
            user_agent="Mozilla/4.0 (compatible; MSIE 4.01; Windows 95)",
            referer="/home.html",
        )
        fields.update(overrides)
        return LogEntry(**fields)

    def test_combined_round_trip(self):
        entry = self._entry()
        assert LogEntry.from_clf(entry.to_clf()) == entry

    def test_common_format_drops_agent(self):
        entry = self._entry()
        parsed = LogEntry.from_clf(entry.to_clf(combined=False))
        assert parsed.user_agent == ""
        assert parsed.url == entry.url
        assert parsed.client == entry.client

    def test_zero_size_renders_dash(self):
        entry = self._entry(size=0, status=304)
        line = entry.to_clf()
        assert " 304 -" in line
        assert LogEntry.from_clf(line).size == 0

    def test_client_text(self):
        assert self._entry().client_text == "12.65.147.94"

    def test_head_request(self):
        entry = self._entry(method="HEAD")
        assert LogEntry.from_clf(entry.to_clf()).method == "HEAD"


class TestFromClfEdgeCases:
    def test_real_world_line(self):
        line = (
            '151.198.194.17 - - [13/Feb/1998:10:15:30 +0000] '
            '"GET /sports/hockey.html HTTP/1.0" 200 5120'
        )
        entry = LogEntry.from_clf(line)
        assert entry.client == parse_ipv4("151.198.194.17")
        assert entry.url == "/sports/hockey.html"
        assert entry.status == 200
        assert entry.size == 5120

    def test_request_without_protocol(self):
        line = '1.2.3.4 - - [13/Feb/1998:10:15:30 +0000] "GET /x" 200 10'
        assert LogEntry.from_clf(line).url == "/x"

    def test_bare_url_request(self):
        line = '1.2.3.4 - - [13/Feb/1998:10:15:30 +0000] "/x" 200 10'
        entry = LogEntry.from_clf(line)
        assert entry.method == "GET" and entry.url == "/x"

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "garbage",
            '1.2.3.4 - - [bad time] "GET /x HTTP/1.0" 200 10',
            '1.2.3.4 - - [13/Feb/1998:10:15:30 +0000] "" 200 10',
            'not.an.ip - - [13/Feb/1998:10:15:30 +0000] "GET /x" 200 10',
        ],
    )
    def test_rejects_malformed(self, line):
        with pytest.raises((LogFormatError, ValueError)):
            LogEntry.from_clf(line)
