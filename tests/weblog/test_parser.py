"""Unit tests for log parsing and the WebLog container."""

import random

import pytest

from repro.net.ipv4 import parse_ipv4
from repro.weblog.entry import LogEntry, LogFormatError
from repro.weblog.parser import (
    ParseLimitError,
    ParseReport,
    WebLog,
    _fast_entry,
    iter_clf_entries,
    parse_clf_lines,
)


def entry(client: str, t: float, url: str = "/a") -> LogEntry:
    return LogEntry(client=parse_ipv4(client), timestamp=t, url=url, size=100)


class TestParseClfLines:
    def test_counts_in_report(self):
        lines = [
            '1.2.3.4 - - [13/Feb/1998:00:00:00 +0000] "GET /a HTTP/1.0" 200 10',
            "malformed line",
            "",
            '0.0.0.0 - - [13/Feb/1998:00:00:01 +0000] "GET /b HTTP/1.0" 200 10',
            '1.2.3.5 - - [13/Feb/1998:00:00:02 +0000] "GET /c HTTP/1.0" 200 10',
        ]
        report = ParseReport()
        log = parse_clf_lines("t", lines, report)
        assert len(log) == 2
        assert report.parsed == 2
        assert report.malformed == 1
        assert report.null_client == 1  # 0.0.0.0 excluded per footnote 6
        assert report.total_lines == 5

    def test_null_client_never_appears(self):
        lines = [
            '0.0.0.0 - - [13/Feb/1998:00:00:00 +0000] "GET /a HTTP/1.0" 200 10',
        ]
        log = parse_clf_lines("t", lines)
        assert len(log) == 0


GOOD = '1.2.3.{host} - - [13/Feb/1998:00:00:0{host} +0000] "GET /u HTTP/1.0" 200 10'


class TestFastPath:
    """The hot-loop fast parse: a strict subset of the full grammar."""

    def test_accepts_common_shapes_identically(self):
        lines = [
            # common + combined, sizes, zones, methods, bare request
            '12.65.147.94 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 100',
            '1.2.3.4 x y [01/Jan/2001:23:59:59 +0900] "POST /cgi?q=1 HTTP/1.1" 404 -',
            '9.8.7.6 - - [28/Dec/1999:12:00:00 -0530] "HEAD /h HTTP/1.0" 304 0',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a" 200 5',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5 '
            '"http://ref/" "Mozilla/4.0"',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5 '
            '"-" "-"',
            '0.0.0.0 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5',
        ]
        for line in lines:
            fast = _fast_entry(line)
            assert fast is not None, line
            assert fast == LogEntry.from_clf(line), line

    def test_never_accepts_what_the_grammar_rejects(self):
        lines = [
            "garbage",
            "",
            '256.1.2.3 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5',
            '01.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5',
            '1.2.3.4 - - [13/Xyz/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a"b HTTP/1.0" 200 5',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5 "r"',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 20 5',
            'host.example - - [13/Feb/1998:09:12:01 +0000] "GET /a HTTP/1.0" 200 5',
        ]
        for line in lines:
            with pytest.raises((LogFormatError, ValueError)):
                LogEntry.from_clf(line)
            assert _fast_entry(line) is None, line

    def test_declines_odd_but_valid_shapes_to_the_full_parse(self):
        # Shapes from_clf accepts that the fast pattern stays out of:
        # the fallback must produce them, not lose them.
        lines = [
            # one-token request (method defaults to GET)
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "/only" 200 5',
            # four-token request (extra tokens ignored)
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "GET /a b HTTP/1.0" 200 5',
            # lower-case method
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "get /a HTTP/1.0" 200 5',
        ]
        for line in lines:
            assert _fast_entry(line) is None, line
            full = LogEntry.from_clf(line)
            report = ParseReport()
            assert list(iter_clf_entries([line], report)) == [full]
            assert report.parsed == 1 and report.malformed == 0

    def test_round_trip_fuzz_matches_full_parse(self):
        rng = random.Random(313)
        for _ in range(300):
            original = LogEntry(
                client=rng.randrange(1, 2**32),
                timestamp=float(rng.randrange(600_000_000, 1_000_000_000)),
                url=f"/d/{rng.randrange(999)}",
                size=rng.choice([0, 1, 30444]),
                status=rng.choice([200, 304, 404, 500]),
                method=rng.choice(["GET", "POST", "HEAD"]),
                user_agent=rng.choice(["", "Mozilla/4.0 (compat)"]),
                referer=rng.choice(["", "http://r/"]),
            )
            line = original.to_clf(combined=rng.random() < 0.5)
            fast = _fast_entry(line)
            assert fast is not None
            assert fast == LogEntry.from_clf(line)
            assert fast.client == original.client
            assert fast.timestamp == original.timestamp

    def test_report_accounting_identical_through_the_stream(self):
        lines = [
            GOOD.format(host=4),
            "junk",
            '0.0.0.0 - - [13/Feb/1998:00:00:00 +0000] "GET /z HTTP/1.0" 200 1',
            '1.2.3.4 - - [13/Feb/1998:09:12:01 +0000] "/only" 200 5',
            "",
        ]
        report = ParseReport()
        entries = list(iter_clf_entries(lines, report))
        assert len(entries) == 2
        assert (report.total_lines, report.parsed, report.malformed,
                report.null_client) == (5, 2, 1, 1)


class TestIterClfEntries:
    """The streaming (engine-mode) front end: skip, count, guard."""

    def test_streams_entries_lazily(self):
        lines = iter([GOOD.format(host=4), GOOD.format(host=5)])
        report = ParseReport()
        stream = iter_clf_entries(lines, report)
        first = next(stream)
        assert first.client == parse_ipv4("1.2.3.4")
        assert report.parsed == 1  # second line not consumed yet
        assert next(stream).client == parse_ipv4("1.2.3.5")
        assert report.parsed == 2

    def test_malformed_lines_counted_and_skipped(self):
        lines = ["junk", GOOD.format(host=4), "more junk", GOOD.format(host=5)]
        report = ParseReport()
        entries = list(iter_clf_entries(lines, report))
        assert len(entries) == 2
        assert report.malformed == 2

    def test_max_errors_guard_trips(self):
        lines = ["junk 1", "junk 2", GOOD.format(host=4)]
        report = ParseReport()
        with pytest.raises(ParseLimitError, match="max_errors=1"):
            list(iter_clf_entries(lines, report, max_errors=1))
        assert report.malformed == 2

    def test_max_errors_zero_is_strict(self):
        with pytest.raises(ParseLimitError):
            list(iter_clf_entries(["not clf"], max_errors=0))

    def test_max_errors_at_limit_passes(self):
        lines = ["junk", GOOD.format(host=4)]
        entries = list(iter_clf_entries(lines, max_errors=1))
        assert len(entries) == 1

    def test_parse_clf_lines_forwards_guard(self):
        with pytest.raises(ParseLimitError):
            parse_clf_lines("t", ["junk", "junk"], max_errors=1)


class TestWebLogIndexes:
    def _log(self):
        return WebLog(
            "t",
            [
                entry("1.2.3.4", 100.0, "/a"),
                entry("1.2.3.5", 50.0, "/b"),
                entry("1.2.3.4", 200.0, "/a"),
                entry("1.2.3.6", 150.0, "/c"),
            ],
        )

    def test_clients_sorted_unique(self):
        log = self._log()
        assert log.clients() == sorted(
            {parse_ipv4("1.2.3.4"), parse_ipv4("1.2.3.5"), parse_ipv4("1.2.3.6")}
        )
        assert log.num_clients() == 3

    def test_requests_of(self):
        log = self._log()
        requests = log.requests_of(parse_ipv4("1.2.3.4"))
        assert len(requests) == 2
        assert log.request_count_of(parse_ipv4("1.2.3.4")) == 2
        assert log.request_count_of(parse_ipv4("9.9.9.9")) == 0

    def test_unique_urls_and_duration(self):
        log = self._log()
        assert log.unique_urls() == 3
        assert log.duration_seconds() == 150.0
        assert log.time_span() == (50.0, 200.0)

    def test_sort_by_time(self):
        log = self._log()
        log.sort_by_time()
        times = [e.timestamp for e in log.entries]
        assert times == sorted(times)

    def test_append_invalidates_index(self):
        log = self._log()
        assert log.num_clients() == 3
        log.append(entry("9.9.9.9", 300.0))
        assert log.num_clients() == 4

    def test_empty_log(self):
        log = WebLog("empty")
        assert log.time_span() == (0.0, 0.0)
        assert log.duration_seconds() == 0.0
        assert log.partition_sessions(60.0) == []


class TestTransforms:
    def test_partition_sessions(self):
        log = WebLog("t", [entry("1.2.3.4", float(t)) for t in range(0, 100, 10)])
        sessions = log.partition_sessions(30.0)
        assert len(sessions) == 4
        assert sum(len(s) for s in sessions) == len(log)
        # Entries fall in their window.
        for index, session in enumerate(sessions):
            for e in session.entries:
                assert index * 30.0 <= e.timestamp - 0.0 < (index + 1) * 30.0

    def test_partition_rejects_nonpositive(self):
        import pytest

        with pytest.raises(ValueError):
            WebLog("t", [entry("1.2.3.4", 0.0)]).partition_sessions(0.0)

    def test_without_clients(self):
        log = self._three_client_log()
        filtered = log.without_clients([parse_ipv4("1.2.3.4")])
        assert parse_ipv4("1.2.3.4") not in filtered.clients()
        assert len(filtered) == 1

    def _three_client_log(self):
        return WebLog(
            "t",
            [
                entry("1.2.3.4", 1.0),
                entry("1.2.3.4", 2.0),
                entry("1.2.3.5", 3.0),
            ],
        )
