"""Unit tests for the per-paper-log presets."""

import pytest

from repro.weblog.presets import PRESET_NAMES, make_log, make_spec


class TestSpecs:
    def test_all_presets_build(self):
        for name in PRESET_NAMES:
            spec = make_spec(name)
            assert spec.name == name
            assert spec.total_requests > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            make_spec("slashdot")

    def test_scale_scales_sizes(self):
        full = make_spec("nagano", scale=1.0)
        half = make_spec("nagano", scale=0.5)
        assert abs(half.num_clients - full.num_clients / 2) <= 1
        assert abs(half.total_requests - full.total_requests / 2) <= 1

    def test_nagano_is_one_day_transient_event(self):
        spec = make_spec("nagano")
        assert spec.duration_hours == 24.0
        assert spec.spiders == ()  # §4.1.2: no spiders in Nagano
        assert spec.proxies       # but suspected proxies exist

    def test_sun_has_spider_and_proxy(self):
        spec = make_spec("sun")
        assert spec.spiders and spec.proxies

    def test_seeds_differ_across_presets(self):
        seeds = {make_spec(name).seed for name in PRESET_NAMES}
        assert len(seeds) == len(PRESET_NAMES)


class TestGeneratedPresets:
    def test_nagano_log_duration(self, topology):
        synthetic = make_log(topology, "nagano", scale=0.05, seed=3)
        assert synthetic.log.duration_seconds() <= 24 * 3600.0
        assert len(synthetic.log) > 0

    def test_stats_scale_with_scale(self, topology):
        small = make_log(topology, "ew3", scale=0.04, seed=3)
        larger = make_log(topology, "ew3", scale=0.12, seed=3)
        assert len(larger.log) > 2 * len(small.log)
