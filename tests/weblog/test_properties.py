"""Property-based tests for log-entry and dump-format round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.formats import parse_entry, render_entry
from repro.bgp.formats import FORMAT_DOTTED_NETMASK, FORMAT_MASK_LENGTH
from repro.net.prefix import Prefix
from repro.weblog.entry import LogEntry, format_clf_time, parse_clf_time

addresses = st.integers(min_value=1, max_value=(1 << 32) - 1)
# CLF timestamps: seconds in a sane epoch range (1980..2030).
timestamps = st.integers(min_value=315532800, max_value=1893456000).map(float)
url_chars = st.sampled_from(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._/~%")
urls = st.text(alphabet=url_chars, min_size=1, max_size=60).map(
    lambda s: "/" + s.lstrip("/")
)
methods = st.sampled_from(["GET", "HEAD", "POST"])
statuses = st.sampled_from([200, 206, 301, 304, 403, 404, 500])
sizes = st.integers(min_value=0, max_value=10**9)
# Agent/referer text must survive the quoted CLF fields: printable
# ASCII without the quote character.
field_chars = st.sampled_from(
    "abcdefghijklmnopqrstuvwxyz0123456789 ()/;:.,+-_")
agent_text = (
    st.text(alphabet=field_chars, min_size=0, max_size=40)
    .map(lambda s: s.strip())
    # A literal "-" is CLF's empty-field marker: the format cannot
    # distinguish it from an absent value, so it is excluded from the
    # round-trip property (parsers must and do read it as empty).
    .filter(lambda s: s != "-")
)


@settings(max_examples=150)
@given(timestamps)
def test_clf_time_round_trip(timestamp):
    assert parse_clf_time(format_clf_time(timestamp)) == timestamp


@settings(max_examples=150)
@given(addresses, timestamps, urls, sizes, statuses, methods, agent_text,
       agent_text)
def test_log_entry_clf_round_trip(address, timestamp, url, size, status,
                                  method, agent, referer):
    entry = LogEntry(
        client=address,
        timestamp=timestamp,
        url=url,
        size=size,
        status=status,
        method=method,
        user_agent=agent,
        referer=referer,
    )
    parsed = LogEntry.from_clf(entry.to_clf())
    assert parsed.client == entry.client
    assert parsed.timestamp == entry.timestamp
    assert parsed.url == entry.url
    assert parsed.size == entry.size
    assert parsed.status == entry.status
    assert parsed.method == entry.method
    assert parsed.user_agent == entry.user_agent
    assert parsed.referer == entry.referer


lengths = st.integers(min_value=0, max_value=32)
prefixes = st.builds(Prefix, addresses, lengths)


@settings(max_examples=150)
@given(prefixes)
def test_dump_format_round_trips(prefix):
    for fmt in (FORMAT_DOTTED_NETMASK, FORMAT_MASK_LENGTH):
        assert parse_entry(render_entry(prefix, fmt)) == prefix


@settings(max_examples=150)
@given(prefixes)
def test_unification_idempotent(prefix):
    from repro.bgp.formats import unify

    once = unify(render_entry(prefix, FORMAT_MASK_LENGTH))
    assert unify(once) == once
