"""Unit tests for log summary statistics."""

from repro.net.ipv4 import parse_ipv4
from repro.weblog.entry import LogEntry
from repro.weblog.parser import WebLog
from repro.weblog.stats import requests_by_client, requests_per_hour, summarize


def entry(client: str, t: float, url: str = "/a", size: int = 100) -> LogEntry:
    return LogEntry(client=parse_ipv4(client), timestamp=t, url=url, size=size)


def test_summarize():
    log = WebLog(
        "t",
        [
            entry("1.2.3.4", 0.0, "/a", 100),
            entry("1.2.3.4", 3600.0, "/b", 200),
            entry("1.2.3.5", 7200.0, "/a", 300),
        ],
    )
    stats = summarize(log)
    assert stats.requests == 3
    assert stats.clients == 2
    assert stats.unique_urls == 2
    assert stats.duration_hours == 2.0
    assert stats.total_bytes == 600
    assert "t:" in stats.describe()


def test_requests_per_hour_buckets():
    log = WebLog(
        "t",
        [entry("1.2.3.4", t) for t in (0.0, 10.0, 3601.0, 7300.0, 7301.0)],
    )
    counts = requests_per_hour(log)
    assert counts == [2, 1, 2]


def test_requests_per_hour_empty():
    assert requests_per_hour(WebLog("t")) == []


def test_requests_by_client():
    log = WebLog("t", [entry("1.2.3.4", 0.0), entry("1.2.3.4", 1.0),
                       entry("1.2.3.5", 2.0)])
    counts = requests_by_client(log)
    assert counts == {parse_ipv4("1.2.3.4"): 2, parse_ipv4("1.2.3.5"): 1}
