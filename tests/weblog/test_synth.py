"""Unit/integration tests for the synthetic workload generator."""


from repro.weblog.stats import requests_by_client, summarize
from repro.weblog.synth import ProxySpec, SpiderSpec, WorkloadSpec, generate_log


def small_spec(**overrides) -> WorkloadSpec:
    fields = dict(
        name="tiny",
        seed=77,
        duration_hours=24.0,
        num_clients=150,
        num_urls=120,
        total_requests=4000,
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


class TestBasicShape:
    def test_roughly_requested_size(self, topology):
        synthetic = generate_log(topology, small_spec())
        stats = summarize(synthetic.log)
        assert 0.7 * 4000 <= stats.requests <= 1.4 * 4000
        assert 100 <= stats.clients <= 160
        assert stats.unique_urls <= 120

    def test_entries_sorted_by_time(self, topology):
        synthetic = generate_log(topology, small_spec())
        times = [e.timestamp for e in synthetic.log.entries]
        assert times == sorted(times)

    def test_timestamps_within_duration(self, topology):
        spec = small_spec()
        synthetic = generate_log(topology, spec)
        for e in synthetic.log.entries:
            assert spec.start_time <= e.timestamp <= (
                spec.start_time + spec.duration_seconds
            )

    def test_deterministic_in_seed(self, topology):
        a = generate_log(topology, small_spec())
        b = generate_log(topology, small_spec())
        assert [e.client for e in a.log.entries] == [
            e.client for e in b.log.entries
        ]
        assert [e.url for e in a.log.entries] == [e.url for e in b.log.entries]

    def test_different_seed_differs(self, topology):
        a = generate_log(topology, small_spec())
        b = generate_log(topology, small_spec(seed=78))
        assert [e.client for e in a.log.entries] != [
            e.client for e in b.log.entries
        ]

    def test_every_entry_has_agent_and_size(self, topology):
        synthetic = generate_log(topology, small_spec())
        for e in synthetic.log.entries:
            assert e.user_agent
            assert e.size > 0

    def test_clients_live_in_topology(self, topology):
        synthetic = generate_log(topology, small_spec(bogus_client_fraction=0.0))
        for client in synthetic.log.clients():
            assert topology.leaf_for_address(client) is not None


class TestHeavyTails:
    def test_request_counts_heavy_tailed(self, topology):
        # Enough clients that the per-client cap leaves Zipf headroom.
        synthetic = generate_log(topology, small_spec(num_clients=400))
        counts = sorted(requests_by_client(synthetic.log).values(), reverse=True)
        top_decile = sum(counts[: max(1, len(counts) // 10)])
        assert top_decile / sum(counts) > 0.2

    def test_url_popularity_zipf_like(self, topology):
        synthetic = generate_log(topology, small_spec())
        url_counts = {}
        for e in synthetic.log.entries:
            url_counts[e.url] = url_counts.get(e.url, 0) + 1
        ordered = sorted(url_counts.values(), reverse=True)
        # Most-popular URL should dominate the median URL heavily.
        assert ordered[0] > 10 * ordered[len(ordered) // 2]


class TestBogusClients:
    def test_bogus_fraction_produces_unallocated_clients(self, topology):
        synthetic = generate_log(
            topology, small_spec(num_clients=400, bogus_client_fraction=0.01)
        )
        assert synthetic.bogus_clients
        for bogus in synthetic.bogus_clients:
            assert topology.leaf_for_address(bogus) is None

    def test_zero_bogus(self, topology):
        synthetic = generate_log(topology, small_spec(bogus_client_fraction=0.0))
        assert synthetic.bogus_clients == []


class TestSpiders:
    def test_spider_present_with_expected_signature(self, topology):
        spec = small_spec(
            total_requests=6000,
            spiders=(SpiderSpec(requests=1200, url_coverage=0.6, cohabitants=4),),
        )
        synthetic = generate_log(topology, spec)
        (spider,) = synthetic.spider_clients
        counts = requests_by_client(synthetic.log)
        assert counts[spider] >= 1100
        urls = {e.url for e in synthetic.log.entries if e.client == spider}
        assert len(urls) >= 0.5 * spec.num_urls
        agents = {
            e.user_agent for e in synthetic.log.entries if e.client == spider
        }
        assert len(agents) == 1  # one crawler UA

    def test_spider_cluster_has_cohabitants(self, topology):
        spec = small_spec(
            spiders=(SpiderSpec(requests=500, cohabitants=5),),
        )
        synthetic = generate_log(topology, spec)
        spider = synthetic.spider_clients[0]
        leaf = topology.leaf_for_address(spider)
        others = [
            c for c in synthetic.log.clients()
            if c != spider and leaf.prefix.contains_address(c)
        ]
        assert len(others) >= 3


class TestProxies:
    def test_proxy_rotates_user_agents(self, topology):
        spec = small_spec(proxies=(ProxySpec(requests=800, user_agents=6),))
        synthetic = generate_log(topology, spec)
        (proxy,) = synthetic.proxy_clients
        agents = {
            e.user_agent for e in synthetic.log.entries if e.client == proxy
        }
        assert len(agents) >= 3

    def test_proxy_timing_spans_whole_log(self, topology):
        spec = small_spec(proxies=(ProxySpec(requests=800),))
        synthetic = generate_log(topology, spec)
        (proxy,) = synthetic.proxy_clients
        times = [
            e.timestamp for e in synthetic.log.entries if e.client == proxy
        ]
        span = max(times) - min(times)
        assert span > 0.5 * spec.duration_seconds
