"""Unit tests for log file I/O."""

from repro.weblog.parser import ParseReport
from repro.weblog.writer import load_log, save_log


class TestRoundTrip:
    def test_synthetic_log_round_trips(self, nagano_log, tmp_path):
        path = tmp_path / "nagano.log"
        written = save_log(nagano_log.log, path)
        assert written == len(nagano_log.log)
        loaded = load_log(path)
        assert len(loaded) == len(nagano_log.log)
        assert loaded.clients() == nagano_log.log.clients()
        for original, parsed in zip(nagano_log.log.entries[:50],
                                    loaded.entries[:50]):
            assert parsed.client == original.client
            assert parsed.url == original.url
            assert parsed.size == original.size
            assert parsed.user_agent == original.user_agent
            # CLF carries whole seconds.
            assert abs(parsed.timestamp - original.timestamp) < 1.0

    def test_common_format_drops_agents(self, nagano_log, tmp_path):
        path = tmp_path / "common.log"
        save_log(nagano_log.log, path, combined=False)
        loaded = load_log(path)
        assert all(e.user_agent == "" for e in loaded.entries[:20])

    def test_default_name_from_path(self, nagano_log, tmp_path):
        path = tmp_path / "mysite.log"
        save_log(nagano_log.log, path)
        assert load_log(path).name == "mysite"

    def test_report_collects_hygiene(self, tmp_path):
        path = tmp_path / "dirty.log"
        path.write_text(
            '1.2.3.4 - - [13/Feb/1998:00:00:00 +0000] "GET /a HTTP/1.0" 200 1\n'
            "junk\n"
            '0.0.0.0 - - [13/Feb/1998:00:00:01 +0000] "GET /b HTTP/1.0" 200 1\n'
        )
        report = ParseReport()
        log = load_log(path, report=report)
        assert len(log) == 1
        assert report.malformed == 1
        assert report.null_client == 1

    def test_creates_parent_directories(self, nagano_log, tmp_path):
        path = tmp_path / "deep" / "nested" / "dir" / "x.log"
        save_log(nagano_log.log, path)
        assert path.exists()
